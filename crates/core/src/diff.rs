//! Longitudinal mapping comparison.
//!
//! The paper's discussion (§7) regrets that no longitudinal archive
//! exists for its web observations — organizational structures evolve
//! through mergers, spinoffs and rebrandings, and a single snapshot
//! cannot show the motion. Given two dated mappings (two releases of
//! Borges, or Borges vs. a later AS2Org), [`diff`] explains what moved:
//!
//! * **merges** — an organization in the later mapping combining several
//!   earlier organizations (the acquisition signature);
//! * **splits** — an earlier organization scattered across several later
//!   ones (the divestiture/spinoff signature: Lumen → Cirion/Colt);
//! * ASNs appearing/disappearing (new allocations, returned resources).

use crate::mapping::{AsOrgMapping, ClusterId};
use borges_types::Asn;
use std::collections::{BTreeMap, BTreeSet};

/// A later-mapping organization assembled from several earlier ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeEvent {
    /// Cluster in the *after* mapping.
    pub after: ClusterId,
    /// The earlier clusters it absorbed (each as its member list,
    /// restricted to ASNs present in both mappings).
    pub fragments: Vec<Vec<Asn>>,
}

/// An earlier organization scattered across several later ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitEvent {
    /// Cluster in the *before* mapping.
    pub before: ClusterId,
    /// The later clusters its members went to.
    pub pieces: Vec<Vec<Asn>>,
}

/// The full difference between two mappings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MappingDiff {
    /// Organizations that combined.
    pub merges: Vec<MergeEvent>,
    /// Organizations that scattered.
    pub splits: Vec<SplitEvent>,
    /// ASNs present only in the later mapping.
    pub appeared: Vec<Asn>,
    /// ASNs present only in the earlier mapping.
    pub disappeared: Vec<Asn>,
    /// Clusters with identical membership in both mappings.
    pub unchanged_clusters: usize,
}

impl MappingDiff {
    /// `true` when nothing moved at all.
    pub fn is_empty(&self) -> bool {
        self.merges.is_empty()
            && self.splits.is_empty()
            && self.appeared.is_empty()
            && self.disappeared.is_empty()
    }
}

/// Computes the difference between two mappings. Structural comparisons
/// (merge/split detection) consider only ASNs present in *both* mappings,
/// so allocation churn does not masquerade as reorganization.
pub fn diff(before: &AsOrgMapping, after: &AsOrgMapping) -> MappingDiff {
    let before_asns: BTreeSet<Asn> = before.asns().collect();
    let after_asns: BTreeSet<Asn> = after.asns().collect();
    let shared: BTreeSet<Asn> = before_asns.intersection(&after_asns).copied().collect();

    let mut out = MappingDiff {
        appeared: after_asns.difference(&before_asns).copied().collect(),
        disappeared: before_asns.difference(&after_asns).copied().collect(),
        ..Default::default()
    };

    // Group shared ASNs by (after cluster → before fragments) and
    // (before cluster → after pieces).
    let mut by_after: BTreeMap<ClusterId, BTreeMap<ClusterId, Vec<Asn>>> = BTreeMap::new();
    let mut by_before: BTreeMap<ClusterId, BTreeMap<ClusterId, Vec<Asn>>> = BTreeMap::new();
    for &asn in &shared {
        let b = before.cluster_of(asn).expect("shared asn is in before");
        let a = after.cluster_of(asn).expect("shared asn is in after");
        by_after
            .entry(a)
            .or_default()
            .entry(b)
            .or_default()
            .push(asn);
        by_before
            .entry(b)
            .or_default()
            .entry(a)
            .or_default()
            .push(asn);
    }

    for (after_id, fragments) in &by_after {
        if fragments.len() > 1 {
            out.merges.push(MergeEvent {
                after: *after_id,
                fragments: fragments.values().cloned().collect(),
            });
        }
    }
    for (before_id, pieces) in &by_before {
        if pieces.len() > 1 {
            out.splits.push(SplitEvent {
                before: *before_id,
                pieces: pieces.values().cloned().collect(),
            });
        }
    }

    // Unchanged: identical membership over the shared universe, and the
    // cluster is whole in both (no appeared/disappeared members hiding
    // inside).
    for (after_id, fragments) in &by_after {
        if fragments.len() != 1 {
            continue;
        }
        let (before_id, members) = fragments.iter().next().expect("one fragment");
        if by_before[before_id].len() == 1
            && before.members(*before_id).len() == members.len()
            && after.members(*after_id).len() == members.len()
        {
            out.unchanged_clusters += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(groups: &[&[u32]]) -> AsOrgMapping {
        AsOrgMapping::from_groups(
            groups
                .iter()
                .map(|g| g.iter().map(|&x| Asn::new(x)).collect()),
        )
    }

    #[test]
    fn identical_mappings_diff_empty() {
        let a = m(&[&[1, 2], &[3]]);
        let d = diff(&a, &a.clone());
        assert!(d.is_empty());
        assert_eq!(d.unchanged_clusters, 2);
    }

    #[test]
    fn acquisition_shows_as_a_merge() {
        let before = m(&[&[1, 2], &[3, 4], &[5]]);
        let after = m(&[&[1, 2, 3, 4], &[5]]);
        let d = diff(&before, &after);
        assert_eq!(d.merges.len(), 1);
        assert_eq!(d.merges[0].fragments.len(), 2);
        assert!(d.splits.is_empty());
        assert_eq!(d.unchanged_clusters, 1);
    }

    #[test]
    fn spinoff_shows_as_a_split() {
        // The Lumen → Cirion/Colt shape.
        let before = m(&[&[1, 2, 3]]);
        let after = m(&[&[1], &[2], &[3]]);
        let d = diff(&before, &after);
        assert!(d.merges.is_empty());
        assert_eq!(d.splits.len(), 1);
        assert_eq!(d.splits[0].pieces.len(), 3);
    }

    #[test]
    fn reshuffle_is_both_merge_and_split() {
        let before = m(&[&[1, 2], &[3, 4]]);
        let after = m(&[&[1, 3], &[2, 4]]);
        let d = diff(&before, &after);
        assert_eq!(d.merges.len(), 2, "each after-cluster mixes fragments");
        assert_eq!(d.splits.len(), 2, "each before-cluster scattered");
        assert_eq!(d.unchanged_clusters, 0);
    }

    #[test]
    fn allocation_churn_is_not_reorganization() {
        let before = m(&[&[1, 2]]);
        let after = m(&[&[1, 2, 99], &[100]]);
        let d = diff(&before, &after);
        assert!(
            d.merges.is_empty(),
            "new ASN joining is not a merge of orgs"
        );
        assert!(d.splits.is_empty());
        assert_eq!(d.appeared, vec![Asn::new(99), Asn::new(100)]);
        assert!(d.disappeared.is_empty());
    }

    #[test]
    fn disappearing_asns_are_reported() {
        let before = m(&[&[1, 2, 3]]);
        let after = m(&[&[1, 2]]);
        let d = diff(&before, &after);
        assert_eq!(d.disappeared, vec![Asn::new(3)]);
        assert!(d.splits.is_empty(), "losing an ASN is not a split");
    }

    #[test]
    fn grown_cluster_is_not_unchanged() {
        let before = m(&[&[1, 2]]);
        let after = m(&[&[1, 2, 9]]);
        let d = diff(&before, &after);
        assert_eq!(d.unchanged_clusters, 0);
    }

    #[test]
    fn identity_diff_is_empty_and_equal() {
        let a = m(&[&[1, 2], &[3, 4, 5], &[9]]);
        let d = diff(&a, &a.clone());
        assert!(d.is_empty());
        assert_eq!(
            d,
            MappingDiff {
                unchanged_clusters: 3,
                ..Default::default()
            }
        );
    }

    #[test]
    fn empty_world_against_populated_is_pure_churn() {
        let empty = AsOrgMapping::default();
        let populated = m(&[&[1, 2], &[7]]);
        let grown = diff(&empty, &populated);
        assert!(grown.merges.is_empty(), "appearing ASNs are not merges");
        assert!(grown.splits.is_empty());
        assert_eq!(grown.appeared, vec![Asn::new(1), Asn::new(2), Asn::new(7)]);
        assert!(grown.disappeared.is_empty());
        assert_eq!(grown.unchanged_clusters, 0);
        assert!(!grown.is_empty());

        let shrunk = diff(&populated, &empty);
        assert!(shrunk.merges.is_empty());
        assert!(shrunk.splits.is_empty());
        assert!(shrunk.appeared.is_empty());
        assert_eq!(
            shrunk.disappeared,
            vec![Asn::new(1), Asn::new(2), Asn::new(7)]
        );

        assert!(diff(&empty, &empty.clone()).is_empty());
    }

    use proptest::prelude::*;

    fn partition(assign: &[usize]) -> AsOrgMapping {
        let mut groups: BTreeMap<usize, Vec<Asn>> = BTreeMap::new();
        for (i, &g) in assign.iter().enumerate() {
            groups.entry(g).or_default().push(Asn::new(i as u32 + 1));
        }
        AsOrgMapping::from_groups(groups.into_values())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        // Swapping the arguments turns every merge into the equal-and-
        // opposite split (and vice versa), flips appeared/disappeared,
        // and preserves the unchanged count — diff is an involution up
        // to renaming the event kinds.
        #[test]
        fn merge_and_split_are_symmetric_under_argument_swap(
            before_assign in prop::collection::vec(0usize..5, 1..16),
            after_assign in prop::collection::vec(0usize..5, 1..16),
        ) {
            let a = partition(&before_assign);
            let b = partition(&after_assign);
            let ab = diff(&a, &b);
            let ba = diff(&b, &a);

            prop_assert_eq!(ab.merges.len(), ba.splits.len());
            for (merge, split) in ab.merges.iter().zip(&ba.splits) {
                prop_assert_eq!(merge.after, split.before);
                prop_assert_eq!(&merge.fragments, &split.pieces);
            }
            prop_assert_eq!(ab.splits.len(), ba.merges.len());
            for (split, merge) in ab.splits.iter().zip(&ba.merges) {
                prop_assert_eq!(split.before, merge.after);
                prop_assert_eq!(&split.pieces, &merge.fragments);
            }
            prop_assert_eq!(&ab.appeared, &ba.disappeared);
            prop_assert_eq!(&ab.disappeared, &ba.appeared);
            prop_assert_eq!(ab.unchanged_clusters, ba.unchanged_clusters);
        }
    }
}
