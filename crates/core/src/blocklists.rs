//! The manually curated blocklists of Appendix D.
//!
//! Small operators without their own web presence frequently put a
//! mainstream platform page (Facebook, GitHub, LinkedIn, Discord, …) in
//! the PeeringDB `website` field. Left unchecked, these would fuse
//! hundreds of unrelated networks into one "organization" the moment
//! their final URLs or favicons coincide. Borges therefore applies:
//!
//! * the **subdomain blocklist** (Table 10) — brand labels whose match
//!   must never count as sibling evidence in the final-URL stage (§4.3.2);
//! * the **final-URL blocklist** (Table 11) — registrable domains excluded
//!   from the favicon stage (§4.3.3).

use borges_types::Url;

/// Table 10: brand labels ("subdomains" in the paper's wording) excluded
/// from final-URL sibling inference.
pub const SUBDOMAIN_BLOCKLIST: &[&str] = &[
    "myspace",
    "github",
    "he",
    "facebook",
    "instagram",
    "linkedin",
    "bgp", // bgp.tools
    "oracle",
    "discord",
    "peeringdb",
];

/// Table 11: registrable domains excluded from favicon-based inference.
pub const FINAL_URL_BLOCKLIST: &[&str] = &[
    "example.com",
    "github.com",
    "linkedin.com",
    "facebook.com",
    "discord.com",
    "instagram.com",
    "peeringdb.com",
];

/// `true` when a final URL must be ignored by the R&R matcher (§4.3.2):
/// its brand label is on the subdomain blocklist.
pub fn blocked_for_rr(url: &Url) -> bool {
    match url.brand_label() {
        Some(label) => SUBDOMAIN_BLOCKLIST.contains(&label),
        None => true, // no brand evidence at all — never merge on it
    }
}

/// `true` when a final URL must be ignored by the favicon stage (§4.3.3):
/// its registrable domain is on the final-URL blocklist.
pub fn blocked_for_favicon(url: &Url) -> bool {
    match url.host().registrable_domain() {
        Some(domain) => FINAL_URL_BLOCKLIST.contains(&domain),
        None => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        s.parse().unwrap()
    }

    #[test]
    fn social_platforms_are_blocked_everywhere() {
        for u in [
            "https://facebook.com/acmenet",
            "https://github.com/acmenet",
            "https://www.linkedin.com/company/acmenet",
            "https://discord.com/invite/xyz",
        ] {
            assert!(blocked_for_rr(&url(u)), "{u} not RR-blocked");
            assert!(blocked_for_favicon(&url(u)), "{u} not favicon-blocked");
        }
    }

    #[test]
    fn hurricane_electric_label_is_rr_blocked() {
        // he.net hosts looking-glass pages for countless networks.
        assert!(blocked_for_rr(&url("http://he.net/")));
    }

    #[test]
    fn ordinary_operator_sites_pass() {
        for u in [
            "https://www.lumen.com/",
            "https://www.clarochile.cl/personas/",
            "https://www.orange.es/",
        ] {
            assert!(!blocked_for_rr(&url(u)), "{u} wrongly RR-blocked");
            assert!(!blocked_for_favicon(&url(u)), "{u} wrongly favicon-blocked");
        }
    }

    #[test]
    fn labelless_urls_are_blocked_conservatively() {
        assert!(blocked_for_rr(&url("http://localhost/")));
        assert!(blocked_for_favicon(&url("http://localhost/")));
    }

    #[test]
    fn blocklists_match_appendix_d_entries() {
        assert!(SUBDOMAIN_BLOCKLIST.contains(&"peeringdb"));
        assert!(SUBDOMAIN_BLOCKLIST.contains(&"oracle"));
        assert!(FINAL_URL_BLOCKLIST.contains(&"example.com"));
        assert!(FINAL_URL_BLOCKLIST.len() >= 5);
        assert!(SUBDOMAIN_BLOCKLIST.len() >= 10);
    }
}
