//! §4.1 — Organization keys: clustering by `OID_W` and `OID_P`.
//!
//! Both WHOIS and PeeringDB link networks to organization objects via a
//! one-to-many relation. Grouping ASNs by those foreign keys gives the two
//! foundational mappings; merging the *partially overlapping* clusters
//! they produce (Fig. 3's Lumen/CenturyLink case) is what the
//! pipeline's union-find does downstream.

use crate::mapping::AsOrgMapping;
use borges_peeringdb::PdbSnapshot;
use borges_types::Asn;
use borges_whois::WhoisRegistry;
use std::collections::BTreeMap;

/// Groups every allocated ASN by its WHOIS organization handle (`OID_W`) —
/// exactly CAIDA AS2Org's core inference.
pub fn oid_w_mapping(whois: &WhoisRegistry) -> AsOrgMapping {
    let mut groups: BTreeMap<&str, Vec<Asn>> = BTreeMap::new();
    for aut in whois.aut_nums() {
        groups.entry(aut.org.as_str()).or_default().push(aut.asn);
    }
    AsOrgMapping::from_groups(groups.into_values())
}

/// Groups every PeeringDB-registered ASN by its PeeringDB organization
/// (`OID_P`).
pub fn oid_p_mapping(pdb: &PdbSnapshot) -> AsOrgMapping {
    let mut groups: BTreeMap<u64, Vec<Asn>> = BTreeMap::new();
    for net in pdb.nets() {
        groups.entry(net.org_id.value()).or_default().push(net.asn);
    }
    AsOrgMapping::from_groups(groups.into_values())
}

/// The sibling *groups* each key source contributes as merge evidence for
/// the pipeline (same content as the mappings, exposed as plain groups).
pub fn oid_w_groups(whois: &WhoisRegistry) -> Vec<Vec<Asn>> {
    oid_w_mapping(whois)
        .clusters()
        .map(|(_, m)| m.to_vec())
        .collect()
}

/// See [`oid_w_groups`]; the PeeringDB analogue.
pub fn oid_p_groups(pdb: &PdbSnapshot) -> Vec<Vec<Asn>> {
    oid_p_mapping(pdb)
        .clusters()
        .map(|(_, m)| m.to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use borges_peeringdb::{PdbNetwork, PdbOrganization};
    use borges_types::{OrgName, PdbOrgId, WhoisOrgId};
    use borges_whois::{AutNum, Rir, WhoisOrg};

    fn whois_fixture() -> WhoisRegistry {
        let org = |id: &str| WhoisOrg {
            id: WhoisOrgId::new(id),
            name: OrgName::new(id),
            country: "US".parse().unwrap(),
            source: Rir::Arin,
            changed: 0,
        };
        let aut = |asn: u32, org: &str| AutNum {
            asn: Asn::new(asn),
            name: format!("N{asn}"),
            org: WhoisOrgId::new(org),
            source: Rir::Arin,
            changed: 0,
        };
        WhoisRegistry::builder()
            .org(org("LPL"))
            .org(org("CTL"))
            .aut(aut(3356, "LPL"))
            .aut(aut(3549, "LPL"))
            .aut(aut(209, "CTL"))
            .build()
            .unwrap()
    }

    fn pdb_fixture() -> PdbSnapshot {
        let org = |id: u64, name: &str| PdbOrganization {
            id: PdbOrgId::new(id),
            name: name.into(),
            website: String::new(),
            country: "US".into(),
        };
        let net = |id: u64, org: u64, asn: u32| PdbNetwork {
            id,
            org_id: PdbOrgId::new(org),
            asn: Asn::new(asn),
            name: format!("net{id}"),
            aka: String::new(),
            notes: String::new(),
            website: String::new(),
        };
        PdbSnapshot::builder()
            .org(org(1, "Lumen"))
            .net(net(10, 1, 3356))
            .net(net(11, 1, 209))
            .build()
            .unwrap()
    }

    #[test]
    fn oid_w_reproduces_the_whois_split() {
        let m = oid_w_mapping(&whois_fixture());
        assert_eq!(m.org_count(), 2);
        assert!(m.same_org(Asn::new(3356), Asn::new(3549)));
        assert!(!m.same_org(Asn::new(3356), Asn::new(209)));
    }

    #[test]
    fn oid_p_reproduces_the_pdb_merge() {
        let m = oid_p_mapping(&pdb_fixture());
        assert_eq!(m.org_count(), 1);
        assert!(m.same_org(Asn::new(3356), Asn::new(209)));
    }

    #[test]
    fn keys_cover_their_sources_exactly() {
        let w = oid_w_mapping(&whois_fixture());
        assert_eq!(w.asn_count(), 3);
        let p = oid_p_mapping(&pdb_fixture());
        assert_eq!(p.asn_count(), 2);
    }

    #[test]
    fn group_views_match_mappings() {
        let groups = oid_w_groups(&whois_fixture());
        assert_eq!(groups.len(), 2);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 3);
    }
}
