//! The AS-to-Organization mapping type.
//!
//! [`AsOrgMapping`] is what every method in this workspace — Borges, CAIDA
//! AS2Org, *as2org+* — ultimately produces: a partition of an ASN universe
//! into inferred organizations. The Organization Factor (§5.4), the impact
//! analyses (§6) and all ground-truth scoring consume this one type, which
//! is what makes the methods comparable.

use crate::unionfind::UnionFind;
use borges_types::Asn;
use std::collections::BTreeMap;

/// An inferred organization id within one mapping (dense, 0-based,
/// assigned in order of each cluster's smallest ASN — deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub usize);

/// A partition of ASNs into inferred organizations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AsOrgMapping {
    cluster_of: BTreeMap<Asn, ClusterId>,
    members: Vec<Vec<Asn>>,
}

impl AsOrgMapping {
    /// Builds a mapping from explicit groups. Group order is normalized;
    /// ASNs may appear in only one group (duplicates panic — they indicate
    /// a bug in the caller's clustering).
    pub fn from_groups(groups: impl IntoIterator<Item = Vec<Asn>>) -> Self {
        let mut sorted: Vec<Vec<Asn>> = groups
            .into_iter()
            .filter(|g| !g.is_empty())
            .map(|mut g| {
                g.sort_unstable();
                g.dedup();
                g
            })
            .collect();
        sorted.sort_by_key(|g| g[0]);
        let mut cluster_of = BTreeMap::new();
        for (i, group) in sorted.iter().enumerate() {
            for &asn in group {
                let prev = cluster_of.insert(asn, ClusterId(i));
                assert!(prev.is_none(), "{asn} appears in two clusters");
            }
        }
        AsOrgMapping {
            cluster_of,
            members: sorted,
        }
    }

    /// Builds a mapping by collapsing a union-find forest.
    pub fn from_union_find(uf: UnionFind) -> Self {
        Self::from_groups(uf.into_groups())
    }

    /// The cluster containing `asn`.
    pub fn cluster_of(&self, asn: Asn) -> Option<ClusterId> {
        self.cluster_of.get(&asn).copied()
    }

    /// The sorted members of a cluster.
    pub fn members(&self, id: ClusterId) -> &[Asn] {
        &self.members[id.0]
    }

    /// The sorted members of the cluster containing `asn` (empty slice if
    /// the ASN is unmapped).
    pub fn siblings_of(&self, asn: Asn) -> &[Asn] {
        match self.cluster_of(asn) {
            Some(id) => self.members(id),
            None => &[],
        }
    }

    /// Does this mapping place `a` and `b` under the same organization?
    pub fn same_org(&self, a: Asn, b: Asn) -> bool {
        match (self.cluster_of(a), self.cluster_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Number of ASNs mapped.
    pub fn asn_count(&self) -> usize {
        self.cluster_of.len()
    }

    /// Number of inferred organizations.
    pub fn org_count(&self) -> usize {
        self.members.len()
    }

    /// Cluster sizes in descending order — the curve the Organization
    /// Factor integrates (§5.4, Fig. 7).
    pub fn sizes_desc(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self.members.iter().map(Vec::len).collect();
        sizes.sort_unstable_by(|x, y| y.cmp(x));
        sizes
    }

    /// Iterates clusters as `(id, members)`.
    pub fn clusters(&self) -> impl Iterator<Item = (ClusterId, &[Asn])> {
        self.members
            .iter()
            .enumerate()
            .map(|(i, m)| (ClusterId(i), m.as_slice()))
    }

    /// Iterates all mapped ASNs in ascending order.
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.cluster_of.keys().copied()
    }

    /// The largest cluster (id, size), if any.
    pub fn largest(&self) -> Option<(ClusterId, usize)> {
        self.members
            .iter()
            .enumerate()
            .max_by_key(|(_, m)| m.len())
            .map(|(i, m)| (ClusterId(i), m.len()))
    }

    /// Mean cluster size (`ASNs / orgs`) — the "organizations manage an
    /// average of 1.23 networks" statistic of §5.2.
    pub fn mean_size(&self) -> f64 {
        if self.members.is_empty() {
            return 0.0;
        }
        self.asn_count() as f64 / self.org_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u32) -> Asn {
        Asn::new(n)
    }

    #[test]
    fn groups_build_and_query() {
        let m = AsOrgMapping::from_groups(vec![vec![a(3), a(1)], vec![a(2)]]);
        assert_eq!(m.asn_count(), 3);
        assert_eq!(m.org_count(), 2);
        assert!(m.same_org(a(1), a(3)));
        assert!(!m.same_org(a(1), a(2)));
        assert_eq!(m.siblings_of(a(3)), &[a(1), a(3)]);
        assert_eq!(m.siblings_of(a(99)), &[] as &[Asn]);
    }

    #[test]
    fn empty_groups_are_dropped() {
        let m = AsOrgMapping::from_groups(vec![vec![], vec![a(1)]]);
        assert_eq!(m.org_count(), 1);
    }

    #[test]
    fn duplicate_members_within_group_are_deduped() {
        let m = AsOrgMapping::from_groups(vec![vec![a(1), a(1), a(2)]]);
        assert_eq!(m.members(ClusterId(0)), &[a(1), a(2)]);
    }

    #[test]
    #[should_panic(expected = "appears in two clusters")]
    fn cross_group_duplicates_panic() {
        AsOrgMapping::from_groups(vec![vec![a(1)], vec![a(1), a(2)]]);
    }

    #[test]
    fn from_union_find_matches_groups() {
        let mut uf = UnionFind::with_universe([a(1), a(2), a(3), a(4)]);
        uf.union(a(1), a(4));
        let m = AsOrgMapping::from_union_find(uf);
        assert_eq!(m.org_count(), 3);
        assert!(m.same_org(a(1), a(4)));
    }

    #[test]
    fn sizes_desc_and_largest() {
        let m =
            AsOrgMapping::from_groups(vec![vec![a(1)], vec![a(2), a(3), a(4)], vec![a(5), a(6)]]);
        assert_eq!(m.sizes_desc(), vec![3, 2, 1]);
        let (id, size) = m.largest().unwrap();
        assert_eq!(size, 3);
        assert_eq!(m.members(id), &[a(2), a(3), a(4)]);
        assert!((m.mean_size() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn construction_is_order_insensitive() {
        let m1 = AsOrgMapping::from_groups(vec![vec![a(5), a(6)], vec![a(1), a(2)]]);
        let m2 = AsOrgMapping::from_groups(vec![vec![a(2), a(1)], vec![a(6), a(5)]]);
        assert_eq!(m1, m2);
    }

    #[test]
    fn empty_mapping_behaves() {
        let m = AsOrgMapping::default();
        assert_eq!(m.asn_count(), 0);
        assert_eq!(m.org_count(), 0);
        assert!(m.largest().is_none());
        assert_eq!(m.mean_size(), 0.0);
    }
}
