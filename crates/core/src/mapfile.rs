//! On-disk mapping format.
//!
//! The paper's contribution is ultimately a dataset — an
//! AS-to-Organization mapping others can consume. This module defines the
//! release format: a pipe-separated text file in the spirit of CAIDA's
//! AS2Org distribution, one line per ASN:
//!
//! ```text
//! # borges-mapping v1
//! # asn|org
//! 209|org0
//! 3356|org0
//! 3549|org0
//! 15133|org7
//! ```
//!
//! Cluster ids are deterministic (`org<k>`, ordered by each cluster's
//! smallest ASN), so the same mapping always serializes byte-identically
//! and diffs between releases are meaningful.

use crate::mapping::AsOrgMapping;
use borges_types::Asn;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

const HEADER: &str = "# borges-mapping v1";

/// A failure while reading a mapping file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapfileError {
    /// Missing or wrong version header.
    BadHeader,
    /// A malformed data line.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Why.
        reason: &'static str,
    },
    /// The same ASN appeared twice.
    DuplicateAsn {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// The repeated ASN.
        asn: Asn,
    },
}

impl fmt::Display for MapfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapfileError::BadHeader => write!(f, "missing '{HEADER}' header"),
            MapfileError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            MapfileError::DuplicateAsn { line, asn } => {
                write!(f, "line {line}: duplicate {asn}")
            }
        }
    }
}

impl Error for MapfileError {}

/// Serializes a mapping. Deterministic: ASNs ascending, cluster ids by
/// smallest member.
pub fn serialize(mapping: &AsOrgMapping) -> String {
    let mut out = String::with_capacity(mapping.asn_count() * 12 + 64);
    out.push_str(HEADER);
    out.push('\n');
    out.push_str("# asn|org\n");
    for asn in mapping.asns() {
        let cluster = mapping.cluster_of(asn).expect("asns() yields mapped ASNs");
        out.push_str(&format!("{}|org{}\n", asn.value(), cluster.0));
    }
    out
}

/// Parses a mapping file.
pub fn parse(text: &str) -> Result<AsOrgMapping, MapfileError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, first)) if first.trim_end() == HEADER => {}
        _ => return Err(MapfileError::BadHeader),
    }
    let mut groups: BTreeMap<String, Vec<Asn>> = BTreeMap::new();
    let mut seen: BTreeMap<Asn, usize> = BTreeMap::new();
    for (idx, raw) in lines {
        let line_no = idx + 1;
        let line = raw.trim_end_matches('\r');
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (asn_str, org) = line.split_once('|').ok_or(MapfileError::BadLine {
            line: line_no,
            reason: "expected asn|org",
        })?;
        let asn: Asn = asn_str.parse().map_err(|_| MapfileError::BadLine {
            line: line_no,
            reason: "invalid asn",
        })?;
        if org.trim().is_empty() {
            return Err(MapfileError::BadLine {
                line: line_no,
                reason: "empty org id",
            });
        }
        if seen.insert(asn, line_no).is_some() {
            return Err(MapfileError::DuplicateAsn { line: line_no, asn });
        }
        groups.entry(org.trim().to_string()).or_default().push(asn);
    }
    Ok(AsOrgMapping::from_groups(groups.into_values()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping() -> AsOrgMapping {
        AsOrgMapping::from_groups(vec![
            vec![Asn::new(209), Asn::new(3356), Asn::new(3549)],
            vec![Asn::new(15133)],
            vec![Asn::new(174), Asn::new(1239)],
        ])
    }

    #[test]
    fn roundtrip() {
        let m = mapping();
        let text = serialize(&m);
        let back = parse(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(serialize(&back), text, "stable serialization");
    }

    #[test]
    fn format_shape() {
        let text = serialize(&mapping());
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some(HEADER));
        assert_eq!(lines.next(), Some("# asn|org"));
        // ASNs ascending.
        let asns: Vec<u32> = text
            .lines()
            .filter(|l| !l.starts_with('#'))
            .map(|l| l.split('|').next().unwrap().parse().unwrap())
            .collect();
        let mut sorted = asns.clone();
        sorted.sort_unstable();
        assert_eq!(asns, sorted);
    }

    #[test]
    fn missing_header_rejected() {
        assert_eq!(parse("209|org0\n").unwrap_err(), MapfileError::BadHeader);
        assert_eq!(parse("").unwrap_err(), MapfileError::BadHeader);
    }

    #[test]
    fn malformed_lines_rejected() {
        let text = format!("{HEADER}\nnot-a-line\n");
        assert!(matches!(
            parse(&text).unwrap_err(),
            MapfileError::BadLine { line: 2, .. }
        ));
        let text = format!("{HEADER}\nxyz|org0\n");
        assert!(matches!(
            parse(&text).unwrap_err(),
            MapfileError::BadLine { line: 2, .. }
        ));
        let text = format!("{HEADER}\n209|\n");
        assert!(matches!(
            parse(&text).unwrap_err(),
            MapfileError::BadLine { line: 2, .. }
        ));
    }

    #[test]
    fn duplicate_asn_rejected() {
        let text = format!("{HEADER}\n209|a\n209|b\n");
        assert!(matches!(
            parse(&text).unwrap_err(),
            MapfileError::DuplicateAsn { line: 3, .. }
        ));
    }

    #[test]
    fn comments_and_blanks_tolerated() {
        let text = format!("{HEADER}\n# generated by test\n\n209|a\n3356|a\n");
        let m = parse(&text).unwrap();
        assert!(m.same_org(Asn::new(209), Asn::new(3356)));
    }

    #[test]
    fn arbitrary_org_labels_accepted_on_input() {
        // Foreign mappings (e.g. hand-edited) may use any labels; only the
        // partition matters.
        let text = format!("{HEADER}\n1|LUMEN\n2|LUMEN\n3|COGENT\n");
        let m = parse(&text).unwrap();
        assert!(m.same_org(Asn::new(1), Asn::new(2)));
        assert!(!m.same_org(Asn::new(1), Asn::new(3)));
    }
}
