//! §6 — Borges's impact: populations, transit, hypergiants, footprints.
//!
//! All four analyses compare a *base* mapping (AS2Org) against an
//! *improved* mapping (Borges) over the same universe. Because the
//! improved mapping is produced by adding merge evidence to the base's
//! union-find, every improved organization is a disjoint union of base
//! organizations — the "fragments" below.

use crate::mapping::{AsOrgMapping, ClusterId};
use borges_peeringdb::PdbSnapshot;
use borges_types::{Asn, CountryCode};
use borges_whois::WhoisRegistry;
use std::collections::{BTreeMap, BTreeSet};

/// Per-ASN user estimate (the APNIC join of §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsnPopulation {
    /// Estimated users behind the ASN.
    pub users: u64,
    /// Their market.
    pub country: CountryCode,
}

/// Resolves display names for organizations (PeeringDB name first, WHOIS
/// organization name second, `"AS<x>"` last).
pub struct OrgNamer<'a> {
    pdb: &'a PdbSnapshot,
    whois: &'a WhoisRegistry,
}

impl<'a> OrgNamer<'a> {
    /// Creates a namer over both registries.
    pub fn new(pdb: &'a PdbSnapshot, whois: &'a WhoisRegistry) -> Self {
        OrgNamer { pdb, whois }
    }

    /// A display name for the organization anchored at `asn`.
    pub fn name_of(&self, asn: Asn) -> String {
        if let Some(org) = self.pdb.org_of_asn(asn) {
            return org.name.clone();
        }
        if let Some(org) = self.whois.org_of(asn) {
            return org.name.as_str().to_string();
        }
        asn.to_string()
    }
}

// ---------------------------------------------------------------------
// §6.1 — access networks (Tables 7 & 8)
// ---------------------------------------------------------------------

/// One organization whose user population changed under the improved
/// mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrgChange {
    /// The member with the largest population (used for naming).
    pub anchor: Asn,
    /// Total users under the improved mapping.
    pub improved_users: u64,
    /// Users of the largest base fragment (what the base mapping saw as
    /// "the organization").
    pub base_max_users: u64,
    /// Number of base fragments with population that merged.
    pub fragments: usize,
}

impl OrgChange {
    /// The paper's marginal-growth metric: improvement over the largest
    /// prior group (§6.1's 300+200+100 → 100 example).
    pub fn marginal_growth(&self) -> u64 {
        self.improved_users - self.base_max_users
    }
}

/// Table 7 + the 193-million-user headline.
#[derive(Debug, Clone, Default)]
pub struct PopulationComparison {
    /// Organizations whose population changed, sorted by marginal growth
    /// descending (Table 8 reads the head of this list).
    pub changed: Vec<OrgChange>,
    /// Organizations with population whose composition did not change.
    pub unchanged_count: usize,
    /// Mean base population (largest fragment) over changed orgs.
    pub mean_base_changed: f64,
    /// Mean improved population over changed orgs.
    pub mean_improved_changed: f64,
    /// Mean population over unchanged orgs.
    pub mean_unchanged: f64,
    /// Σ marginal growth over changed orgs.
    pub total_marginal_growth: u64,
    /// Total users in the population table.
    pub total_users: u64,
}

impl PopulationComparison {
    /// Total organizations carrying population (changed + unchanged).
    pub fn total_orgs(&self) -> usize {
        self.changed.len() + self.unchanged_count
    }
}

/// Compares user populations between a base and an improved mapping.
pub fn population_comparison(
    base: &AsOrgMapping,
    improved: &AsOrgMapping,
    populations: &BTreeMap<Asn, AsnPopulation>,
) -> PopulationComparison {
    let mut out = PopulationComparison {
        total_users: populations.values().map(|p| p.users).sum(),
        ..Default::default()
    };
    let mut sum_unchanged = 0u64;
    let mut sum_base_changed = 0u64;
    let mut sum_improved_changed = 0u64;

    for (_, members) in improved.clusters() {
        let mut fragment_users: BTreeMap<ClusterId, u64> = BTreeMap::new();
        let mut improved_users = 0u64;
        let mut anchor = None;
        let mut anchor_users = 0u64;
        for &asn in members {
            if let Some(pop) = populations.get(&asn) {
                improved_users += pop.users;
                if pop.users >= anchor_users {
                    anchor_users = pop.users;
                    anchor = Some(asn);
                }
                let frag = base
                    .cluster_of(asn)
                    .expect("improved mapping refines the base universe");
                *fragment_users.entry(frag).or_insert(0) += pop.users;
            }
        }
        let anchor = match anchor {
            Some(a) => a,
            None => continue, // no population → not part of this analysis
        };
        let base_max = fragment_users.values().copied().max().unwrap_or(0);
        if fragment_users.len() > 1 && improved_users > base_max {
            sum_base_changed += base_max;
            sum_improved_changed += improved_users;
            out.changed.push(OrgChange {
                anchor,
                improved_users,
                base_max_users: base_max,
                fragments: fragment_users.len(),
            });
        } else {
            out.unchanged_count += 1;
            sum_unchanged += improved_users;
        }
    }

    out.changed.sort_by(|a, b| {
        b.marginal_growth()
            .cmp(&a.marginal_growth())
            .then(a.anchor.cmp(&b.anchor))
    });
    out.total_marginal_growth = out.changed.iter().map(OrgChange::marginal_growth).sum();
    let n_changed = out.changed.len().max(1) as f64;
    out.mean_base_changed = sum_base_changed as f64 / n_changed;
    out.mean_improved_changed = sum_improved_changed as f64 / n_changed;
    out.mean_unchanged = sum_unchanged as f64 / out.unchanged_count.max(1) as f64;
    out
}

// ---------------------------------------------------------------------
// §6.1 — transit networks (Fig. 8)
// ---------------------------------------------------------------------

/// A least-squares line fit over a rank window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankFit {
    /// The window: ranks `1..=top_n`.
    pub top_n: usize,
    /// Slope of cumulative marginal growth vs rank.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Mean marginal ASN growth per organization in the window.
    pub avg_growth: f64,
}

/// Fig. 8's series: cumulative marginal network growth by AS-Rank.
#[derive(Debug, Clone, Default)]
pub struct TransitGrowth {
    /// `(rank, cumulative marginal ASNs)` at every rank.
    pub series: Vec<(usize, u64)>,
    /// Linear fits for the top-100/1,000/10,000 windows (where the rank
    /// list is long enough).
    pub fits: Vec<RankFit>,
}

/// Computes cumulative marginal network growth of organizations by the
/// rank of their best-ranked ASN. Marginal growth of an organization is
/// `|improved cluster| − |base cluster of its best-ranked ASN|` — the
/// ASN-level analogue of the population metric, as the paper defines for
/// AS-Rank (§6.1).
pub fn transit_growth(
    base: &AsOrgMapping,
    improved: &AsOrgMapping,
    asrank: &[Asn],
) -> TransitGrowth {
    let mut seen: BTreeSet<ClusterId> = BTreeSet::new();
    let mut cumulative = 0u64;
    let mut series = Vec::with_capacity(asrank.len());
    for (idx, &asn) in asrank.iter().enumerate() {
        let rank = idx + 1;
        if let Some(cluster) = improved.cluster_of(asn) {
            if seen.insert(cluster) {
                let improved_size = improved.members(cluster).len();
                let base_size = base
                    .cluster_of(asn)
                    .map(|c| base.members(c).len())
                    .unwrap_or(1);
                cumulative += improved_size.saturating_sub(base_size) as u64;
            }
        }
        series.push((rank, cumulative));
    }
    let fits = [100usize, 1_000, 10_000]
        .into_iter()
        .filter(|&n| n <= series.len())
        .map(|n| {
            let window = &series[..n];
            let (slope, intercept) = least_squares(window);
            RankFit {
                top_n: n,
                slope,
                intercept,
                avg_growth: window.last().map(|&(_, c)| c).unwrap_or(0) as f64 / n as f64,
            }
        })
        .collect();
    TransitGrowth { series, fits }
}

fn least_squares(points: &[(usize, u64)]) -> (f64, f64) {
    let n = points.len() as f64;
    if points.len() < 2 {
        return (0.0, points.first().map(|&(_, y)| y as f64).unwrap_or(0.0));
    }
    let sum_x: f64 = points.iter().map(|&(x, _)| x as f64).sum();
    let sum_y: f64 = points.iter().map(|&(_, y)| y as f64).sum();
    let sum_xx: f64 = points.iter().map(|&(x, _)| (x * x) as f64).sum();
    let sum_xy: f64 = points.iter().map(|&(x, y)| x as f64 * y as f64).sum();
    let denom = n * sum_xx - sum_x * sum_x;
    if denom.abs() < f64::EPSILON {
        return (0.0, sum_y / n);
    }
    let slope = (n * sum_xy - sum_x * sum_y) / denom;
    let intercept = (sum_y - slope * sum_x) / n;
    (slope, intercept)
}

// ---------------------------------------------------------------------
// §6.1 — hypergiants (Fig. 9)
// ---------------------------------------------------------------------

/// One bar group of Fig. 9: the hypergiant's organization size under each
/// compared mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HypergiantRow {
    /// Display name.
    pub name: String,
    /// Headline ASN.
    pub asn: Asn,
    /// Organization size under each mapping, in caller order.
    pub sizes: Vec<usize>,
}

/// Computes Fig. 9's rows for a hypergiant roster across mappings.
pub fn hypergiant_sizes(
    roster: &[(String, Asn)],
    mappings: &[&AsOrgMapping],
) -> Vec<HypergiantRow> {
    roster
        .iter()
        .map(|(name, asn)| HypergiantRow {
            name: name.clone(),
            asn: *asn,
            sizes: mappings
                .iter()
                .map(|m| m.siblings_of(*asn).len().max(1))
                .collect(),
        })
        .collect()
}

// ---------------------------------------------------------------------
// §6.2 — country footprints (Table 9)
// ---------------------------------------------------------------------

/// One organization's footprint change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FootprintChange {
    /// Max-population member (for naming).
    pub anchor: Asn,
    /// Countries with users under the base mapping.
    pub base_countries: usize,
    /// Countries with users under the improved mapping.
    pub improved_countries: usize,
}

impl FootprintChange {
    /// Countries gained.
    pub fn gain(&self) -> usize {
        self.improved_countries - self.base_countries
    }
}

/// Table 9 + the "average marginal increase is 2.37 countries" headline.
#[derive(Debug, Clone, Default)]
pub struct FootprintComparison {
    /// Organizations whose footprint expanded, sorted by gain descending.
    pub expanded: Vec<FootprintChange>,
    /// Mean gain over expanded organizations.
    pub mean_gain: f64,
}

/// Compares country-level footprints (countries where the APNIC-style
/// population table sees users for the organization).
pub fn country_footprint(
    base: &AsOrgMapping,
    improved: &AsOrgMapping,
    populations: &BTreeMap<Asn, AsnPopulation>,
) -> FootprintComparison {
    let mut out = FootprintComparison::default();
    let mut total_gain = 0usize;

    for (_, members) in improved.clusters() {
        let mut improved_countries: BTreeSet<CountryCode> = BTreeSet::new();
        let mut anchor = None;
        let mut anchor_users = 0u64;
        for &asn in members {
            if let Some(pop) = populations.get(&asn) {
                improved_countries.insert(pop.country);
                if pop.users >= anchor_users {
                    anchor_users = pop.users;
                    anchor = Some(asn);
                }
            }
        }
        let anchor = match anchor {
            Some(a) => a,
            None => continue,
        };
        let base_countries: BTreeSet<CountryCode> = base
            .siblings_of(anchor)
            .iter()
            .filter_map(|a| populations.get(a))
            .map(|p| p.country)
            .collect();
        if improved_countries.len() > base_countries.len() {
            total_gain += improved_countries.len() - base_countries.len();
            out.expanded.push(FootprintChange {
                anchor,
                base_countries: base_countries.len(),
                improved_countries: improved_countries.len(),
            });
        }
    }

    out.expanded
        .sort_by(|a, b| b.gain().cmp(&a.gain()).then(a.anchor.cmp(&b.anchor)));
    out.mean_gain = total_gain as f64 / out.expanded.len().max(1) as f64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop(entries: &[(u32, u64, &str)]) -> BTreeMap<Asn, AsnPopulation> {
        entries
            .iter()
            .map(|&(asn, users, cc)| {
                (
                    Asn::new(asn),
                    AsnPopulation {
                        users,
                        country: cc.parse().unwrap(),
                    },
                )
            })
            .collect()
    }

    fn m(groups: &[&[u32]]) -> AsOrgMapping {
        AsOrgMapping::from_groups(
            groups
                .iter()
                .map(|g| g.iter().map(|&x| Asn::new(x)).collect()),
        )
    }

    #[test]
    fn marginal_growth_matches_the_papers_example() {
        // Org A (improved) merges B=300, C=200, D=100 users (the paper's
        // §6.1 worked example says growth over the largest prior group).
        let base = m(&[&[1], &[2], &[3]]);
        let improved = m(&[&[1, 2, 3]]);
        let populations = pop(&[(1, 300, "US"), (2, 200, "US"), (3, 100, "US")]);
        let cmp = population_comparison(&base, &improved, &populations);
        assert_eq!(cmp.changed.len(), 1);
        assert_eq!(cmp.changed[0].base_max_users, 300);
        assert_eq!(cmp.changed[0].improved_users, 600);
        assert_eq!(cmp.changed[0].marginal_growth(), 300);
        assert_eq!(cmp.total_marginal_growth, 300);
        assert_eq!(cmp.changed[0].anchor, Asn::new(1));
    }

    #[test]
    fn unchanged_orgs_are_counted_and_averaged() {
        let base = m(&[&[1], &[2], &[3, 4]]);
        let improved = m(&[&[1], &[2], &[3, 4]]);
        let populations = pop(&[(1, 100, "US"), (2, 300, "US"), (3, 50, "US")]);
        let cmp = population_comparison(&base, &improved, &populations);
        assert!(cmp.changed.is_empty());
        assert_eq!(cmp.unchanged_count, 3);
        assert!((cmp.mean_unchanged - 150.0).abs() < 1e-9);
        assert_eq!(cmp.total_orgs(), 3);
    }

    #[test]
    fn merging_populationless_fragments_is_not_a_change() {
        // The improved mapping merges a pop-carrying org with a transit
        // org that has no users: population unchanged.
        let base = m(&[&[1], &[2]]);
        let improved = m(&[&[1, 2]]);
        let populations = pop(&[(1, 500, "US")]);
        let cmp = population_comparison(&base, &improved, &populations);
        assert!(cmp.changed.is_empty());
        assert_eq!(cmp.unchanged_count, 1);
    }

    #[test]
    fn transit_growth_series_and_fit() {
        // Rank order: 1, 2, 3, 4. Improved merges {1,2,3}; base splits.
        let base = m(&[&[1], &[2], &[3], &[4]]);
        let improved = m(&[&[1, 2, 3], &[4]]);
        let asrank = vec![Asn::new(1), Asn::new(2), Asn::new(3), Asn::new(4)];
        let growth = transit_growth(&base, &improved, &asrank);
        // Rank 1: org {1,2,3}, growth 3−1 = 2. Ranks 2,3: same org, seen.
        // Rank 4: growth 0.
        assert_eq!(growth.series, vec![(1, 2), (2, 2), (3, 2), (4, 2)]);
        assert!(growth.fits.is_empty(), "fewer than 100 ranks → no fits");
    }

    #[test]
    fn transit_growth_counts_each_org_once() {
        let base = m(&[&[1], &[2]]);
        let improved = m(&[&[1, 2]]);
        let asrank = vec![Asn::new(2), Asn::new(1)];
        let growth = transit_growth(&base, &improved, &asrank);
        assert_eq!(growth.series.last().unwrap().1, 1, "not double-counted");
    }

    #[test]
    fn least_squares_recovers_a_line() {
        let pts: Vec<(usize, u64)> = (1..=50).map(|x| (x, (3 * x + 7) as u64)).collect();
        let (slope, intercept) = least_squares(&pts);
        assert!((slope - 3.0).abs() < 1e-9);
        assert!((intercept - 7.0).abs() < 1e-6);
    }

    #[test]
    fn hypergiant_rows() {
        let base = m(&[&[15133], &[22822, 1], &[15169]]);
        let improved = m(&[&[15133, 22822, 1], &[15169]]);
        let roster = vec![
            ("EdgeCast".to_string(), Asn::new(15133)),
            ("Google".to_string(), Asn::new(15169)),
            ("Ghost".to_string(), Asn::new(9999)),
        ];
        let rows = hypergiant_sizes(&roster, &[&base, &improved]);
        assert_eq!(rows[0].sizes, vec![1, 3]);
        assert_eq!(rows[1].sizes, vec![1, 1]);
        assert_eq!(rows[2].sizes, vec![1, 1], "unmapped ASN counts as itself");
    }

    #[test]
    fn footprint_expansion() {
        let base = m(&[&[1], &[2], &[3]]);
        let improved = m(&[&[1, 2, 3]]);
        let populations = pop(&[(1, 900, "JM"), (2, 100, "TT"), (3, 50, "HT")]);
        let cmp = country_footprint(&base, &improved, &populations);
        assert_eq!(cmp.expanded.len(), 1);
        assert_eq!(cmp.expanded[0].base_countries, 1);
        assert_eq!(cmp.expanded[0].improved_countries, 3);
        assert_eq!(cmp.expanded[0].gain(), 2);
        assert!((cmp.mean_gain - 2.0).abs() < 1e-9);
        assert_eq!(cmp.expanded[0].anchor, Asn::new(1));
    }

    #[test]
    fn same_country_merges_do_not_expand_footprint() {
        let base = m(&[&[1], &[2]]);
        let improved = m(&[&[1, 2]]);
        let populations = pop(&[(1, 900, "US"), (2, 100, "US")]);
        let cmp = country_footprint(&base, &improved, &populations);
        assert!(cmp.expanded.is_empty());
    }
}
