//! The persistable compiled world (DESIGN.md §12).
//!
//! [`CompiledWorld`] is the serde wire form of everything a serving
//! [`Borges`](crate::pipeline::Borges) carries: the incremental-remap
//! [`SnapshotState`] (interner slots, edge segments, fingerprints, LLM
//! memos) plus the [`ServingExtras`] a server reads at request time —
//! evidence-provenance groups, the per-stage funnel statistics behind
//! `/v1/coverage` and the run ledger, and the web-inference outputs.
//! `borges-store` frames this value into a checksummed on-disk artifact;
//! [`Borges::to_world`](crate::pipeline::Borges::to_world) and
//! [`Borges::from_world`](crate::pipeline::Borges::from_world) convert
//! losslessly in both directions, so a store-loaded pipeline is
//! byte-identical to the freshly compiled one it was captured from.
//!
//! Two audit-only fields are deliberately *not* persisted, because no
//! serve or re-persist path reads them: favicon [`GroupDecision`]
//! records (Table 5 scoring detail) and the stage `memo_hits` counters
//! (meaningful only for the run that populated the memo).
//!
//! [`GroupDecision`]: crate::web::favicon::GroupDecision

use crate::delta::SnapshotState;
use crate::ner::NerStats;
use crate::web::favicon::FaviconStats;
use crate::web::rr::RrStats;
use borges_llm::chat::Usage;
use borges_resilience::ResilienceStats;
use borges_telemetry::CacheStats;
use borges_types::Url;
use borges_websim::ScrapeStats;
use serde::{Deserialize, Serialize};

/// One NER extraction row on the wire: a subject ASN and its filtered
/// sibling extractions, mirroring `NerResult::per_entry`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NerEntryRecord {
    /// The subject ASN.
    pub asn: u32,
    /// The extracted (post-filter) sibling ASNs.
    pub siblings: Vec<u32>,
}

/// One final-URL group on the wire, mirroring the parallel
/// `RrInference::groups` / `RrInference::final_urls` vectors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RrGroupRecord {
    /// The final URL every member landed on.
    pub final_url: Url,
    /// Every ASN that landed there.
    pub members: Vec<u32>,
}

/// One favicon merge group on the wire, mirroring the parallel
/// `FaviconInference::groups` / `group_favicons` vectors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaviconGroupRecord {
    /// The shared favicon's raw 64-bit hash.
    pub favicon: u64,
    /// The ASNs inferred to share a company.
    pub members: Vec<u32>,
}

/// Wire mirror of [`ResilienceStats`] (the live struct predates serde
/// in this workspace and stays serde-free on purpose — it is compared
/// by the chaos keystones, and the wire form must be free to evolve
/// separately).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceStatsRecord {
    /// Logical calls driven through the retry policy.
    pub calls: u64,
    /// Physical attempts those calls spent.
    pub attempts: u64,
    /// Calls that succeeded only after ≥ 1 transient failure.
    pub recovered: u64,
    /// Calls abandoned after exhausting their budgets.
    pub abandoned: u64,
    /// Circuit-breaker trips.
    pub breaker_trips: u64,
    /// Attempts fast-failed by an open breaker.
    pub breaker_fast_fails: u64,
}

impl From<&ResilienceStats> for ResilienceStatsRecord {
    fn from(s: &ResilienceStats) -> Self {
        ResilienceStatsRecord {
            calls: s.calls,
            attempts: s.attempts,
            recovered: s.recovered,
            abandoned: s.abandoned,
            breaker_trips: s.breaker_trips,
            breaker_fast_fails: s.breaker_fast_fails,
        }
    }
}

impl From<&ResilienceStatsRecord> for ResilienceStats {
    fn from(r: &ResilienceStatsRecord) -> Self {
        ResilienceStats {
            calls: r.calls,
            attempts: r.attempts,
            recovered: r.recovered,
            abandoned: r.abandoned,
            breaker_trips: r.breaker_trips,
            breaker_fast_fails: r.breaker_fast_fails,
        }
    }
}

/// Wire mirror of [`ScrapeStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScrapeStatsRecord {
    /// Input pairs with a parseable website URL.
    pub entries_with_website: usize,
    /// Input pairs with an unparseable website field.
    pub entries_with_invalid_url: usize,
    /// Input pairs abandoned at the transport layer.
    pub entries_abandoned: usize,
    /// Distinct requested URLs.
    pub unique_urls: usize,
    /// Distinct requested URLs that resolved.
    pub reachable_urls: usize,
    /// Distinct final URLs.
    pub unique_final_urls: usize,
    /// Distinct final URLs serving a favicon.
    pub final_urls_with_favicon: usize,
    /// Distinct favicons.
    pub unique_favicons: usize,
    /// Resilience spend of the crawl.
    pub resilience: ResilienceStatsRecord,
}

impl From<&ScrapeStats> for ScrapeStatsRecord {
    fn from(s: &ScrapeStats) -> Self {
        ScrapeStatsRecord {
            entries_with_website: s.entries_with_website,
            entries_with_invalid_url: s.entries_with_invalid_url,
            entries_abandoned: s.entries_abandoned,
            unique_urls: s.unique_urls,
            reachable_urls: s.reachable_urls,
            unique_final_urls: s.unique_final_urls,
            final_urls_with_favicon: s.final_urls_with_favicon,
            unique_favicons: s.unique_favicons,
            resilience: (&s.resilience).into(),
        }
    }
}

impl From<&ScrapeStatsRecord> for ScrapeStats {
    fn from(r: &ScrapeStatsRecord) -> Self {
        ScrapeStats {
            entries_with_website: r.entries_with_website,
            entries_with_invalid_url: r.entries_with_invalid_url,
            entries_abandoned: r.entries_abandoned,
            unique_urls: r.unique_urls,
            reachable_urls: r.reachable_urls,
            unique_final_urls: r.unique_final_urls,
            final_urls_with_favicon: r.final_urls_with_favicon,
            unique_favicons: r.unique_favicons,
            resilience: (&r.resilience).into(),
        }
    }
}

/// Wire mirror of [`NerStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NerStatsRecord {
    /// PeeringDB entries in the snapshot.
    pub entries_total: usize,
    /// Entries with non-empty `notes` or `aka`.
    pub entries_with_text: usize,
    /// Entries passing the numeric input filter.
    pub entries_numeric: usize,
    /// … of which the digits are in `aka`.
    pub numeric_in_aka: usize,
    /// … of which the digits are in `notes`.
    pub numeric_in_notes: usize,
    /// LLM calls issued.
    pub llm_calls: usize,
    /// LLM calls abandoned by the transport.
    pub llm_abandoned: usize,
    /// Reply ASNs rejected by the hallucination filter.
    pub filtered_out: usize,
    /// Entries with at least one surviving extraction.
    pub entries_with_siblings: usize,
    /// Distinct sibling ASNs extracted.
    pub extracted_asns: usize,
    /// Token accounting.
    pub usage: Usage,
    /// Resilience spend of the stage.
    pub resilience: ResilienceStatsRecord,
}

impl From<&NerStats> for NerStatsRecord {
    fn from(s: &NerStats) -> Self {
        NerStatsRecord {
            entries_total: s.entries_total,
            entries_with_text: s.entries_with_text,
            entries_numeric: s.entries_numeric,
            numeric_in_aka: s.numeric_in_aka,
            numeric_in_notes: s.numeric_in_notes,
            llm_calls: s.llm_calls,
            llm_abandoned: s.llm_abandoned,
            filtered_out: s.filtered_out,
            entries_with_siblings: s.entries_with_siblings,
            extracted_asns: s.extracted_asns,
            usage: s.usage,
            resilience: (&s.resilience).into(),
        }
    }
}

impl From<&NerStatsRecord> for NerStats {
    fn from(r: &NerStatsRecord) -> Self {
        NerStats {
            entries_total: r.entries_total,
            entries_with_text: r.entries_with_text,
            entries_numeric: r.entries_numeric,
            numeric_in_aka: r.numeric_in_aka,
            numeric_in_notes: r.numeric_in_notes,
            llm_calls: r.llm_calls,
            llm_abandoned: r.llm_abandoned,
            filtered_out: r.filtered_out,
            entries_with_siblings: r.entries_with_siblings,
            extracted_asns: r.extracted_asns,
            usage: r.usage,
            resilience: (&r.resilience).into(),
        }
    }
}

/// Wire mirror of [`RrStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RrStatsRecord {
    /// Networks with a resolved final URL.
    pub networks_with_final_url: usize,
    /// Networks dropped by the blocklist.
    pub blocked_networks: usize,
    /// Distinct (non-blocked) final URLs.
    pub distinct_final_urls: usize,
    /// Final URLs shared by more than one network.
    pub shared_final_urls: usize,
}

impl From<&RrStats> for RrStatsRecord {
    fn from(s: &RrStats) -> Self {
        RrStatsRecord {
            networks_with_final_url: s.networks_with_final_url,
            blocked_networks: s.blocked_networks,
            distinct_final_urls: s.distinct_final_urls,
            shared_final_urls: s.shared_final_urls,
        }
    }
}

impl From<&RrStatsRecord> for RrStats {
    fn from(r: &RrStatsRecord) -> Self {
        RrStats {
            networks_with_final_url: r.networks_with_final_url,
            blocked_networks: r.blocked_networks,
            distinct_final_urls: r.distinct_final_urls,
            shared_final_urls: r.shared_final_urls,
        }
    }
}

/// Wire mirror of [`FaviconStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaviconStatsRecord {
    /// Distinct favicons observed.
    pub favicons_total: usize,
    /// Favicons shared by more than one final URL.
    pub favicons_shared: usize,
    /// Final URLs involved in shared favicons.
    pub urls_in_shared: usize,
    /// Step-1 same-brand-label hits.
    pub same_label_groups: usize,
    /// Groups merged by step 1.
    pub merged_by_step1: usize,
    /// Step-2 LLM calls issued.
    pub llm_calls: usize,
    /// Step-2 calls abandoned by the transport.
    pub llm_abandoned: usize,
    /// Groups merged by the LLM.
    pub merged_by_llm: usize,
    /// Groups rejected as framework icons.
    pub framework_rejections: usize,
    /// Groups the model declined to name.
    pub dont_know: usize,
    /// Token accounting.
    pub usage: Usage,
    /// Resilience spend of the stage.
    pub resilience: ResilienceStatsRecord,
}

impl From<&FaviconStats> for FaviconStatsRecord {
    fn from(s: &FaviconStats) -> Self {
        FaviconStatsRecord {
            favicons_total: s.favicons_total,
            favicons_shared: s.favicons_shared,
            urls_in_shared: s.urls_in_shared,
            same_label_groups: s.same_label_groups,
            merged_by_step1: s.merged_by_step1,
            llm_calls: s.llm_calls,
            llm_abandoned: s.llm_abandoned,
            merged_by_llm: s.merged_by_llm,
            framework_rejections: s.framework_rejections,
            dont_know: s.dont_know,
            usage: s.usage,
            resilience: (&s.resilience).into(),
        }
    }
}

impl From<&FaviconStatsRecord> for FaviconStats {
    fn from(r: &FaviconStatsRecord) -> Self {
        FaviconStats {
            favicons_total: r.favicons_total,
            favicons_shared: r.favicons_shared,
            urls_in_shared: r.urls_in_shared,
            same_label_groups: r.same_label_groups,
            merged_by_step1: r.merged_by_step1,
            llm_calls: r.llm_calls,
            llm_abandoned: r.llm_abandoned,
            merged_by_llm: r.merged_by_llm,
            framework_rejections: r.framework_rejections,
            dont_know: r.dont_know,
            usage: r.usage,
            resilience: (&r.resilience).into(),
        }
    }
}

/// Everything a serving pipeline carries beyond the [`SnapshotState`]:
/// evidence-provenance groups, web-inference outputs, and the per-stage
/// funnel statistics the coverage/ledger endpoints read.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServingExtras {
    /// OID_W sibling groups (evidence provenance for `/v1/evidence`).
    pub oid_w_groups: Vec<Vec<u32>>,
    /// OID_P sibling groups.
    pub oid_p_groups: Vec<Vec<u32>>,
    /// NER extraction rows (`NerResult::per_entry`; the memo itself
    /// lives in the snapshot state).
    pub ner_entries: Vec<NerEntryRecord>,
    /// NER funnel counters.
    pub ner_stats: NerStatsRecord,
    /// Final-URL groups with their URLs, in inference order.
    pub rr_groups: Vec<RrGroupRecord>,
    /// R&R counters.
    pub rr_stats: RrStatsRecord,
    /// Favicon merge groups with their favicons, in inference order.
    pub favicon_groups: Vec<FaviconGroupRecord>,
    /// Favicon funnel counters.
    pub favicon_stats: FaviconStatsRecord,
    /// Crawl funnel counters.
    pub scrape_stats: ScrapeStatsRecord,
    /// Crawl redirect-cache counters (observational, feeds the ledger).
    pub web_cache: CacheStats,
}

/// The full persistable compiled world: the incremental-remap state
/// plus the serving extras. This is what `borges-store` frames into an
/// on-disk artifact.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CompiledWorld {
    /// Interner slots, edge segments, fingerprints, LLM memos.
    pub state: SnapshotState,
    /// Everything else a serving pipeline reads.
    pub extras: ServingExtras,
    /// Timeline epoch this world was published at. `0` for worlds that
    /// were never appended to a timeline; stamped by the timeline layer
    /// before the artifact is written, so the epoch participates in the
    /// content address and a relabeled chain link is detectable.
    #[serde(default)]
    pub epoch: u64,
}

impl CompiledWorld {
    /// Semantic validation of a decoded world, run before any conversion
    /// back to a live pipeline — a decoded-but-insane artifact (out of
    /// serde's reach but inside ours) must yield an error here, never a
    /// panic downstream. Checks, in order: the snapshot state's own
    /// invariants (schema tag, numeric keys), slot uniqueness (the
    /// interner rebuild asserts it), and that every persisted edge
    /// endpoint is a dense id inside the slot table (the union-find
    /// replay indexes by it).
    pub fn validate(&self) -> Result<(), String> {
        self.state.validate()?;
        let mut seen = std::collections::BTreeSet::new();
        for slot in &self.state.slots {
            if !seen.insert(slot.asn) {
                return Err(format!("duplicate interner slot for AS{}", slot.asn));
            }
        }
        let len = self.state.slots.len() as u64;
        for (feature, segments) in [
            ("oid_w", &self.state.oid_w),
            ("oid_p", &self.state.oid_p),
            ("na", &self.state.na),
            ("rr", &self.state.rr),
            ("favicons", &self.state.favicons),
        ] {
            for seg in segments.iter() {
                for edge in &seg.edges {
                    if u64::from(edge.a) >= len || u64::from(edge.b) >= len {
                        return Err(format!(
                            "{feature} segment {:?} has edge ({}, {}) outside the \
                             {len}-slot universe",
                            seg.key, edge.a, edge.b
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::{EdgeRecord, SegmentRecord, SlotRecord, SNAPSHOT_STATE_SCHEMA};

    fn minimal_world() -> CompiledWorld {
        CompiledWorld {
            state: SnapshotState {
                schema: SNAPSHOT_STATE_SCHEMA.to_string(),
                slots: vec![
                    SlotRecord {
                        asn: 10,
                        live: true,
                    },
                    SlotRecord {
                        asn: 20,
                        live: true,
                    },
                ],
                oid_w: vec![SegmentRecord {
                    key: "ORG-1".to_string(),
                    fp: 1,
                    edges: vec![EdgeRecord { a: 0, b: 1 }],
                }],
                ..SnapshotState::default()
            },
            extras: ServingExtras::default(),
            epoch: 0,
        }
    }

    #[test]
    fn valid_world_passes() {
        minimal_world().validate().unwrap();
    }

    #[test]
    fn duplicate_slots_are_rejected() {
        let mut world = minimal_world();
        world.state.slots.push(SlotRecord {
            asn: 10,
            live: false,
        });
        let err = world.validate().unwrap_err();
        assert!(err.contains("duplicate interner slot"), "{err}");
    }

    #[test]
    fn out_of_range_edges_are_rejected() {
        let mut world = minimal_world();
        world.state.oid_w[0].edges.push(EdgeRecord { a: 0, b: 7 });
        let err = world.validate().unwrap_err();
        assert!(err.contains("outside"), "{err}");
    }

    #[test]
    fn wrong_inner_schema_is_rejected() {
        let mut world = minimal_world();
        world.state.schema = "bogus".to_string();
        let err = world.validate().unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn stats_mirrors_round_trip() {
        let stats = ScrapeStats {
            entries_with_website: 5,
            unique_favicons: 2,
            resilience: ResilienceStats {
                calls: 9,
                attempts: 12,
                ..ResilienceStats::default()
            },
            ..ScrapeStats::default()
        };
        let wire: ScrapeStatsRecord = (&stats).into();
        let back: ScrapeStats = (&wire).into();
        assert_eq!(back, stats);
    }
}
