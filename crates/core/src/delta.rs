//! Incremental snapshot re-mapping (DESIGN.md §9).
//!
//! Borges runs against periodic WHOIS/PeeringDB snapshots, and between
//! consecutive snapshots only a small fraction of records change. This
//! module holds everything the incremental path needs to avoid paying
//! the full compilation cost at snapshot T+1:
//!
//! * **Record fingerprints** ([`SourceFingerprints`]) — one 64-bit
//!   FNV-1a hash per source record (WHOIS org/aut, PeeringDB org/net,
//!   crawled site), captured at every run and persisted with the state.
//! * **Delta taxonomy** ([`SnapshotDelta`]) — comparing stored against
//!   fresh fingerprints classifies every record as unchanged / added /
//!   removed / modified, per source.
//! * **Edge segments** ([`EdgeSegment`]) — the compiled dense edge
//!   lists, partitioned by the source key that derived them (WHOIS org
//!   handle, PeeringDB org id, NER subject, final URL, favicon hash).
//!   [`merge_feature`] replays only the segments whose member
//!   fingerprint changed and retains the rest verbatim — the per-feature
//!   union-find replay the tentpole asks for.
//! * **Persisted state** ([`SnapshotState`]) — the serde wire form of
//!   the compiled evidence (interner slots, segments, fingerprints, and
//!   the LLM reply memos), written by `map --state-out` and reloaded by
//!   `remap --base-state`.
//!
//! Fingerprints are 64-bit FNV-1a, like [`borges_types::FaviconHash`]:
//! fast, dependency-free, and collision-safe at the paper's scale. The
//! threat model is accidental collision between honest records, not
//! adversarial preimages. `std::hash` is deliberately not used — its
//! output is unstable across releases, and these hashes persist.

use crate::ner::{NerMemoEntry, NerResult};
use crate::web::favicon::{FaviconInference, FaviconMemo};
use crate::web::rr::RrInference;
use borges_peeringdb::{PdbNetwork, PdbOrganization, PdbSnapshot};
use borges_types::{Asn, AsnInterner, FaviconHash, WhoisOrgId};
use borges_websim::{ScrapeReport, ScrapedSite};
use borges_whois::{AutNum, WhoisOrg, WhoisRegistry};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a (64-bit) fingerprint builder with
/// length-prefixed field framing, so `("ab", "c")` and `("a", "bc")`
/// hash differently.
#[derive(Debug, Clone)]
pub struct Fingerprinter(u64);

impl Fingerprinter {
    /// A fresh fingerprint at the FNV offset basis.
    pub fn new() -> Self {
        Fingerprinter(FNV_OFFSET)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Mixes in a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Mixes in a string, length-prefixed.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    /// The finished 64-bit fingerprint.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Fingerprinter::new()
    }
}

/// Fingerprint of a WHOIS organization record.
pub fn whois_org_fp(org: &WhoisOrg) -> u64 {
    let mut fp = Fingerprinter::new();
    fp.str(org.name.as_str());
    fp.str(&org.country.to_string());
    fp.str(org.source.as_str());
    fp.u64(u64::from(org.changed));
    fp.finish()
}

/// Fingerprint of a WHOIS aut-num record (covers its org link, so a
/// reassignment dirties the record even when nothing else moved).
pub fn whois_aut_fp(aut: &AutNum) -> u64 {
    let mut fp = Fingerprinter::new();
    fp.str(&aut.name);
    fp.str(aut.org.as_str());
    fp.str(aut.source.as_str());
    fp.u64(u64::from(aut.changed));
    fp.finish()
}

/// Fingerprint of a PeeringDB organization record.
pub fn pdb_org_fp(org: &PdbOrganization) -> u64 {
    let mut fp = Fingerprinter::new();
    fp.str(&org.name);
    fp.str(&org.website);
    fp.str(&org.country);
    fp.finish()
}

/// Fingerprint of a PeeringDB network record (covers everything the
/// pipeline reads: org link, free text, website).
pub fn pdb_net_fp(net: &PdbNetwork) -> u64 {
    let mut fp = Fingerprinter::new();
    fp.u64(net.id);
    fp.u64(net.org_id.value());
    fp.str(&net.name);
    fp.str(&net.aka);
    fp.str(&net.notes);
    fp.str(&net.website);
    fp.finish()
}

/// Fingerprint of a crawled site result (requested URL, final URL,
/// favicon — the three observations the web features consume).
pub fn site_fp(site: &ScrapedSite) -> u64 {
    let mut fp = Fingerprinter::new();
    fp.str(&site.requested.canonical());
    match &site.final_url {
        Some(url) => {
            fp.u64(1);
            fp.str(&url.canonical());
        }
        None => fp.u64(0),
    }
    match site.favicon {
        Some(h) => {
            fp.u64(1);
            fp.u64(h.raw());
        }
        None => fp.u64(0),
    }
    fp.finish()
}

/// Fingerprint of the NER-relevant text of a PeeringDB entry — the memo
/// key guard for reusing an LLM extraction reply.
pub fn ner_text_fp(notes: &str, aka: &str) -> u64 {
    let mut fp = Fingerprinter::new();
    fp.str(notes);
    fp.str(aka);
    fp.finish()
}

/// Fingerprint of a favicon group's step-2 classifier input (the
/// ordered canonical URL list) — the memo guard for reusing a
/// classification reply.
pub fn favicon_urls_fp(urls: &[String]) -> u64 {
    let mut fp = Fingerprinter::new();
    fp.u64(urls.len() as u64);
    for url in urls {
        fp.str(url);
    }
    fp.finish()
}

/// Per-record fingerprints of the three input worlds, captured at every
/// pipeline run and persisted with the compiled state. Comparing two
/// captures yields the [`SnapshotDelta`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceFingerprints {
    /// WHOIS organization records, by org handle.
    pub whois_org: BTreeMap<WhoisOrgId, u64>,
    /// WHOIS aut-num records, by ASN.
    pub whois_aut: BTreeMap<Asn, u64>,
    /// PeeringDB organization records, by org id.
    pub pdb_org: BTreeMap<u64, u64>,
    /// PeeringDB network records, by ASN.
    pub pdb_net: BTreeMap<Asn, u64>,
    /// Crawled site results, by ASN.
    pub site: BTreeMap<Asn, u64>,
}

impl SourceFingerprints {
    /// Fingerprints every record of the three inputs.
    pub fn capture(whois: &WhoisRegistry, pdb: &PdbSnapshot, report: &ScrapeReport) -> Self {
        SourceFingerprints {
            whois_org: whois
                .orgs()
                .map(|o| (o.id.clone(), whois_org_fp(o)))
                .collect(),
            whois_aut: whois.aut_nums().map(|a| (a.asn, whois_aut_fp(a))).collect(),
            pdb_org: pdb.orgs().map(|o| (o.id.value(), pdb_org_fp(o))).collect(),
            pdb_net: pdb.nets().map(|n| (n.asn, pdb_net_fp(n))).collect(),
            site: report
                .sites
                .iter()
                .map(|(&asn, site)| (asn, site_fp(site)))
                .collect(),
        }
    }
}

/// How one source's records moved between two snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceDelta {
    /// Records present in both snapshots with identical fingerprints.
    pub unchanged: usize,
    /// Records present only in the later snapshot.
    pub added: usize,
    /// Records present only in the earlier snapshot.
    pub removed: usize,
    /// Records present in both with differing fingerprints.
    pub modified: usize,
}

impl SourceDelta {
    fn compute<K: Ord>(old: &BTreeMap<K, u64>, new: &BTreeMap<K, u64>) -> Self {
        let mut delta = SourceDelta::default();
        for (key, fp) in new {
            match old.get(key) {
                Some(old_fp) if old_fp == fp => delta.unchanged += 1,
                Some(_) => delta.modified += 1,
                None => delta.added += 1,
            }
        }
        delta.removed = old.keys().filter(|k| !new.contains_key(k)).count();
        delta
    }

    /// Records whose evidence must be re-derived.
    pub fn dirty(&self) -> usize {
        self.added + self.removed + self.modified
    }

    /// All records of the later snapshot plus the removed ones.
    pub fn total(&self) -> usize {
        self.unchanged + self.added + self.removed + self.modified
    }
}

/// The record-level difference between two snapshots: one
/// [`SourceDelta`] per input source.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotDelta {
    /// WHOIS organization records.
    pub whois_org: SourceDelta,
    /// WHOIS aut-num records.
    pub whois_aut: SourceDelta,
    /// PeeringDB organization records.
    pub pdb_org: SourceDelta,
    /// PeeringDB network records.
    pub pdb_net: SourceDelta,
    /// Crawled site results.
    pub site: SourceDelta,
}

impl SnapshotDelta {
    /// Classifies every record by comparing stored (snapshot T) against
    /// fresh (snapshot T+1) fingerprints.
    pub fn compute(old: &SourceFingerprints, new: &SourceFingerprints) -> Self {
        SnapshotDelta {
            whois_org: SourceDelta::compute(&old.whois_org, &new.whois_org),
            whois_aut: SourceDelta::compute(&old.whois_aut, &new.whois_aut),
            pdb_org: SourceDelta::compute(&old.pdb_org, &new.pdb_org),
            pdb_net: SourceDelta::compute(&old.pdb_net, &new.pdb_net),
            site: SourceDelta::compute(&old.site, &new.site),
        }
    }

    /// Total dirty records across all sources.
    pub fn dirty(&self) -> usize {
        self.whois_org.dirty()
            + self.whois_aut.dirty()
            + self.pdb_org.dirty()
            + self.pdb_net.dirty()
            + self.site.dirty()
    }

    /// The five `(source, delta)` rows in fixed order, for reporting.
    pub fn rows(&self) -> [(&'static str, SourceDelta); 5] {
        [
            ("whois_org", self.whois_org),
            ("whois_aut", self.whois_aut),
            ("pdb_org", self.pdb_org),
            ("pdb_net", self.pdb_net),
            ("site", self.site),
        ]
    }
}

/// One compiled edge segment: the dense edges a single source key (a
/// WHOIS org, a PeeringDB org, an NER subject, a final URL, a favicon)
/// derived, plus the fingerprint of the in-universe member partition
/// that derived them. When key and fingerprint both match across
/// snapshots, the segment's edges are reused verbatim — surviving ASNs
/// keep their dense ids, so the pairs are still correct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeSegment<K> {
    /// The source key that derived this segment.
    pub key: K,
    /// Fingerprint of the universe-filtered member partition.
    pub fp: u64,
    /// Dense-id edges (a spanning chain per group).
    pub edges: Vec<(u32, u32)>,
}

/// Fingerprint of a key's group partition, restricted to in-universe
/// members. Membership filtering is part of the fingerprint on purpose:
/// an ASN entering or leaving the universe changes the derived edges
/// even when the source record text did not move.
pub fn group_fp(interner: &AsnInterner, groups: &[Vec<Asn>]) -> u64 {
    let mut fp = Fingerprinter::new();
    for group in groups {
        let members: Vec<u64> = group
            .iter()
            .filter(|&&asn| interner.contains(asn))
            .map(|&asn| u64::from(asn.value()))
            .collect();
        fp.u64(members.len() as u64);
        for m in members {
            fp.u64(m);
        }
    }
    fp.finish()
}

/// Compiles a key's groups to dense-id edges: each group's in-universe
/// members are chained pairwise (the spanning chain
/// [`crate::unionfind::UnionFind::union_group`] walks).
pub fn chain_edges(interner: &AsnInterner, groups: &[Vec<Asn>]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut ids: Vec<u32> = Vec::new();
    for group in groups {
        ids.clear();
        ids.extend(group.iter().filter_map(|&asn| interner.id(asn)));
        out.extend(ids.windows(2).map(|pair| (pair[0], pair[1])));
    }
    out
}

/// Retained/re-derived accounting for one feature's segment merge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentDelta {
    /// Segments whose fingerprint matched: edges reused verbatim.
    pub segments_retained: usize,
    /// Segments re-derived (new key, or fingerprint moved).
    pub segments_rederived: usize,
    /// Edges carried over from retained segments.
    pub edges_retained: usize,
    /// Edges freshly derived.
    pub edges_rederived: usize,
}

/// Merges one feature's segments across snapshots: for every fresh key,
/// reuse the prior segment when its member fingerprint is unchanged,
/// otherwise re-derive the edges over the current interner. Keys absent
/// from `fresh` simply drop out. Passing an empty `prior` map is the
/// full (non-incremental) compile — every segment derives fresh — which
/// keeps the two paths on one code path and makes the byte-identity
/// keystone structural.
pub fn merge_feature<K: Ord + Clone>(
    interner: &AsnInterner,
    prior: &BTreeMap<K, EdgeSegment<K>>,
    fresh: Vec<(K, Vec<Vec<Asn>>)>,
) -> (Vec<EdgeSegment<K>>, SegmentDelta) {
    let mut segments = Vec::with_capacity(fresh.len());
    let mut delta = SegmentDelta::default();
    for (key, groups) in fresh {
        let fp = group_fp(interner, &groups);
        match prior.get(&key) {
            Some(seg) if seg.fp == fp => {
                delta.segments_retained += 1;
                delta.edges_retained += seg.edges.len();
                segments.push(seg.clone());
            }
            _ => {
                let edges = chain_edges(interner, &groups);
                delta.segments_rederived += 1;
                delta.edges_rederived += edges.len();
                segments.push(EdgeSegment { key, fp, edges });
            }
        }
    }
    (segments, delta)
}

/// Everything a [`Borges::remap`](crate::pipeline::Borges::remap) run
/// knows about the work it avoided — record churn, interner evolution,
/// per-feature segment reuse, and LLM reply memoization.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Record-level classification per source.
    pub records: SnapshotDelta,
    /// ASNs present in both universes (ids kept stable).
    pub asns_retained: usize,
    /// ASNs new to the universe (fresh or resurrected ids).
    pub asns_added: usize,
    /// ASNs that left the universe (slots tombstoned).
    pub asns_retired: usize,
    /// OID_W segment reuse.
    pub oid_w: SegmentDelta,
    /// OID_P segment reuse.
    pub oid_p: SegmentDelta,
    /// notes/aka segment reuse.
    pub na: SegmentDelta,
    /// R&R segment reuse.
    pub rr: SegmentDelta,
    /// Favicon segment reuse.
    pub favicons: SegmentDelta,
    /// NER LLM replies reused from the memo.
    pub ner_reused: usize,
    /// NER LLM calls actually issued.
    pub ner_recomputed: usize,
    /// Favicon classifier replies reused from the memo.
    pub favicon_reused: usize,
    /// Favicon classifier calls actually issued.
    pub favicon_recomputed: usize,
}

impl DeltaStats {
    /// LLM calls the memos saved — the dominant cost of a full run.
    pub fn llm_calls_saved(&self) -> usize {
        self.ner_reused + self.favicon_reused
    }

    /// The five `(feature, delta)` edge rows in fixed order.
    pub fn edge_rows(&self) -> [(&'static str, SegmentDelta); 5] {
        [
            ("oid_w", self.oid_w),
            ("oid_p", self.oid_p),
            ("na", self.na),
            ("rr", self.rr),
            ("favicons", self.favicons),
        ]
    }
}

// ---------------------------------------------------------------------
// Persisted state (wire form)
// ---------------------------------------------------------------------

/// Schema tag stamped into every persisted state; bump on breaking
/// shape changes.
pub const SNAPSHOT_STATE_SCHEMA: &str = "borges.snapshot_state.v1";

/// One interner slot: the ASN and whether it is live (tombstones are
/// persisted too — they hold dense ids that must not be reassigned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotRecord {
    /// The ASN occupying the slot.
    pub asn: u32,
    /// Whether the slot is live in the universe.
    pub live: bool,
}

/// One dense edge on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeRecord {
    /// First endpoint (dense id).
    pub a: u32,
    /// Second endpoint (dense id).
    pub b: u32,
}

/// One edge segment on the wire. Non-string keys (PeeringDB org ids,
/// NER subject ASNs, favicon hashes) are stringified decimals.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentRecord {
    /// The segment's source key.
    pub key: String,
    /// The member-partition fingerprint.
    pub fp: u64,
    /// The compiled dense edges.
    pub edges: Vec<EdgeRecord>,
}

/// One `(key, fingerprint)` pair of a source's record map.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyFp {
    /// The record key (stringified when not naturally a string).
    pub key: String,
    /// The record fingerprint.
    pub fp: u64,
}

/// One memoized NER reply: the subject, the guard fingerprint of its
/// `notes`/`aka` text, and the parsed (pre-filter) finding ASNs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NerMemoRecord {
    /// The subject ASN.
    pub asn: u32,
    /// Fingerprint of `(notes, aka)` at reply time.
    pub fp: u64,
    /// Parsed finding ASNs, before the output filter.
    pub findings: Vec<u32>,
}

/// One memoized favicon classifier reply: the favicon, the guard
/// fingerprint of the URL list sent, and the parsed verdict
/// (`named: None` is "I don't know").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaviconMemoRecord {
    /// The favicon's raw 64-bit hash.
    pub favicon: u64,
    /// Fingerprint of the ordered URL list at reply time.
    pub fp: u64,
    /// The name the model replied, or `None` for "I don't know".
    pub named: Option<String>,
}

/// The persisted compiled state of one Borges run: interner slots,
/// per-feature edge segments, per-record source fingerprints, and the
/// LLM reply memos. Written by `map --state-out`, reloaded by
/// `remap --base-state`. The OID_W base closure is *not* persisted —
/// it is rebuilt from the OID_W segment edges on load, which is cheap
/// and sidesteps the fact that a union-find cannot un-union a retired
/// bridge ASN.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SnapshotState {
    /// Schema tag ([`SNAPSHOT_STATE_SCHEMA`]).
    pub schema: String,
    /// Interner slots in dense-id order (tombstones included).
    pub slots: Vec<SlotRecord>,
    /// OID_W segments, keyed by WHOIS org handle.
    pub oid_w: Vec<SegmentRecord>,
    /// OID_P segments, keyed by PeeringDB org id.
    pub oid_p: Vec<SegmentRecord>,
    /// notes/aka segments, keyed by subject ASN.
    pub na: Vec<SegmentRecord>,
    /// R&R segments, keyed by canonical final URL.
    pub rr: Vec<SegmentRecord>,
    /// Favicon segments, keyed by favicon hash.
    pub favicons: Vec<SegmentRecord>,
    /// WHOIS org fingerprints.
    pub whois_org_fps: Vec<KeyFp>,
    /// WHOIS aut-num fingerprints.
    pub whois_aut_fps: Vec<KeyFp>,
    /// PeeringDB org fingerprints.
    pub pdb_org_fps: Vec<KeyFp>,
    /// PeeringDB network fingerprints.
    pub pdb_net_fps: Vec<KeyFp>,
    /// Crawled site fingerprints.
    pub site_fps: Vec<KeyFp>,
    /// Memoized NER replies.
    pub ner_memo: Vec<NerMemoRecord>,
    /// Memoized favicon classifier replies.
    pub favicon_memo: Vec<FaviconMemoRecord>,
}

fn segment_records<K: ToString>(segments: &[EdgeSegment<K>]) -> Vec<SegmentRecord> {
    segments
        .iter()
        .map(|seg| SegmentRecord {
            key: seg.key.to_string(),
            fp: seg.fp,
            edges: seg
                .edges
                .iter()
                .map(|&(a, b)| EdgeRecord { a, b })
                .collect(),
        })
        .collect()
}

fn prior_map<K: Ord + Clone>(
    records: &[SegmentRecord],
    parse: impl Fn(&str) -> Option<K>,
) -> BTreeMap<K, EdgeSegment<K>> {
    records
        .iter()
        .filter_map(|rec| {
            let key = parse(&rec.key)?;
            Some((
                key.clone(),
                EdgeSegment {
                    key,
                    fp: rec.fp,
                    edges: rec.edges.iter().map(|e| (e.a, e.b)).collect(),
                },
            ))
        })
        .collect()
}

fn key_fps<K: ToString>(map: &BTreeMap<K, u64>) -> Vec<KeyFp> {
    map.iter()
        .map(|(key, &fp)| KeyFp {
            key: key.to_string(),
            fp,
        })
        .collect()
}

fn fp_map<K: Ord>(records: &[KeyFp], parse: impl Fn(&str) -> Option<K>) -> BTreeMap<K, u64> {
    records
        .iter()
        .filter_map(|rec| Some((parse(&rec.key)?, rec.fp)))
        .collect()
}

impl SnapshotState {
    /// Assembles the wire form from the live pieces.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build(
        interner: &AsnInterner,
        oid_w: &[EdgeSegment<String>],
        oid_p: &[EdgeSegment<u64>],
        na: &[EdgeSegment<u32>],
        rr: &[EdgeSegment<String>],
        favicons: &[EdgeSegment<u64>],
        fps: &SourceFingerprints,
        ner: &NerResult,
        favicon: &FaviconInference,
    ) -> Self {
        SnapshotState {
            schema: SNAPSHOT_STATE_SCHEMA.to_string(),
            slots: interner
                .slots()
                .map(|(asn, live)| SlotRecord {
                    asn: asn.value(),
                    live,
                })
                .collect(),
            oid_w: segment_records(oid_w),
            oid_p: segment_records(oid_p),
            na: segment_records(na),
            rr: segment_records(rr),
            favicons: segment_records(favicons),
            whois_org_fps: key_fps(&fps.whois_org),
            whois_aut_fps: fps
                .whois_aut
                .iter()
                .map(|(asn, &fp)| KeyFp {
                    key: asn.value().to_string(),
                    fp,
                })
                .collect(),
            pdb_org_fps: key_fps(&fps.pdb_org),
            pdb_net_fps: fps
                .pdb_net
                .iter()
                .map(|(asn, &fp)| KeyFp {
                    key: asn.value().to_string(),
                    fp,
                })
                .collect(),
            site_fps: fps
                .site
                .iter()
                .map(|(asn, &fp)| KeyFp {
                    key: asn.value().to_string(),
                    fp,
                })
                .collect(),
            ner_memo: ner
                .memo
                .iter()
                .map(|(asn, entry)| NerMemoRecord {
                    asn: asn.value(),
                    fp: entry.fp,
                    findings: entry.findings.iter().map(|a| a.value()).collect(),
                })
                .collect(),
            favicon_memo: favicon
                .memo
                .iter()
                .map(|(hash, memo)| FaviconMemoRecord {
                    favicon: hash.raw(),
                    fp: memo.fp,
                    named: memo.named.clone(),
                })
                .collect(),
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot states always serialize")
    }

    /// Parses and validates a persisted state: the schema tag must match
    /// and every stringified numeric key must parse back.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let state: SnapshotState =
            serde_json::from_str(text).map_err(|e| format!("malformed snapshot state: {e}"))?;
        state.validate()?;
        Ok(state)
    }

    /// The structural invariants every persisted state must satisfy
    /// before any typed accessor is trusted: the schema tag matches and
    /// every stringified numeric key parses back. Shared between
    /// [`SnapshotState::from_json`] and the binary store's decoder, so
    /// both load paths reject exactly the same malformed states.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != SNAPSHOT_STATE_SCHEMA {
            return Err(format!(
                "snapshot state schema mismatch: found {:?}, expected {:?}",
                self.schema, SNAPSHOT_STATE_SCHEMA
            ));
        }
        let numeric = |records: &[SegmentRecord], what: &str| -> Result<(), String> {
            for rec in records {
                rec.key
                    .parse::<u64>()
                    .map_err(|_| format!("non-numeric {what} segment key {:?}", rec.key))?;
            }
            Ok(())
        };
        numeric(&self.oid_p, "oid_p")?;
        numeric(&self.na, "na")?;
        numeric(&self.favicons, "favicons")?;
        for fps in [
            &self.whois_aut_fps,
            &self.pdb_org_fps,
            &self.pdb_net_fps,
            &self.site_fps,
        ] {
            for rec in fps {
                rec.key
                    .parse::<u64>()
                    .map_err(|_| format!("non-numeric fingerprint key {:?}", rec.key))?;
            }
        }
        Ok(())
    }

    /// The interner slots as typed pairs, in dense-id order.
    pub fn slot_pairs(&self) -> impl Iterator<Item = (Asn, bool)> + '_ {
        self.slots.iter().map(|s| (Asn::new(s.asn), s.live))
    }

    /// Prior OID_W segments, keyed.
    pub fn prior_oid_w(&self) -> BTreeMap<String, EdgeSegment<String>> {
        prior_map(&self.oid_w, |k| Some(k.to_string()))
    }

    /// Prior OID_P segments, keyed.
    pub fn prior_oid_p(&self) -> BTreeMap<u64, EdgeSegment<u64>> {
        prior_map(&self.oid_p, |k| k.parse().ok())
    }

    /// Prior notes/aka segments, keyed.
    pub fn prior_na(&self) -> BTreeMap<u32, EdgeSegment<u32>> {
        prior_map(&self.na, |k| k.parse().ok())
    }

    /// Prior R&R segments, keyed.
    pub fn prior_rr(&self) -> BTreeMap<String, EdgeSegment<String>> {
        prior_map(&self.rr, |k| Some(k.to_string()))
    }

    /// Prior favicon segments, keyed.
    pub fn prior_favicons(&self) -> BTreeMap<u64, EdgeSegment<u64>> {
        prior_map(&self.favicons, |k| k.parse().ok())
    }

    /// The stored source fingerprints, typed.
    pub fn fingerprints(&self) -> SourceFingerprints {
        SourceFingerprints {
            whois_org: fp_map(&self.whois_org_fps, |k| Some(WhoisOrgId::new(k))),
            whois_aut: fp_map(&self.whois_aut_fps, |k| k.parse().ok().map(Asn::new)),
            pdb_org: fp_map(&self.pdb_org_fps, |k| k.parse().ok()),
            pdb_net: fp_map(&self.pdb_net_fps, |k| k.parse().ok().map(Asn::new)),
            site: fp_map(&self.site_fps, |k| k.parse().ok().map(Asn::new)),
        }
    }

    /// The stored NER reply memo, typed.
    pub fn ner_memo_map(&self) -> BTreeMap<Asn, NerMemoEntry> {
        self.ner_memo
            .iter()
            .map(|rec| {
                (
                    Asn::new(rec.asn),
                    NerMemoEntry {
                        fp: rec.fp,
                        findings: rec.findings.iter().map(|&a| Asn::new(a)).collect(),
                    },
                )
            })
            .collect()
    }

    /// The stored favicon classifier memo, typed.
    pub fn favicon_memo_map(&self) -> BTreeMap<FaviconHash, FaviconMemo> {
        self.favicon_memo
            .iter()
            .map(|rec| {
                (
                    FaviconHash::from_raw(rec.favicon),
                    FaviconMemo {
                        fp: rec.fp,
                        named: rec.named.clone(),
                    },
                )
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Fresh keyed groups (snapshot T+1 evidence, partitioned by source key)
// ---------------------------------------------------------------------

/// OID_W sibling groups keyed by WHOIS org handle, members ascending.
pub fn keyed_whois_groups(whois: &WhoisRegistry) -> Vec<(String, Vec<Vec<Asn>>)> {
    let mut by_org: BTreeMap<&str, Vec<Asn>> = BTreeMap::new();
    for aut in whois.aut_nums() {
        by_org.entry(aut.org.as_str()).or_default().push(aut.asn);
    }
    by_org
        .into_iter()
        .map(|(org, mut members)| {
            members.sort_unstable();
            (org.to_string(), vec![members])
        })
        .collect()
}

/// OID_P sibling groups keyed by PeeringDB org id, members ascending.
pub fn keyed_pdb_groups(pdb: &PdbSnapshot) -> Vec<(u64, Vec<Vec<Asn>>)> {
    let mut by_org: BTreeMap<u64, Vec<Asn>> = BTreeMap::new();
    for net in pdb.nets() {
        by_org.entry(net.org_id.value()).or_default().push(net.asn);
    }
    by_org
        .into_iter()
        .map(|(org, mut members)| {
            members.sort_unstable();
            (org, vec![members])
        })
        .collect()
}

/// notes/aka sibling groups keyed by subject ASN: each subject chains
/// itself to its extracted siblings (same connectivity and edge count
/// as the star the subject's extraction asserts).
pub fn keyed_ner_groups(ner: &NerResult) -> Vec<(u32, Vec<Vec<Asn>>)> {
    ner.per_entry
        .iter()
        .map(|(&subject, siblings)| {
            let mut members = Vec::with_capacity(siblings.len() + 1);
            members.push(subject);
            members.extend(siblings.iter().copied());
            (subject.value(), vec![members])
        })
        .collect()
}

/// R&R merging groups keyed by canonical final URL (singleton groups
/// carry no merge evidence and are skipped, mirroring
/// [`RrInference::merging_groups`]).
pub fn keyed_rr_groups(rr: &RrInference) -> Vec<(String, Vec<Vec<Asn>>)> {
    rr.groups
        .iter()
        .zip(&rr.final_urls)
        .filter(|(group, _)| group.len() > 1)
        .map(|(group, url)| (url.canonical(), vec![group.clone()]))
        .collect()
}

/// Favicon merge groups keyed by favicon hash. One favicon may derive
/// several groups (step-1 label groups plus a step-2 whole-group
/// merge), so the segment fingerprint covers the *partition*, not just
/// the member multiset.
pub fn keyed_favicon_groups(favicon: &FaviconInference) -> Vec<(u64, Vec<Vec<Asn>>)> {
    debug_assert_eq!(favicon.groups.len(), favicon.group_favicons.len());
    let mut by_favicon: BTreeMap<u64, Vec<Vec<Asn>>> = BTreeMap::new();
    for (group, hash) in favicon.groups.iter().zip(&favicon.group_favicons) {
        by_favicon
            .entry(hash.raw())
            .or_default()
            .push(group.clone());
    }
    by_favicon.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(v: u32) -> Asn {
        Asn::new(v)
    }

    #[test]
    fn fingerprinter_is_stable_and_framed() {
        let mut x = Fingerprinter::new();
        x.str("ab");
        x.str("c");
        let mut y = Fingerprinter::new();
        y.str("a");
        y.str("bc");
        assert_ne!(
            x.finish(),
            y.finish(),
            "framing must prevent concat collisions"
        );

        let mut z = Fingerprinter::new();
        z.str("ab");
        z.str("c");
        let mut w = Fingerprinter::new();
        w.str("ab");
        w.str("c");
        assert_eq!(z.finish(), w.finish());
    }

    #[test]
    fn source_delta_classifies_all_four_ways() {
        let old: BTreeMap<u32, u64> = [(1, 10), (2, 20), (3, 30)].into_iter().collect();
        let new: BTreeMap<u32, u64> = [(1, 10), (2, 99), (4, 40)].into_iter().collect();
        let d = SourceDelta::compute(&old, &new);
        assert_eq!(
            d,
            SourceDelta {
                unchanged: 1,
                added: 1,
                removed: 1,
                modified: 1,
            }
        );
        assert_eq!(d.dirty(), 3);
        assert_eq!(d.total(), 4);
    }

    #[test]
    fn group_fp_tracks_universe_membership() {
        let interner = AsnInterner::new([a(1), a(2)]);
        let wider = AsnInterner::new([a(1), a(2), a(3)]);
        let groups = vec![vec![a(1), a(2), a(3)]];
        assert_ne!(
            group_fp(&interner, &groups),
            group_fp(&wider, &groups),
            "an ASN entering the universe must dirty the segment"
        );
    }

    #[test]
    fn group_fp_encodes_the_partition() {
        let interner = AsnInterner::new([a(1), a(2)]);
        let merged = vec![vec![a(1), a(2)]];
        let split = vec![vec![a(1)], vec![a(2)]];
        assert_ne!(group_fp(&interner, &merged), group_fp(&interner, &split));
    }

    #[test]
    fn merge_feature_retains_and_rederives() {
        let interner = AsnInterner::new([a(1), a(2), a(3), a(4)]);
        let fresh = vec![
            ("keep".to_string(), vec![vec![a(1), a(2)]]),
            ("moved".to_string(), vec![vec![a(3), a(4)]]),
        ];
        let (full, _) = merge_feature(&interner, &BTreeMap::new(), fresh.clone());
        assert_eq!(full.len(), 2);

        // Second snapshot: "keep" unchanged, "moved" gains a member.
        let mut prior: BTreeMap<String, EdgeSegment<String>> =
            full.iter().map(|s| (s.key.clone(), s.clone())).collect();
        // Poison the prior edges of "keep" to prove retention reuses them.
        prior.get_mut("keep").unwrap().edges = vec![(0, 1)];
        let fresh2 = vec![
            ("keep".to_string(), vec![vec![a(1), a(2)]]),
            ("moved".to_string(), vec![vec![a(2), a(3), a(4)]]),
        ];
        let (merged, delta) = merge_feature(&interner, &prior, fresh2);
        assert_eq!(delta.segments_retained, 1);
        assert_eq!(delta.segments_rederived, 1);
        assert_eq!(delta.edges_retained, 1);
        assert_eq!(delta.edges_rederived, 2);
        assert_eq!(merged[0].edges, vec![(0, 1)], "retained verbatim");
        assert_eq!(merged[1].edges, vec![(1, 2), (2, 3)], "re-derived fresh");
    }

    #[test]
    fn state_json_roundtrip() {
        let interner = {
            let mut i = AsnInterner::new([a(10), a(20)]);
            i.retire(a(20));
            i.append(a(5));
            i
        };
        let oid_w = vec![EdgeSegment {
            key: "ORG-1".to_string(),
            fp: 42,
            edges: vec![(0, 2)],
        }];
        let mut fps = SourceFingerprints::default();
        fps.whois_org.insert(WhoisOrgId::new("ORG-1"), 7);
        fps.whois_aut.insert(a(10), 8);
        let mut ner = NerResult::default();
        ner.memo.insert(
            a(10),
            NerMemoEntry {
                fp: 3,
                findings: vec![a(5)],
            },
        );
        let mut favicon = FaviconInference::default();
        favicon.memo.insert(
            FaviconHash::from_raw(9),
            FaviconMemo {
                fp: 4,
                named: Some("Claro".to_string()),
            },
        );
        let state =
            SnapshotState::build(&interner, &oid_w, &[], &[], &[], &[], &fps, &ner, &favicon);
        let back = SnapshotState::from_json(&state.to_json_pretty()).unwrap();
        assert_eq!(back, state);
        let slots: Vec<(Asn, bool)> = back.slot_pairs().collect();
        assert_eq!(slots, vec![(a(10), true), (a(20), false), (a(5), true)]);
        assert_eq!(back.prior_oid_w()["ORG-1"].edges, vec![(0, 2)]);
        assert_eq!(back.fingerprints(), fps);
        assert_eq!(back.ner_memo_map()[&a(10)].findings, vec![a(5)]);
        assert_eq!(
            back.favicon_memo_map()[&FaviconHash::from_raw(9)].named,
            Some("Claro".to_string())
        );
    }

    #[test]
    fn from_json_rejects_wrong_schema_and_bad_keys() {
        let bogus = SnapshotState {
            schema: "bogus".to_string(),
            ..SnapshotState::default()
        };
        let err = SnapshotState::from_json(&bogus.to_json_pretty()).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
        let err = SnapshotState::from_json("{not json").unwrap_err();
        assert!(err.contains("malformed"), "{err}");

        let mut state = SnapshotState {
            schema: SNAPSHOT_STATE_SCHEMA.to_string(),
            ..SnapshotState::default()
        };
        state.oid_p.push(SegmentRecord {
            key: "not-a-number".to_string(),
            fp: 0,
            edges: vec![],
        });
        let err = SnapshotState::from_json(&state.to_json_pretty()).unwrap_err();
        assert!(err.contains("non-numeric"), "{err}");
    }
}
