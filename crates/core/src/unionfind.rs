//! Disjoint-set union over ASNs.
//!
//! Every Borges feature produces *merge evidence* — pairs or groups of
//! ASNs claimed to share an organization. Reconciling partially
//! overlapping clusters from different sources (§4.1's WHOIS/PeeringDB
//! consolidation, and the feature combinations of Table 6) is transitive
//! closure, i.e. union-find with path compression and union by size.

use borges_types::{Asn, AsnInterner};
use std::collections::BTreeMap;

/// A disjoint-set forest keyed by [`Asn`].
///
/// Elements are added lazily: any ASN mentioned in a union or lookup is a
/// member (initially its own singleton set).
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    index: BTreeMap<Asn, usize>,
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    /// An empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// A forest pre-seeded with `universe` as singletons.
    pub fn with_universe(universe: impl IntoIterator<Item = Asn>) -> Self {
        let mut uf = Self::new();
        for asn in universe {
            uf.intern(asn);
        }
        uf
    }

    fn intern(&mut self, asn: Asn) -> usize {
        if let Some(&i) = self.index.get(&asn) {
            return i;
        }
        let i = self.parent.len();
        self.index.insert(asn, i);
        self.parent.push(i);
        self.size.push(1);
        i
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]]; // halving
            i = self.parent[i];
        }
        i
    }

    /// Merges the sets of `a` and `b` (adding them if unseen). Returns
    /// `true` when the union actually joined two distinct sets.
    pub fn union(&mut self, a: Asn, b: Asn) -> bool {
        let (ia, ib) = (self.intern(a), self.intern(b));
        let (mut ra, mut rb) = (self.find(ia), self.find(ib));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        true
    }

    /// Merges every ASN in `group` into one set. A single-element group
    /// still registers its member (as a singleton).
    pub fn union_group(&mut self, group: &[Asn]) {
        if let Some(&first) = group.first() {
            self.intern(first);
        }
        for pair in group.windows(2) {
            self.union(pair[0], pair[1]);
        }
    }

    /// Are `a` and `b` currently in the same set? (`false` if either is
    /// unknown.)
    pub fn same_set(&mut self, a: Asn, b: Asn) -> bool {
        match (self.index.get(&a).copied(), self.index.get(&b).copied()) {
            (Some(ia), Some(ib)) => self.find(ia) == self.find(ib),
            _ => false,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when no element was ever added.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Extracts the sets as sorted member lists (deterministic order:
    /// sets sorted by their smallest ASN).
    pub fn into_groups(mut self) -> Vec<Vec<Asn>> {
        let mut by_root: BTreeMap<usize, Vec<Asn>> = BTreeMap::new();
        let entries: Vec<(Asn, usize)> = self.index.iter().map(|(a, i)| (*a, *i)).collect();
        for (asn, i) in entries {
            let root = self.find(i);
            by_root.entry(root).or_default().push(asn);
        }
        let mut groups: Vec<Vec<Asn>> = by_root.into_values().collect();
        for g in &mut groups {
            g.sort_unstable();
        }
        groups.sort_by_key(|g| g[0]);
        groups
    }
}

/// One worker's accounting from
/// [`DenseUnionFind::union_edge_lists_sharded`]: which dense-id range it
/// owned, how many edges it replayed, and how many survived as spanning
/// evidence for the contraction pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardTiming {
    /// Range index (ranges cover `0..len` in `width`-sized strides).
    pub shard: usize,
    /// Same-range edges bucketed into this shard.
    pub edges: usize,
    /// Edges that joined two distinct local sets — the shard's output.
    pub spanning: usize,
    /// Clock reading when the worker picked the shard up.
    pub started_ms: u64,
    /// Clock delta the shard took.
    pub elapsed_ms: u64,
}

/// The full accounting of one sharded replay: per-shard rows plus the
/// final contraction pass. The replay's ledger invariant — checked by
/// the CI scale-equivalence job — is `contraction_edges ==
/// cross_edges + Σ shards[i].spanning`, with every `spanning <= edges`.
#[derive(Debug, Clone, Default)]
pub struct ShardReport {
    /// Per-shard accounting, in range order.
    pub shards: Vec<ShardTiming>,
    /// Edges whose endpoints fell in different ranges, deferred whole
    /// to the contraction pass.
    pub cross_edges: usize,
    /// Total edges the contraction pass replayed (spanning + cross).
    pub contraction_edges: usize,
    /// Clock reading when the contraction pass started.
    pub contraction_started_ms: u64,
    /// Clock delta of the contraction pass.
    pub contraction_elapsed_ms: u64,
}

/// A disjoint-set forest over the dense ids of a fixed universe.
///
/// Where [`UnionFind`] interns ASNs lazily through a `BTreeMap` (right
/// for ad-hoc evidence probes), `DenseUnionFind` is sized once for an
/// [`AsnInterner`] universe and then never allocates: two flat `Vec`s,
/// path-halving finds, union by size. Cloning is two `memcpy`s, which
/// is what makes the pipeline's replay scheme cheap — the OID_W closure
/// is computed once and cloned per feature combination.
#[derive(Debug, Clone)]
pub struct DenseUnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl DenseUnionFind {
    /// A forest of `len` singleton sets (ids `0..len`).
    pub fn new(len: usize) -> Self {
        assert!(len <= u32::MAX as usize, "universe exceeds u32 id space");
        DenseUnionFind {
            parent: (0..len as u32).collect(),
            size: vec![1; len],
        }
    }

    /// Number of elements (fixed at construction).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` for a zero-element forest.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    fn find(&mut self, mut i: u32) -> u32 {
        while self.parent[i as usize] != i {
            self.parent[i as usize] = self.parent[self.parent[i as usize] as usize]; // halving
            i = self.parent[i as usize];
        }
        i
    }

    /// Merges the sets of ids `a` and `b`. Returns `true` when the union
    /// actually joined two distinct sets.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        true
    }

    /// Replays a batch of merge edges.
    pub fn union_edges(&mut self, edges: &[(u32, u32)]) {
        for &(a, b) in edges {
            self.union(a, b);
        }
    }

    /// Replays several edge lists in order — the sequential twin of
    /// [`DenseUnionFind::union_edge_lists_sharded`].
    pub fn union_edge_lists(&mut self, lists: &[&[(u32, u32)]]) {
        for list in lists {
            self.union_edges(list);
        }
    }

    /// Replays `lists` across up to `shards` concurrent workers,
    /// producing exactly the same final partition as
    /// [`DenseUnionFind::union_edge_lists`].
    ///
    /// The id space `0..len` is partitioned into `shards` equal-width
    /// contiguous ranges. One sequential pass buckets every edge whose
    /// endpoints fall in the same range; the remainder (cross-range
    /// edges) is set aside. Each range's bucket is then unioned into a
    /// *local* forest — sized only for that range — on a worker thread
    /// (ranges are scheduled with the LPT weighted chunker, weight =
    /// bucket edge count, so one hot range cannot serialize the rest),
    /// and each worker emits the spanning subset of its bucket: the
    /// edges whose local union actually joined two sets. The final
    /// contraction pass replays every spanning list (in range order)
    /// plus the cross-range edges into `self`.
    ///
    /// Correctness does not depend on scheduling: connected components
    /// of a union of edge sets are order-independent, and a spanning
    /// subset has the same transitive closure as its bucket, so the
    /// contraction sees evidence equivalent to the full input. `self`
    /// may already hold unions (the pipeline replays feature edges onto
    /// a cloned base closure); locals start from singletons regardless,
    /// which only makes their spanning output a superset of what a
    /// base-aware worker would emit — never less connectivity.
    ///
    /// `now_ms` is the caller's clock (telemetry run clock, or `|| 0`),
    /// sampled around each worker and the contraction; timings are
    /// observational only. With `shards <= 1` (or an empty forest) the
    /// replay runs sequentially and reports a single shard row.
    pub fn union_edge_lists_sharded<N>(
        &mut self,
        lists: &[&[(u32, u32)]],
        shards: usize,
        now_ms: N,
    ) -> ShardReport
    where
        N: Fn() -> u64 + Sync,
    {
        let mut feed = SegmentFeed::new(self.len(), shards);
        for list in lists {
            feed.feed(list);
        }
        feed.finish(self, now_ms)
    }

    /// Are ids `a` and `b` currently in the same set?
    pub fn same_set(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Replays everything a [`SegmentFeed`] accumulated — convenience
    /// for `feed.finish(&mut uf, now_ms)`.
    pub fn union_segment_feed<N>(&mut self, feed: SegmentFeed, now_ms: N) -> ShardReport
    where
        N: Fn() -> u64 + Sync,
    {
        feed.finish(self, now_ms)
    }

    /// Extracts the sets as sorted ASN member lists via `interner`
    /// (which must be the universe this forest was sized for), in the
    /// same canonical order as [`UnionFind::into_groups`]: members
    /// ascending, groups ordered by their smallest ASN.
    ///
    /// Because fresh interner ids follow ascending ASN order, one pass
    /// over `0..len` builds every group already sorted — no per-group
    /// sort. Tombstoned slots are skipped: a retired ASN is edge-free by
    /// construction (`AsnInterner::id` filters it out of every edge
    /// list), so skipping it only drops its singleton. For an interner
    /// that has *appended* slots the slot order is no longer globally
    /// sorted, so group/member order is not canonical here; the one
    /// consumer on that path (`AsOrgMapping::from_groups`) re-sorts.
    pub fn into_groups(mut self, interner: &AsnInterner) -> Vec<Vec<Asn>> {
        assert_eq!(
            self.len(),
            interner.len(),
            "interner/forest universe mismatch"
        );
        let n = self.len() as u32;
        // First visit of each root (in ascending ASN order) fixes its
        // group's position, which is exactly smallest-ASN order.
        let mut group_of_root: Vec<u32> = vec![u32::MAX; self.len()];
        let mut groups: Vec<Vec<Asn>> = Vec::new();
        for id in 0..n {
            if !interner.is_live(id) {
                continue;
            }
            let root = self.find(id) as usize;
            let slot = if group_of_root[root] == u32::MAX {
                group_of_root[root] = groups.len() as u32;
                groups.push(Vec::with_capacity(self.size[root] as usize));
                groups.len() - 1
            } else {
                group_of_root[root] as usize
            };
            groups[slot].push(interner.asn(id));
        }
        groups
    }
}

/// Incrementally buckets merge edges for a sharded replay into a
/// [`DenseUnionFind`] — the streaming-ingest seam of the union layer.
///
/// The batch entry point ([`DenseUnionFind::union_edge_lists_sharded`])
/// buckets every edge in one pass because it has every edge up front.
/// A streaming consumer does not: evidence segments arrive one record
/// at a time while later fetches are still in flight. `SegmentFeed`
/// accepts those segments as they arrive ([`SegmentFeed::feed`]),
/// bucketing each edge into its id range (or the cross-range pile)
/// immediately — cheap, allocation-amortized work that overlaps with
/// I/O — and defers the actual union work to [`SegmentFeed::finish`],
/// which runs the same worker fan-out and contraction pass as the
/// batch path.
///
/// Determinism: bucketing is a pure function of each edge, so the
/// bucket contents (in feed order) are identical to what the batch
/// pass would have produced from the concatenated lists — which is why
/// `union_edge_lists_sharded` itself now delegates here. Feed order
/// must be canonical (the streaming reassembly buffer guarantees it),
/// and then the final partition is bit-for-bit the batch partition.
#[derive(Debug, Clone)]
pub struct SegmentFeed {
    /// Universe size the target forest was built for.
    len: usize,
    /// Worker cap for the finish pass.
    shards: usize,
    /// Range width (0 in the sequential degenerate case).
    width: usize,
    /// Same-range edges per range (empty in the sequential case, where
    /// everything lands in `cross`).
    buckets: Vec<Vec<(u32, u32)>>,
    /// Cross-range edges (sequential case: all edges, in feed order).
    cross: Vec<(u32, u32)>,
    /// Total edges fed.
    fed: usize,
}

impl SegmentFeed {
    /// A feed for a forest of `len` ids, replaying across up to
    /// `shards` workers on finish. With `shards <= 1` or an empty
    /// forest the finish pass is sequential (one shard row, matching
    /// the batch path's degenerate case).
    pub fn new(len: usize, shards: usize) -> Self {
        let sequential = shards <= 1 || len == 0;
        let width = if sequential { 0 } else { len.div_ceil(shards) };
        let range_count = if sequential { 0 } else { len.div_ceil(width) };
        SegmentFeed {
            len,
            shards,
            width,
            buckets: vec![Vec::new(); range_count],
            cross: Vec::new(),
            fed: 0,
        }
    }

    /// Buckets one segment's edges. Order across calls is preserved
    /// within every bucket, so feeding lists one at a time is
    /// equivalent to feeding their concatenation.
    pub fn feed(&mut self, edges: &[(u32, u32)]) {
        self.fed += edges.len();
        if self.width == 0 {
            self.cross.extend_from_slice(edges);
            return;
        }
        for &(a, b) in edges {
            let (ra, rb) = (a as usize / self.width, b as usize / self.width);
            if ra == rb {
                self.buckets[ra].push((a, b));
            } else {
                self.cross.push((a, b));
            }
        }
    }

    /// Total edges fed so far.
    pub fn fed_edges(&self) -> usize {
        self.fed
    }

    /// Replays everything into `uf` — per-range local unions on up to
    /// `shards` workers, then the contraction pass — and reports the
    /// same ledger as [`DenseUnionFind::union_edge_lists_sharded`].
    ///
    /// `uf` must be sized for the `len` this feed was built with.
    pub fn finish<N>(self, uf: &mut DenseUnionFind, now_ms: N) -> ShardReport
    where
        N: Fn() -> u64 + Sync,
    {
        assert_eq!(uf.len(), self.len, "feed/forest universe mismatch");
        if self.width == 0 {
            // Sequential degenerate case: every edge sits in `cross`,
            // in feed order.
            let started_ms = now_ms();
            uf.union_edges(&self.cross);
            let elapsed_ms = now_ms().saturating_sub(started_ms);
            return ShardReport {
                shards: vec![ShardTiming {
                    shard: 0,
                    edges: self.fed,
                    spanning: 0,
                    started_ms,
                    elapsed_ms,
                }],
                cross_edges: 0,
                contraction_edges: 0,
                contraction_started_ms: started_ms,
                contraction_elapsed_ms: elapsed_ms,
            };
        }

        let SegmentFeed {
            len: n,
            shards,
            width,
            buckets,
            cross,
            ..
        } = self;
        let ranges: Vec<usize> = (0..buckets.len()).collect();
        let shard_results: Vec<(Vec<(u32, u32)>, ShardTiming)> =
            borges_parallel::map_items_weighted(
                &ranges,
                shards,
                |&r| buckets[r].len() as u64,
                |&r| {
                    let started_ms = now_ms();
                    let lo = (r * width) as u32;
                    let hi = ((r + 1) * width).min(n) as u32;
                    let mut local = DenseUnionFind::new((hi - lo) as usize);
                    let mut spanning = Vec::new();
                    for &(a, b) in &buckets[r] {
                        if local.union(a - lo, b - lo) {
                            spanning.push((a, b));
                        }
                    }
                    let timing = ShardTiming {
                        shard: r,
                        edges: buckets[r].len(),
                        spanning: spanning.len(),
                        started_ms,
                        elapsed_ms: now_ms().saturating_sub(started_ms),
                    };
                    (spanning, timing)
                },
            );

        let contraction_started_ms = now_ms();
        let mut contraction_edges = cross.len();
        for (spanning, _) in &shard_results {
            contraction_edges += spanning.len();
            uf.union_edges(spanning);
        }
        uf.union_edges(&cross);
        ShardReport {
            shards: shard_results.into_iter().map(|(_, t)| t).collect(),
            cross_edges: cross.len(),
            contraction_edges,
            contraction_started_ms,
            contraction_elapsed_ms: now_ms().saturating_sub(contraction_started_ms),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u32) -> Asn {
        Asn::new(n)
    }

    #[test]
    fn singletons_until_unioned() {
        let mut uf = UnionFind::with_universe([a(1), a(2), a(3)]);
        assert!(!uf.same_set(a(1), a(2)));
        assert!(uf.union(a(1), a(2)));
        assert!(uf.same_set(a(1), a(2)));
        assert!(!uf.same_set(a(1), a(3)));
    }

    #[test]
    fn union_is_idempotent() {
        let mut uf = UnionFind::new();
        assert!(uf.union(a(1), a(2)));
        assert!(!uf.union(a(1), a(2)));
        assert!(!uf.union(a(2), a(1)));
    }

    #[test]
    fn transitivity() {
        let mut uf = UnionFind::new();
        uf.union(a(1), a(2));
        uf.union(a(2), a(3));
        uf.union(a(4), a(5));
        assert!(uf.same_set(a(1), a(3)));
        assert!(!uf.same_set(a(3), a(4)));
    }

    #[test]
    fn union_group_links_everything() {
        let mut uf = UnionFind::new();
        uf.union_group(&[a(1), a(2), a(3), a(4)]);
        assert!(uf.same_set(a(1), a(4)));
        uf.union_group(&[a(9)]);
        assert_eq!(uf.len(), 5);
    }

    #[test]
    fn unknown_elements_are_never_same_set() {
        let mut uf = UnionFind::new();
        uf.union(a(1), a(2));
        assert!(!uf.same_set(a(1), a(99)));
        assert!(!uf.same_set(a(98), a(99)));
    }

    #[test]
    fn groups_are_sorted_and_complete() {
        let mut uf = UnionFind::with_universe([a(10), a(5), a(7), a(1)]);
        uf.union(a(10), a(1));
        let groups = uf.into_groups();
        assert_eq!(groups, vec![vec![a(1), a(10)], vec![a(5)], vec![a(7)]]);
    }

    #[test]
    fn large_chain_has_flat_depth_behaviour() {
        // Sanity/perf guard: a 100k-element chain must resolve instantly.
        let mut uf = UnionFind::new();
        for i in 1..100_000u32 {
            uf.union(a(i), a(i + 1));
        }
        assert!(uf.same_set(a(1), a(100_000)));
        assert_eq!(uf.into_groups().len(), 1);
    }

    #[test]
    fn order_of_unions_does_not_change_groups() {
        let mut uf1 = UnionFind::new();
        uf1.union(a(1), a(2));
        uf1.union(a(3), a(4));
        uf1.union(a(2), a(3));
        let mut uf2 = UnionFind::new();
        uf2.union(a(2), a(3));
        uf2.union(a(3), a(4));
        uf2.union(a(1), a(2));
        assert_eq!(uf1.into_groups(), uf2.into_groups());
    }

    #[test]
    fn dense_union_and_same_set() {
        let mut uf = DenseUnionFind::new(5);
        assert!(uf.union(0, 3));
        assert!(!uf.union(3, 0));
        assert!(uf.same_set(0, 3));
        assert!(!uf.same_set(0, 1));
        uf.union_edges(&[(1, 2), (2, 4)]);
        assert!(uf.same_set(1, 4));
        assert!(!uf.same_set(0, 4));
    }

    #[test]
    fn dense_groups_match_sparse_groups() {
        // Same universe, same edges, through both implementations.
        let universe: Vec<Asn> = [17, 3, 99, 41, 8, 23].map(a).to_vec();
        let interner = AsnInterner::new(universe.iter().copied());
        let edges = [(a(3), a(99)), (a(41), a(8)), (a(8), a(3))];

        let mut sparse = UnionFind::with_universe(universe.iter().copied());
        let mut dense = DenseUnionFind::new(interner.len());
        for &(x, y) in &edges {
            sparse.union(x, y);
            dense.union(interner.id(x).unwrap(), interner.id(y).unwrap());
        }
        assert_eq!(dense.into_groups(&interner), sparse.into_groups());
    }

    #[test]
    fn dense_groups_are_canonically_ordered() {
        let interner = AsnInterner::new([10, 20, 30, 40].map(a));
        let mut uf = DenseUnionFind::new(4);
        // Merge 40 into 20's set; group order must still follow the
        // smallest member (10 first, then {20, 40}, then 30).
        uf.union(interner.id(a(40)).unwrap(), interner.id(a(20)).unwrap());
        let groups = uf.into_groups(&interner);
        assert_eq!(groups, vec![vec![a(10)], vec![a(20), a(40)], vec![a(30)]]);
    }

    #[test]
    fn dense_clone_then_replay_is_independent() {
        // The pipeline's replay scheme: base closure cloned per feature
        // combination, each replay isolated from the others.
        let mut base = DenseUnionFind::new(6);
        base.union(0, 1);
        let mut with_extra = base.clone();
        with_extra.union(2, 3);
        assert!(with_extra.same_set(2, 3));
        assert!(!base.same_set(2, 3), "clone must not leak back");
        assert!(base.same_set(0, 1));
    }

    #[test]
    fn dense_groups_skip_tombstoned_slots() {
        let mut interner = AsnInterner::new([10, 20, 30].map(a));
        interner.retire(a(20));
        interner.append(a(5)); // slot 3, breaking sorted slot order
        let mut uf = DenseUnionFind::new(interner.len());
        uf.union(interner.id(a(10)).unwrap(), interner.id(a(5)).unwrap());
        let groups = uf.into_groups(&interner);
        // The dead slot's singleton vanishes; appended members appear.
        assert_eq!(groups, vec![vec![a(10), a(5)], vec![a(30)]]);
    }

    #[test]
    fn dense_empty_forest() {
        let uf = DenseUnionFind::new(0);
        assert!(uf.is_empty());
        let interner = AsnInterner::new([]);
        assert!(uf.into_groups(&interner).is_empty());
    }

    /// Pseudo-random edge soup over `n` ids, deterministic in `salt`.
    fn edge_soup(n: u32, count: usize, salt: u64) -> Vec<(u32, u32)> {
        let mut state = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..count)
            .map(|_| ((next() % n as u64) as u32, (next() % n as u64) as u32))
            .collect()
    }

    fn groups_of(n: usize, lists: &[&[(u32, u32)]]) -> Vec<Vec<Asn>> {
        let interner = AsnInterner::new((0..n as u32).map(|i| a(i + 1)));
        let mut uf = DenseUnionFind::new(n);
        uf.union_edge_lists(lists);
        uf.into_groups(&interner)
    }

    fn sharded_groups_of(n: usize, lists: &[&[(u32, u32)]], shards: usize) -> Vec<Vec<Asn>> {
        let interner = AsnInterner::new((0..n as u32).map(|i| a(i + 1)));
        let mut uf = DenseUnionFind::new(n);
        let report = uf.union_edge_lists_sharded(lists, shards, || 0);
        let spanning: usize = report.shards.iter().map(|t| t.spanning).sum();
        assert_eq!(
            report.contraction_edges,
            report.cross_edges + spanning,
            "shard ledger out of balance"
        );
        for t in &report.shards {
            assert!(t.spanning <= t.edges, "spanning exceeds bucket");
        }
        uf.into_groups(&interner)
    }

    #[test]
    fn sharded_matches_sequential_across_shard_counts() {
        let n = 500;
        let soup = edge_soup(n as u32, 2000, 7);
        let (left, right) = soup.split_at(900);
        let lists: Vec<&[(u32, u32)]> = vec![left, right];
        let expected = groups_of(n, &lists);
        for shards in [1, 2, 3, 7, 16, 64, 499, 500, 1000] {
            assert_eq!(
                sharded_groups_of(n, &lists, shards),
                expected,
                "diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn sharded_handles_empty_shard() {
        // All edges land in the first range; every other shard's bucket
        // is empty and its worker is a no-op.
        let edges: Vec<(u32, u32)> = (0..9).map(|i| (i, i + 1)).collect();
        let lists: Vec<&[(u32, u32)]> = vec![&edges];
        let expected = groups_of(100, &lists);
        assert_eq!(sharded_groups_of(100, &lists, 8), expected);
    }

    #[test]
    fn sharded_single_shard_is_sequential() {
        let soup = edge_soup(64, 100, 3);
        let lists: Vec<&[(u32, u32)]> = vec![&soup];
        let mut uf = DenseUnionFind::new(64);
        let report = uf.union_edge_lists_sharded(&lists, 1, || 0);
        assert_eq!(report.shards.len(), 1);
        assert_eq!(report.shards[0].edges, 100);
        assert_eq!(report.cross_edges, 0);
        let interner = AsnInterner::new((0..64).map(|i| a(i + 1)));
        assert_eq!(uf.into_groups(&interner), groups_of(64, &lists));
    }

    #[test]
    fn sharded_cross_only_edges_defer_to_contraction() {
        // With width 1 per range every edge is cross-range: locals do
        // nothing, the contraction pass does everything.
        let edges: Vec<(u32, u32)> = vec![(0, 3), (1, 2), (2, 3)];
        let lists: Vec<&[(u32, u32)]> = vec![&edges];
        let expected = groups_of(4, &lists);
        let interner = AsnInterner::new((0..4).map(|i| a(i + 1)));
        let mut uf = DenseUnionFind::new(4);
        let report = uf.union_edge_lists_sharded(&lists, 4, || 0);
        assert_eq!(report.cross_edges, 3);
        assert_eq!(report.shards.iter().map(|t| t.edges).sum::<usize>(), 0);
        assert_eq!(uf.into_groups(&interner), expected);
    }

    #[test]
    fn sharded_replay_onto_nonsingleton_base_matches() {
        // The pipeline replays feature edges onto a cloned base closure:
        // the base already holds unions when the sharded replay runs.
        let base_edges: Vec<(u32, u32)> = edge_soup(200, 150, 11);
        let feature_edges: Vec<(u32, u32)> = edge_soup(200, 300, 13);
        let interner = AsnInterner::new((0..200).map(|i| a(i + 1)));

        let mut seq = DenseUnionFind::new(200);
        seq.union_edges(&base_edges);
        let mut sharded = seq.clone();

        seq.union_edges(&feature_edges);
        let lists: Vec<&[(u32, u32)]> = vec![&feature_edges];
        sharded.union_edge_lists_sharded(&lists, 4, || 0);
        assert_eq!(sharded.into_groups(&interner), seq.into_groups(&interner));
    }

    #[test]
    fn sharded_empty_forest_and_empty_lists() {
        let mut uf = DenseUnionFind::new(0);
        let report = uf.union_edge_lists_sharded(&[], 8, || 0);
        assert_eq!(report.shards.len(), 1, "degenerate case reports one row");
        let mut uf = DenseUnionFind::new(10);
        let report = uf.union_edge_lists_sharded(&[], 4, || 0);
        assert_eq!(report.contraction_edges, 0);
        let interner = AsnInterner::new((0..10).map(|i| a(i + 1)));
        assert_eq!(uf.into_groups(&interner).len(), 10);
    }

    #[test]
    fn segment_feed_incremental_matches_batch() {
        // Feeding one record's segment at a time (the streaming shape)
        // must produce the same partition as the one-shot batch replay,
        // at every shard count.
        let n = 300;
        let soup = edge_soup(n as u32, 1200, 17);
        let lists: Vec<&[(u32, u32)]> = vec![&soup];
        let expected = groups_of(n, &lists);
        let interner = AsnInterner::new((0..n as u32).map(|i| a(i + 1)));
        for shards in [1, 2, 4, 16, 299] {
            let mut feed = SegmentFeed::new(n, shards);
            for record in soup.chunks(7) {
                feed.feed(record);
            }
            assert_eq!(feed.fed_edges(), soup.len());
            let mut uf = DenseUnionFind::new(n);
            let report = uf.union_segment_feed(feed, || 0);
            let spanning: usize = report.shards.iter().map(|t| t.spanning).sum();
            assert_eq!(
                report.contraction_edges,
                report.cross_edges + spanning,
                "feed ledger out of balance at {shards} shards"
            );
            assert_eq!(
                uf.into_groups(&interner),
                expected,
                "diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn segment_feed_empty_and_sequential_degenerates() {
        let mut uf = DenseUnionFind::new(0);
        let report = SegmentFeed::new(0, 8).finish(&mut uf, || 0);
        assert_eq!(report.shards.len(), 1);

        let mut feed = SegmentFeed::new(10, 1);
        feed.feed(&[(0, 9), (1, 2)]);
        let mut uf = DenseUnionFind::new(10);
        let report = feed.finish(&mut uf, || 0);
        assert_eq!(report.shards[0].edges, 2);
        assert_eq!(report.cross_edges, 0, "sequential path reports no cross");
        assert!(uf.same_set(0, 9));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn segment_feed_rejects_wrong_universe() {
        let mut uf = DenseUnionFind::new(5);
        SegmentFeed::new(6, 2).finish(&mut uf, || 0);
    }

    #[test]
    fn sharded_timings_use_the_injected_clock() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let ticks = AtomicU64::new(0);
        let soup = edge_soup(100, 200, 5);
        let lists: Vec<&[(u32, u32)]> = vec![&soup];
        let mut uf = DenseUnionFind::new(100);
        let report =
            uf.union_edge_lists_sharded(&lists, 4, || ticks.fetch_add(1, Ordering::Relaxed));
        for t in &report.shards {
            assert!(t.started_ms < t.started_ms + 1); // clock sampled
        }
        assert!(
            report.contraction_started_ms > 0,
            "contraction after shards"
        );
    }
}
