//! Disjoint-set union over ASNs.
//!
//! Every Borges feature produces *merge evidence* — pairs or groups of
//! ASNs claimed to share an organization. Reconciling partially
//! overlapping clusters from different sources (§4.1's WHOIS/PeeringDB
//! consolidation, and the feature combinations of Table 6) is transitive
//! closure, i.e. union-find with path compression and union by size.

use borges_types::Asn;
use std::collections::BTreeMap;

/// A disjoint-set forest keyed by [`Asn`].
///
/// Elements are added lazily: any ASN mentioned in a union or lookup is a
/// member (initially its own singleton set).
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    index: BTreeMap<Asn, usize>,
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    /// An empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// A forest pre-seeded with `universe` as singletons.
    pub fn with_universe(universe: impl IntoIterator<Item = Asn>) -> Self {
        let mut uf = Self::new();
        for asn in universe {
            uf.intern(asn);
        }
        uf
    }

    fn intern(&mut self, asn: Asn) -> usize {
        if let Some(&i) = self.index.get(&asn) {
            return i;
        }
        let i = self.parent.len();
        self.index.insert(asn, i);
        self.parent.push(i);
        self.size.push(1);
        i
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]]; // halving
            i = self.parent[i];
        }
        i
    }

    /// Merges the sets of `a` and `b` (adding them if unseen). Returns
    /// `true` when the union actually joined two distinct sets.
    pub fn union(&mut self, a: Asn, b: Asn) -> bool {
        let (ia, ib) = (self.intern(a), self.intern(b));
        let (mut ra, mut rb) = (self.find(ia), self.find(ib));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        true
    }

    /// Merges every ASN in `group` into one set. A single-element group
    /// still registers its member (as a singleton).
    pub fn union_group(&mut self, group: &[Asn]) {
        if let Some(&first) = group.first() {
            self.intern(first);
        }
        for pair in group.windows(2) {
            self.union(pair[0], pair[1]);
        }
    }

    /// Are `a` and `b` currently in the same set? (`false` if either is
    /// unknown.)
    pub fn same_set(&mut self, a: Asn, b: Asn) -> bool {
        match (self.index.get(&a).copied(), self.index.get(&b).copied()) {
            (Some(ia), Some(ib)) => self.find(ia) == self.find(ib),
            _ => false,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when no element was ever added.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Extracts the sets as sorted member lists (deterministic order:
    /// sets sorted by their smallest ASN).
    pub fn into_groups(mut self) -> Vec<Vec<Asn>> {
        let mut by_root: BTreeMap<usize, Vec<Asn>> = BTreeMap::new();
        let entries: Vec<(Asn, usize)> = self.index.iter().map(|(a, i)| (*a, *i)).collect();
        for (asn, i) in entries {
            let root = self.find(i);
            by_root.entry(root).or_default().push(asn);
        }
        let mut groups: Vec<Vec<Asn>> = by_root.into_values().collect();
        for g in &mut groups {
            g.sort_unstable();
        }
        groups.sort_by_key(|g| g[0]);
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u32) -> Asn {
        Asn::new(n)
    }

    #[test]
    fn singletons_until_unioned() {
        let mut uf = UnionFind::with_universe([a(1), a(2), a(3)]);
        assert!(!uf.same_set(a(1), a(2)));
        assert!(uf.union(a(1), a(2)));
        assert!(uf.same_set(a(1), a(2)));
        assert!(!uf.same_set(a(1), a(3)));
    }

    #[test]
    fn union_is_idempotent() {
        let mut uf = UnionFind::new();
        assert!(uf.union(a(1), a(2)));
        assert!(!uf.union(a(1), a(2)));
        assert!(!uf.union(a(2), a(1)));
    }

    #[test]
    fn transitivity() {
        let mut uf = UnionFind::new();
        uf.union(a(1), a(2));
        uf.union(a(2), a(3));
        uf.union(a(4), a(5));
        assert!(uf.same_set(a(1), a(3)));
        assert!(!uf.same_set(a(3), a(4)));
    }

    #[test]
    fn union_group_links_everything() {
        let mut uf = UnionFind::new();
        uf.union_group(&[a(1), a(2), a(3), a(4)]);
        assert!(uf.same_set(a(1), a(4)));
        uf.union_group(&[a(9)]);
        assert_eq!(uf.len(), 5);
    }

    #[test]
    fn unknown_elements_are_never_same_set() {
        let mut uf = UnionFind::new();
        uf.union(a(1), a(2));
        assert!(!uf.same_set(a(1), a(99)));
        assert!(!uf.same_set(a(98), a(99)));
    }

    #[test]
    fn groups_are_sorted_and_complete() {
        let mut uf = UnionFind::with_universe([a(10), a(5), a(7), a(1)]);
        uf.union(a(10), a(1));
        let groups = uf.into_groups();
        assert_eq!(groups, vec![vec![a(1), a(10)], vec![a(5)], vec![a(7)]]);
    }

    #[test]
    fn large_chain_has_flat_depth_behaviour() {
        // Sanity/perf guard: a 100k-element chain must resolve instantly.
        let mut uf = UnionFind::new();
        for i in 1..100_000u32 {
            uf.union(a(i), a(i + 1));
        }
        assert!(uf.same_set(a(1), a(100_000)));
        assert_eq!(uf.into_groups().len(), 1);
    }

    #[test]
    fn order_of_unions_does_not_change_groups() {
        let mut uf1 = UnionFind::new();
        uf1.union(a(1), a(2));
        uf1.union(a(3), a(4));
        uf1.union(a(2), a(3));
        let mut uf2 = UnionFind::new();
        uf2.union(a(2), a(3));
        uf2.union(a(3), a(4));
        uf2.union(a(1), a(2));
        assert_eq!(uf1.into_groups(), uf2.into_groups());
    }
}
