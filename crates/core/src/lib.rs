//! # borges-core
//!
//! Borges — *Better ORGanizations Entities mappingS* — the paper's
//! primary contribution: an AS-to-Organization mapping framework that
//! combines organization keys from WHOIS and PeeringDB (§4.1), few-shot
//! LLM extraction of sibling ASNs from free text (§4.2), and web-based
//! inference over redirect chains, domain similarity and favicons (§4.3).
//!
//! ## Architecture
//!
//! ```text
//!  WHOIS ───────────► orgkeys (OID_W) ─┐
//!  PeeringDB ───────► orgkeys (OID_P) ─┤
//!  PeeringDB text ──► ner (LLM, §4.2) ─┼─► pipeline ──► AsOrgMapping
//!  PeeringDB sites ─► scraper ─► web::rr (§4.3.2) ─┤
//!                               web::favicon (§4.3.3, LLM)
//! ```
//!
//! Each stage produces *merge evidence* (groups/edges of sibling ASNs);
//! [`pipeline::Borges`] reconciles any subset of it by union-find over
//! the WHOIS universe and materializes an [`mapping::AsOrgMapping`].
//! [`orgfactor`] scores mappings with the paper's Organization Factor
//! (θ, §5.4), [`evalsets`] reproduces the Table 4/5 accuracy audits, and
//! [`impact`] implements the §6 analyses (user populations, AS-Rank
//! transit growth, hypergiants, country footprints).
//!
//! ## Quick start
//!
//! ```
//! use borges_core::pipeline::{Borges, FeatureSet};
//! use borges_core::orgfactor::organization_factor;
//! use borges_llm::SimLlm;
//! use borges_synthnet::{GeneratorConfig, SyntheticInternet};
//! use borges_websim::SimWebClient;
//!
//! let world = SyntheticInternet::generate(&GeneratorConfig::tiny(42));
//! let llm = SimLlm::new(42); // paper-calibrated error rates
//! let borges = Borges::run(&world.whois, &world.pdb,
//!                          SimWebClient::browser(&world.web), &llm);
//!
//! let as2org = borges.baseline_as2org();
//! let full = borges.full();
//! let n = borges.universe().len();
//! assert!(organization_factor(&full, n) > organization_factor(&as2org, n));
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod blocklists;
pub mod delta;
pub mod diff;
pub mod evalsets;
pub mod impact;
pub mod mapfile;
pub mod mapping;
pub mod ner;
pub mod orgfactor;
pub mod orgkeys;
pub mod pipeline;
pub mod unionfind;
pub mod web;
pub mod world;

pub use delta::{DeltaStats, SnapshotDelta, SnapshotState, SourceDelta, SourceFingerprints};
pub use mapping::{AsOrgMapping, ClusterId};
pub use orgfactor::organization_factor;
pub use pipeline::{
    Borges, CoverageReport, Feature, FeatureContribution, FeatureCoverage, FeatureSet,
};
pub use unionfind::{DenseUnionFind, SegmentFeed, ShardReport, ShardTiming, UnionFind};
pub use world::{CompiledWorld, ServingExtras};
