//! The Borges pipeline: feature computation and combination.
//!
//! [`Borges::run`] executes every stage once — organization keys (§4.1),
//! LLM extraction (§4.2), the web crawl and both web inferences (§4.3) —
//! and caches their merge evidence. [`Borges::mapping`] then materializes
//! the AS-to-Organization mapping for **any subset of features**
//! (Table 6 evaluates all 16 combinations).
//!
//! ## Evidence compilation
//!
//! Construction compiles every evidence source into dense-id edge lists
//! over the fixed universe (§5.4: vertices are all delegated networks):
//! ASNs are interned once through an [`AsnInterner`], evidence about
//! never-allocated ASNs is filtered out once, and the compulsory OID_W
//! closure is computed once into a [`DenseUnionFind`] base. Each
//! `mapping()` call then clones the base (two `memcpy`s) and replays
//! only the selected feature edges — no tree-map interning and no
//! membership checks on the hot path, which makes materialization both
//! cheap and embarrassingly parallel across feature combinations
//! ([`Borges::mappings_parallel`]).

use crate::mapping::AsOrgMapping;
use crate::ner::{extract, NerConfig, NerResult};
use crate::orgkeys;
use crate::unionfind::{DenseUnionFind, UnionFind};
use crate::web::favicon::{favicon_inference, FaviconInference};
use crate::web::rr::{rr_inference, RrInference};
use borges_llm::chat::ChatModel;
use borges_llm::RetryingModel;
use borges_peeringdb::PdbSnapshot;
use borges_resilience::{BreakerConfig, RetryPolicy};
use borges_types::{Asn, AsnInterner};
use borges_websim::{RetryingWebClient, ScrapeReport, ScrapeStats, Scraper, WebClient};
use borges_whois::WhoisRegistry;
use std::collections::BTreeSet;

/// A subset of Borges's four optional features. The WHOIS organization
/// key (`OID_W`) is always on — it is the compulsory base that defines
/// the universe, and with all four features off the pipeline *is* the
/// AS2Org baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FeatureSet {
    /// PeeringDB organization keys (§4.1).
    pub oid_p: bool,
    /// notes/aka LLM extraction (§4.2).
    pub na: bool,
    /// Final-URL matching (§4.3.2).
    pub rr: bool,
    /// Favicon decision tree (§4.3.3).
    pub favicons: bool,
}

impl FeatureSet {
    /// No optional features: the AS2Org baseline.
    pub const NONE: FeatureSet = FeatureSet {
        oid_p: false,
        na: false,
        rr: false,
        favicons: false,
    };

    /// Everything on: full Borges.
    pub const ALL: FeatureSet = FeatureSet {
        oid_p: true,
        na: true,
        rr: true,
        favicons: true,
    };

    /// All 16 combinations, in binary-counting order (Table 6 rows).
    pub fn all_combinations() -> Vec<FeatureSet> {
        (0..16)
            .map(|bits| FeatureSet {
                oid_p: bits & 1 != 0,
                na: bits & 2 != 0,
                rr: bits & 4 != 0,
                favicons: bits & 8 != 0,
            })
            .collect()
    }

    /// A human-readable label like `"OID_P + N&A"` (or `"AS2Org"` for the
    /// empty set).
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.oid_p {
            parts.push("OID_P");
        }
        if self.na {
            parts.push("N&A");
        }
        if self.rr {
            parts.push("R&R");
        }
        if self.favicons {
            parts.push("F");
        }
        if parts.is_empty() {
            "AS2Org (base)".to_string()
        } else {
            parts.join(" + ")
        }
    }
}

/// One of the five evidence sources of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feature {
    /// PeeringDB org keys.
    OidP,
    /// WHOIS org keys.
    OidW,
    /// notes/aka extraction.
    NotesAka,
    /// Final-URL matching.
    RefreshRedirect,
    /// Favicon grouping.
    Favicons,
}

impl Feature {
    /// All five, in Table 3 row order.
    pub const ALL: [Feature; 5] = [
        Feature::OidP,
        Feature::OidW,
        Feature::NotesAka,
        Feature::RefreshRedirect,
        Feature::Favicons,
    ];

    /// The row label used in Table 3.
    pub fn label(&self) -> &'static str {
        match self {
            Feature::OidP => "OID_P",
            Feature::OidW => "OID_W",
            Feature::NotesAka => "notes and aka",
            Feature::RefreshRedirect => "R&R",
            Feature::Favicons => "Favicons",
        }
    }
}

/// Table 3 row: how many ASNs a feature says anything about, and how many
/// organizations it groups them into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureContribution {
    /// Number of ASes covered by the feature in isolation.
    pub ases: usize,
    /// Number of organizations the feature groups them into.
    pub orgs: usize,
}

/// All five evidence sources compiled to dense-id edge lists over the
/// fixed universe, plus the precomputed OID_W base closure.
///
/// Compiled once at pipeline construction; replayed (against a clone of
/// `base`) on every [`Borges::mapping`] call. Evidence naming ASNs
/// outside the universe is dropped here, mirroring the membership
/// filtering the per-call path used to do: an NER edge survives only if
/// *both* endpoints are allocated, while R&R/favicon groups are
/// filtered member-wise and then chained.
#[derive(Debug, Clone)]
struct CompiledEvidence {
    interner: AsnInterner,
    /// The compulsory OID_W feature, already closed over the universe.
    base: DenseUnionFind,
    oid_p: Vec<(u32, u32)>,
    na: Vec<(u32, u32)>,
    rr: Vec<(u32, u32)>,
    favicons: Vec<(u32, u32)>,
}

impl CompiledEvidence {
    fn compile(
        universe: BTreeSet<Asn>,
        oid_w_groups: &[Vec<Asn>],
        oid_p_groups: &[Vec<Asn>],
        ner: &NerResult,
        rr: &RrInference,
        favicon: &FaviconInference,
    ) -> Self {
        let interner = AsnInterner::new(universe);

        let mut base = DenseUnionFind::new(interner.len());
        base.union_edges(&chain_groups(&interner, oid_w_groups));

        let na = ner
            .edges()
            .into_iter()
            .filter_map(|(a, b)| Some((interner.id(a)?, interner.id(b)?)))
            .collect();

        CompiledEvidence {
            base,
            oid_p: chain_groups(&interner, oid_p_groups),
            na,
            rr: chain_groups(&interner, rr.merging_groups()),
            favicons: chain_groups(&interner, &favicon.groups),
            interner,
        }
    }
}

/// Compiles sibling groups into dense-id edges: each group's in-universe
/// members are chained pairwise — the same spanning chain
/// [`UnionFind::union_group`] walks, after the same membership filter
/// the per-call path used to apply.
fn chain_groups<'g>(
    interner: &AsnInterner,
    groups: impl IntoIterator<Item = &'g Vec<Asn>>,
) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut ids: Vec<u32> = Vec::new();
    for group in groups {
        ids.clear();
        ids.extend(group.iter().filter_map(|&asn| interner.id(asn)));
        out.extend(ids.windows(2).map(|pair| (pair[0], pair[1])));
    }
    out
}

/// How much of one feature's attempted work survived the transport —
/// one row of the [`CoverageReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FeatureCoverage {
    /// Units of work the stage attempted (entries, LLM calls, groups).
    pub attempted: usize,
    /// Units whose transport transaction completed (whatever the
    /// in-world answer was).
    pub succeeded: usize,
    /// Units abandoned after the resilience budget ran out (or
    /// immediately, when no retry layer was installed).
    pub abandoned: usize,
}

impl FeatureCoverage {
    fn new(attempted: usize, abandoned: usize) -> Self {
        FeatureCoverage {
            attempted,
            succeeded: attempted - abandoned,
            abandoned,
        }
    }

    /// Accounting invariant: nothing silently dropped. Holds by
    /// construction for every report the pipeline builds; exposed so
    /// callers (and the chaos tests) can assert it end to end.
    pub fn accounted(&self) -> bool {
        self.succeeded + self.abandoned == self.attempted
    }

    /// No losses at all — the degraded and flawless pipelines coincide.
    pub fn complete(&self) -> bool {
        self.abandoned == 0
    }

    /// Fraction of attempted work that survived (1.0 for an idle stage).
    pub fn fraction(&self) -> f64 {
        if self.attempted == 0 {
            1.0
        } else {
            self.succeeded as f64 / self.attempted as f64
        }
    }
}

/// Per-feature account of what the pipeline attempted, kept, and lost to
/// the transport — the "partial evidence" contract: a degraded run tells
/// you exactly what is missing instead of failing or lying by omission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoverageReport {
    /// The crawl: PeeringDB entries with a parseable website URL.
    pub crawl: FeatureCoverage,
    /// §4.2 extraction: LLM calls over notes/aka text.
    pub notes_aka: FeatureCoverage,
    /// §4.3.3 step 2: LLM calls over shared-favicon groups.
    pub favicon_groups: FeatureCoverage,
}

impl CoverageReport {
    /// Every row individually accounted (see
    /// [`FeatureCoverage::accounted`]).
    pub fn accounted(&self) -> bool {
        self.crawl.accounted() && self.notes_aka.accounted() && self.favicon_groups.accounted()
    }

    /// Nothing was lost anywhere: the mapping is built on full evidence.
    pub fn complete(&self) -> bool {
        self.crawl.complete() && self.notes_aka.complete() && self.favicon_groups.complete()
    }

    /// Total abandoned units across all rows.
    pub fn total_abandoned(&self) -> usize {
        self.crawl.abandoned + self.notes_aka.abandoned + self.favicon_groups.abandoned
    }
}

/// The computed pipeline: all evidence, ready to combine.
#[derive(Debug, Clone)]
pub struct Borges {
    compiled: CompiledEvidence,
    oid_w_groups: Vec<Vec<Asn>>,
    oid_p_groups: Vec<Vec<Asn>>,
    /// §4.2 extraction output.
    pub ner: NerResult,
    /// §4.3.2 output.
    pub rr: RrInference,
    /// §4.3.3 output.
    pub favicon: FaviconInference,
    /// Crawl funnel statistics (§5.2).
    pub scrape_stats: ScrapeStats,
}

impl Borges {
    /// Runs every stage: crawls the web through `web_client`, extracts
    /// siblings with `model`, and caches all merge evidence.
    pub fn run<C: WebClient>(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        web_client: C,
        model: &dyn ChatModel,
    ) -> Self {
        let scraper = Scraper::new(web_client);
        let report = scraper.crawl(pdb.nets().map(|n| (n.asn, n.website.as_str())));
        Self::from_scrape(whois, pdb, &report, model, NerConfig::default())
    }

    /// Like [`Borges::run`], fanning the crawl and the LLM calls out over
    /// `threads` worker threads. Produces results identical to the
    /// sequential run (entries are independent; all aggregation is
    /// key-canonical) — only wall-clock time changes.
    pub fn run_parallel<C: WebClient + Sync>(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        web_client: C,
        model: &(dyn ChatModel + Sync),
        threads: usize,
    ) -> Self {
        let scraper = Scraper::new(web_client);
        let entries: Vec<(Asn, &str)> = pdb.nets().map(|n| (n.asn, n.website.as_str())).collect();
        let report = scraper.crawl_parallel(entries, threads);
        let ner = crate::ner::extract_parallel(pdb, model, NerConfig::default(), threads);
        Self::assemble(whois, pdb, &report, ner, model)
    }

    /// Like [`Borges::run`], with every boundary wrapped in the
    /// resilience stack: the web client behind a
    /// [`RetryingWebClient`] with per-host circuit breakers, and the chat
    /// model behind one [`RetryingModel`] per LLM stage (NER and the
    /// favicon classifier get separate retry/breaker state, so a meltdown
    /// in one stage cannot poison the other's budget accounting).
    ///
    /// The retry/breaker spend of each boundary is stamped into the
    /// matching stats block ([`ScrapeStats::resilience`],
    /// [`NerStats::resilience`](crate::ner::NerStats),
    /// [`FaviconStats::resilience`](crate::web::favicon::FaviconStats)),
    /// and [`Borges::coverage`] reports what survived.
    ///
    /// Determinism contract: over a fault-free (or recoverable-within-
    /// budget) world this produces a mapping **bit-identical** to
    /// [`Borges::run`] over the bare stack — retries erase recoverable
    /// faults entirely. When faults are not recoverable, the run still
    /// completes: abandoned work is counted, the mapping is built from
    /// the evidence that survived, and every abandoned record shows up in
    /// the coverage report.
    pub fn run_resilient<C: WebClient>(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        web_client: C,
        model: &dyn ChatModel,
        policy: RetryPolicy,
    ) -> Self {
        let breaker = BreakerConfig::standard();
        let web = RetryingWebClient::new(web_client, policy).with_breakers(breaker);
        let scraper = Scraper::new(&web);
        let mut report = scraper.crawl(pdb.nets().map(|n| (n.asn, n.website.as_str())));
        report.stats.resilience = web.stats();

        let ner_model = RetryingModel::new(model, policy).with_breaker(breaker);
        let mut ner = extract(pdb, &ner_model, NerConfig::default());
        ner.stats.resilience = ner_model.stats();

        let rr = rr_inference(&report);
        let favicon_model = RetryingModel::new(model, policy).with_breaker(breaker);
        let mut favicon = favicon_inference(&report, &favicon_model);
        favicon.stats.resilience = favicon_model.stats();

        Self::finish(whois, pdb, &report, ner, rr, favicon)
    }

    /// Like [`Borges::run`] but with a pre-computed scrape report and an
    /// explicit NER configuration (used by ablations and benches to avoid
    /// re-crawling).
    pub fn from_scrape(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        report: &ScrapeReport,
        model: &dyn ChatModel,
        ner_config: NerConfig,
    ) -> Self {
        let ner = extract(pdb, model, ner_config);
        Self::assemble(whois, pdb, report, ner, model)
    }

    /// Shared tail of the bare-stack constructors: runs the web
    /// inferences over `model` directly, then hands off to
    /// [`Borges::finish`].
    fn assemble(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        report: &ScrapeReport,
        ner: NerResult,
        model: &dyn ChatModel,
    ) -> Self {
        let rr = rr_inference(report);
        let favicon = favicon_inference(report, model);
        Self::finish(whois, pdb, report, ner, rr, favicon)
    }

    /// Shared tail of every constructor: fixes the universe and compiles
    /// all (pre-computed) evidence to dense edge lists. Takes the web
    /// inferences ready-made so callers can run them behind whatever
    /// client/model stack they choose (see [`Borges::run_resilient`]).
    fn finish(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        report: &ScrapeReport,
        ner: NerResult,
        rr: RrInference,
        favicon: FaviconInference,
    ) -> Self {
        let mut universe: BTreeSet<Asn> = whois.all_asns().collect();
        // PeeringDB networks missing from WHOIS (rare, but real dumps have
        // them) still belong to the mapping universe.
        universe.extend(pdb.nets().map(|n| n.asn));

        let oid_w_groups = orgkeys::oid_w_groups(whois);
        let oid_p_groups = orgkeys::oid_p_groups(pdb);
        let compiled =
            CompiledEvidence::compile(universe, &oid_w_groups, &oid_p_groups, &ner, &rr, &favicon);

        Borges {
            compiled,
            oid_w_groups,
            oid_p_groups,
            ner,
            rr,
            favicon,
            scrape_stats: report.stats.clone(),
        }
    }

    /// The mapping universe (all delegated ASNs), ascending.
    pub fn universe(&self) -> &[Asn] {
        self.compiled.interner.asns()
    }

    /// Materializes the mapping for a feature subset. `OID_W` is always
    /// applied; selected features add their merge evidence on top, and
    /// union-find reconciles partially overlapping clusters (§4.1).
    ///
    /// Evidence about ASNs outside the delegated universe — e.g. an
    /// extraction false positive reading a year as an ASN that was never
    /// allocated — was discarded at compile time: the mapping's vertex
    /// set is fixed to the WHOIS universe (§5.4).
    ///
    /// This is a pure replay over pre-compiled state: clone the OID_W
    /// base closure, union the selected edge lists, read the groups out.
    /// Calls are independent, so any number can run concurrently — see
    /// [`Borges::mappings_parallel`].
    pub fn mapping(&self, features: FeatureSet) -> AsOrgMapping {
        let mut uf = self.compiled.base.clone();
        if features.oid_p {
            uf.union_edges(&self.compiled.oid_p);
        }
        if features.na {
            uf.union_edges(&self.compiled.na);
        }
        if features.rr {
            uf.union_edges(&self.compiled.rr);
        }
        if features.favicons {
            uf.union_edges(&self.compiled.favicons);
        }
        AsOrgMapping::from_groups(uf.into_groups(&self.compiled.interner))
    }

    /// Materializes one mapping per feature set, fanning the independent
    /// replays out over `threads` worker threads. Results come back in
    /// input order and are bit-identical to calling [`Borges::mapping`]
    /// sequentially (assembly is key-canonical; threads change only
    /// wall-clock time). This is how the Table 6 sweep runs all 16
    /// combinations.
    pub fn mappings_parallel(&self, features: &[FeatureSet], threads: usize) -> Vec<AsOrgMapping> {
        borges_parallel::map_items(features, threads, |&f| self.mapping(f))
    }

    /// The AS2Org baseline (OID_W only).
    pub fn baseline_as2org(&self) -> AsOrgMapping {
        self.mapping(FeatureSet::NONE)
    }

    /// Full Borges (all features).
    pub fn full(&self) -> AsOrgMapping {
        self.mapping(FeatureSet::ALL)
    }

    /// The per-feature coverage report: what each transport-facing stage
    /// attempted, kept, and abandoned. Over a bare or fully-recovered
    /// stack this is [`complete`](CoverageReport::complete); it is
    /// [`accounted`](CoverageReport::accounted) always.
    pub fn coverage(&self) -> CoverageReport {
        CoverageReport {
            crawl: FeatureCoverage::new(
                self.scrape_stats.entries_with_website,
                self.scrape_stats.entries_abandoned,
            ),
            notes_aka: FeatureCoverage::new(self.ner.stats.llm_calls, self.ner.stats.llm_abandoned),
            favicon_groups: FeatureCoverage::new(
                self.favicon.stats.llm_calls,
                self.favicon.stats.llm_abandoned,
            ),
        }
    }

    /// Which evidence sources independently support `a` and `b` being
    /// siblings — the provenance of a merge. An empty result for a pair
    /// the full mapping merges means the link is *transitive only*
    /// (each hop supported by some feature, but no single feature sees
    /// the pair directly end to end).
    pub fn evidence(&self, a: Asn, b: Asn) -> Vec<Feature> {
        let mut out = Vec::new();
        let connects = |groups: &[Vec<Asn>]| {
            let mut uf = UnionFind::new();
            for group in groups {
                uf.union_group(group);
            }
            uf.same_set(a, b)
        };
        if connects(&self.oid_w_groups) {
            out.push(Feature::OidW);
        }
        if connects(&self.oid_p_groups) {
            out.push(Feature::OidP);
        }
        {
            let mut uf = UnionFind::new();
            for (x, y) in self.ner.edges() {
                uf.union(x, y);
            }
            if uf.same_set(a, b) {
                out.push(Feature::NotesAka);
            }
        }
        {
            let mut uf = UnionFind::new();
            for group in self.rr.merging_groups() {
                uf.union_group(group);
            }
            if uf.same_set(a, b) {
                out.push(Feature::RefreshRedirect);
            }
        }
        {
            let mut uf = UnionFind::new();
            for group in &self.favicon.groups {
                uf.union_group(group);
            }
            if uf.same_set(a, b) {
                out.push(Feature::Favicons);
            }
        }
        out
    }

    /// Table 3: the feature's contribution in isolation.
    pub fn contribution(&self, feature: Feature) -> FeatureContribution {
        let count = |groups: &[Vec<Asn>]| {
            let ases: usize = groups.iter().map(Vec::len).sum();
            FeatureContribution {
                ases,
                orgs: groups.len(),
            }
        };
        match feature {
            Feature::OidW => count(&self.oid_w_groups),
            Feature::OidP => count(&self.oid_p_groups),
            Feature::RefreshRedirect => count(&self.rr.groups),
            Feature::NotesAka => {
                // Cluster the extraction edges on their own.
                let mut uf = UnionFind::new();
                for (a, b) in self.ner.edges() {
                    uf.union(a, b);
                }
                let groups = uf.into_groups();
                count(&groups)
            }
            Feature::Favicons => {
                let mut uf = UnionFind::new();
                for group in &self.favicon.groups {
                    uf.union_group(group);
                }
                let groups = uf.into_groups();
                count(&groups)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borges_llm::SimLlm;
    use borges_synthnet::{GeneratorConfig, SyntheticInternet};
    use borges_websim::SimWebClient;

    fn pipeline() -> (SyntheticInternet, Borges) {
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(11));
        let llm = SimLlm::flawless();
        let borges = Borges::run(
            &world.whois,
            &world.pdb,
            SimWebClient::browser(&world.web),
            &llm,
        );
        (world, borges)
    }

    #[test]
    fn baseline_reproduces_whois_split() {
        let (_, borges) = pipeline();
        let base = borges.baseline_as2org();
        assert!(
            !base.same_org(Asn::new(3356), Asn::new(209)),
            "Fig. 3 split"
        );
    }

    #[test]
    fn oid_p_feature_merges_lumen() {
        let (_, borges) = pipeline();
        let m = borges.mapping(FeatureSet {
            oid_p: true,
            ..FeatureSet::NONE
        });
        assert!(m.same_org(Asn::new(3356), Asn::new(209)), "Fig. 3 merge");
    }

    #[test]
    fn rr_feature_merges_edgio() {
        let (_, borges) = pipeline();
        let base = borges.baseline_as2org();
        assert!(!base.same_org(Asn::new(22822), Asn::new(15133)));
        let m = borges.mapping(FeatureSet {
            rr: true,
            ..FeatureSet::NONE
        });
        assert!(m.same_org(Asn::new(22822), Asn::new(15133)), "§4.3.2 case");
    }

    #[test]
    fn na_feature_merges_deutsche_telekom() {
        let (_, borges) = pipeline();
        let m = borges.mapping(FeatureSet {
            na: true,
            ..FeatureSet::NONE
        });
        assert!(m.same_org(Asn::new(3320), Asn::new(6855)), "Fig. 4 case");
        assert!(m.same_org(Asn::new(3320), Asn::new(5483)));
    }

    #[test]
    fn favicon_feature_merges_claro() {
        let (_, borges) = pipeline();
        let m = borges.mapping(FeatureSet {
            favicons: true,
            ..FeatureSet::NONE
        });
        assert!(
            m.same_org(Asn::new(27651), Asn::new(10396)),
            "Claro Chile + Claro PR via favicon + LLM"
        );
    }

    #[test]
    fn full_borges_groups_monotonically_vs_baseline() {
        let (_, borges) = pipeline();
        let base = borges.baseline_as2org();
        let full = borges.full();
        assert_eq!(base.asn_count(), full.asn_count(), "same universe");
        assert!(
            full.org_count() < base.org_count(),
            "features must merge organizations"
        );
        // Monotonicity: everything the baseline merged stays merged.
        for (_, members) in base.clusters() {
            for pair in members.windows(2) {
                assert!(full.same_org(pair[0], pair[1]));
            }
        }
    }

    #[test]
    fn all_16_combinations_enumerate() {
        let combos = FeatureSet::all_combinations();
        assert_eq!(combos.len(), 16);
        assert_eq!(combos[0], FeatureSet::NONE);
        assert_eq!(combos[15], FeatureSet::ALL);
        let labels: std::collections::BTreeSet<String> =
            combos.iter().map(FeatureSet::label).collect();
        assert_eq!(labels.len(), 16, "labels must be distinct");
    }

    #[test]
    fn contributions_have_sensible_shapes() {
        let (world, borges) = pipeline();
        let oid_w = borges.contribution(Feature::OidW);
        let oid_p = borges.contribution(Feature::OidP);
        assert_eq!(oid_w.ases, world.whois.asn_count());
        assert_eq!(oid_p.ases, world.pdb.net_count());
        assert!(oid_w.ases > oid_p.ases, "WHOIS covers more than PeeringDB");
        for f in Feature::ALL {
            let c = borges.contribution(f);
            assert!(c.orgs <= c.ases, "{:?}: more orgs than ASes", f);
        }
        let na = borges.contribution(Feature::NotesAka);
        assert!(na.ases > 0, "scripted sibling notes must fire");
        let rr = borges.contribution(Feature::RefreshRedirect);
        assert!(rr.ases > 0 && rr.orgs < rr.ases);
    }

    #[test]
    fn mapping_covers_the_whole_universe() {
        let (world, borges) = pipeline();
        let m = borges.full();
        assert_eq!(m.asn_count(), borges.universe().len());
        assert!(m.asn_count() >= world.whois.asn_count());
    }

    #[test]
    fn evidence_provenance_names_the_right_features() {
        let (_, borges) = pipeline();
        // Lumen/CenturyLink: merged by the PeeringDB key, not WHOIS.
        let ev = borges.evidence(Asn::new(3356), Asn::new(209));
        assert!(ev.contains(&Feature::OidP), "{ev:?}");
        assert!(!ev.contains(&Feature::OidW), "{ev:?}");
        // Edgio: merged by final-URL matching.
        let ev = borges.evidence(Asn::new(22822), Asn::new(15133));
        assert!(ev.contains(&Feature::RefreshRedirect), "{ev:?}");
        // Deutsche Telekom subsidiary: notes evidence.
        let ev = borges.evidence(Asn::new(3320), Asn::new(6855));
        assert!(ev.contains(&Feature::NotesAka), "{ev:?}");
        // Claro Chile / Claro PR: favicon evidence.
        let ev = borges.evidence(Asn::new(27651), Asn::new(10396));
        assert!(ev.contains(&Feature::Favicons), "{ev:?}");
        // Unrelated pair: no evidence at all.
        assert!(borges.evidence(Asn::new(174), Asn::new(15169)).is_empty());
    }

    #[test]
    fn parallel_pipeline_matches_sequential() {
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(13));
        let llm = SimLlm::new(13);
        let sequential = Borges::run(
            &world.whois,
            &world.pdb,
            SimWebClient::browser(&world.web),
            &llm,
        );
        let parallel = Borges::run_parallel(
            &world.whois,
            &world.pdb,
            SimWebClient::browser(&world.web),
            &llm,
            4,
        );
        assert_eq!(
            parallel.mapping(FeatureSet::ALL),
            sequential.mapping(FeatureSet::ALL)
        );
        assert_eq!(parallel.ner.per_entry, sequential.ner.per_entry);
        assert_eq!(parallel.scrape_stats, sequential.scrape_stats);
    }

    #[test]
    fn mappings_parallel_matches_sequential_mapping() {
        let (_, borges) = pipeline();
        let combos = FeatureSet::all_combinations();
        let sequential: Vec<_> = combos.iter().map(|&f| borges.mapping(f)).collect();
        for threads in [1, 2, 7] {
            assert_eq!(
                borges.mappings_parallel(&combos, threads),
                sequential,
                "diverged with {threads} threads"
            );
        }
    }

    #[test]
    fn compiled_replay_matches_sparse_rebuild() {
        // The dense replay must reproduce, bit for bit, what the original
        // per-call sparse rebuild produced for every feature subset.
        let (_, borges) = pipeline();
        let allocated: BTreeSet<Asn> = borges.universe().iter().copied().collect();
        for features in FeatureSet::all_combinations() {
            let mut uf = UnionFind::with_universe(borges.universe().iter().copied());
            for group in &borges.oid_w_groups {
                uf.union_group(group);
            }
            if features.oid_p {
                for group in &borges.oid_p_groups {
                    uf.union_group(group);
                }
            }
            if features.na {
                for (a, b) in borges.ner.edges() {
                    if allocated.contains(&a) && allocated.contains(&b) {
                        uf.union(a, b);
                    }
                }
            }
            if features.rr {
                for group in borges.rr.merging_groups() {
                    let members: Vec<Asn> = group
                        .iter()
                        .copied()
                        .filter(|a| allocated.contains(a))
                        .collect();
                    uf.union_group(&members);
                }
            }
            if features.favicons {
                for group in &borges.favicon.groups {
                    let members: Vec<Asn> = group
                        .iter()
                        .copied()
                        .filter(|a| allocated.contains(a))
                        .collect();
                    uf.union_group(&members);
                }
            }
            assert_eq!(
                borges.mapping(features),
                AsOrgMapping::from_union_find(uf),
                "replay diverged for {}",
                features.label()
            );
        }
    }

    #[test]
    fn chaos_resilient_run_on_a_flawless_world_matches_run() {
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(11));
        let llm = SimLlm::flawless();
        let bare = Borges::run(
            &world.whois,
            &world.pdb,
            SimWebClient::browser(&world.web),
            &llm,
        );
        let resilient = Borges::run_resilient(
            &world.whois,
            &world.pdb,
            SimWebClient::browser(&world.web),
            &llm,
            borges_resilience::RetryPolicy::standard(11),
        );
        for features in FeatureSet::all_combinations() {
            assert_eq!(resilient.mapping(features), bare.mapping(features));
        }
        let coverage = resilient.coverage();
        assert!(coverage.accounted());
        assert!(coverage.complete());
        // The stack was transparent: one attempt per call, nothing retried.
        let web = resilient.scrape_stats.resilience;
        assert_eq!(web.attempts, web.calls);
        assert_eq!(web.recovered + web.abandoned, 0);
        assert_eq!(
            resilient.ner.stats.resilience.calls as usize,
            resilient.ner.stats.llm_calls
        );
        assert_eq!(
            resilient.favicon.stats.resilience.calls as usize,
            resilient.favicon.stats.llm_calls
        );
    }

    #[test]
    fn chaos_recoverable_faults_yield_a_bit_identical_mapping() {
        use borges_llm::FlakyModel;
        use borges_resilience::{EpisodePlan, RetryPolicy};
        use borges_websim::FlakyWebClient;

        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(11));
        let flawless = Borges::run(
            &world.whois,
            &world.pdb,
            SimWebClient::browser(&world.web),
            &SimLlm::flawless(),
        );
        for seed in [1u64, 2, 3] {
            let flaky_web = FlakyWebClient::new(
                SimWebClient::browser(&world.web),
                EpisodePlan::calibrated(seed),
            );
            let flaky_llm = FlakyModel::new(SimLlm::flawless(), EpisodePlan::calibrated(seed ^ 1));
            let chaotic = Borges::run_resilient(
                &world.whois,
                &world.pdb,
                flaky_web,
                &flaky_llm,
                RetryPolicy::standard(seed),
            );
            // The keystone: every recoverable episode is erased entirely.
            for features in FeatureSet::all_combinations() {
                assert_eq!(
                    chaotic.mapping(features),
                    flawless.mapping(features),
                    "seed {seed}, {}",
                    features.label()
                );
            }
            let coverage = chaotic.coverage();
            assert!(coverage.complete(), "seed {seed}: nothing may be lost");
            assert!(coverage.accounted());
            assert!(
                chaotic.scrape_stats.resilience.recovered
                    + chaotic.ner.stats.resilience.recovered
                    + chaotic.favicon.stats.resilience.recovered
                    > 0,
                "seed {seed}: the plan must actually have injected faults"
            );
        }
    }

    #[test]
    fn chaos_unrecoverable_faults_degrade_with_full_accounting() {
        use borges_llm::FlakyModel;
        use borges_resilience::{EpisodePlan, RetryPolicy};
        use borges_websim::FlakyWebClient;

        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(11));
        let flawless = Borges::run(
            &world.whois,
            &world.pdb,
            SimWebClient::browser(&world.web),
            &SimLlm::flawless(),
        );
        // Permanent outages and no retries: losses are guaranteed.
        let flaky_web = FlakyWebClient::new(
            SimWebClient::browser(&world.web),
            EpisodePlan::with_outages(7),
        );
        let flaky_llm = FlakyModel::new(SimLlm::flawless(), EpisodePlan::with_outages(8));
        let degraded = Borges::run_resilient(
            &world.whois,
            &world.pdb,
            flaky_web,
            &flaky_llm,
            RetryPolicy::none(),
        );

        // The run completed and every loss is on the books.
        let coverage = degraded.coverage();
        assert!(coverage.accounted(), "abandoned + succeeded == attempted");
        assert!(
            coverage.total_abandoned() > 0,
            "outages must cost something"
        );
        // Client-level accounting: one call per distinct URL (the cache
        // dedups), and every call either succeeded or was abandoned.
        let web = degraded.scrape_stats.resilience;
        assert_eq!(web.calls as usize, degraded.scrape_stats.unique_urls);
        assert_eq!(web.succeeded() + web.abandoned, web.calls);

        // Degradation only removes evidence: everything still merged is
        // merged in the flawless world too, and the universe is intact.
        let full = degraded.full();
        let reference = flawless.full();
        assert_eq!(full.asn_count(), reference.asn_count());
        for (_, members) in full.clusters() {
            for pair in members.windows(2) {
                assert!(
                    reference.same_org(pair[0], pair[1]),
                    "degraded run invented a merge: {:?}",
                    pair
                );
            }
        }
    }

    #[test]
    fn feature_order_does_not_matter() {
        // Union-find is order-insensitive; two different routes to the
        // same feature set must agree exactly.
        let (_, borges) = pipeline();
        let a = borges.mapping(FeatureSet::ALL);
        let b = borges.mapping(FeatureSet::ALL);
        assert_eq!(a, b);
    }
}
