//! The Borges pipeline: feature computation and combination.
//!
//! [`Borges::run`] executes every stage once — organization keys (§4.1),
//! LLM extraction (§4.2), the web crawl and both web inferences (§4.3) —
//! and caches their merge evidence. [`Borges::mapping`] then materializes
//! the AS-to-Organization mapping for **any subset of features**
//! (Table 6 evaluates all 16 combinations).
//!
//! ## Evidence compilation
//!
//! Construction compiles every evidence source into dense-id edge lists
//! over the fixed universe (§5.4: vertices are all delegated networks):
//! ASNs are interned once through an [`AsnInterner`], evidence about
//! never-allocated ASNs is filtered out once, and the compulsory OID_W
//! closure is computed once into a [`DenseUnionFind`] base. Each
//! `mapping()` call then clones the base (two `memcpy`s) and replays
//! only the selected feature edges — no tree-map interning and no
//! membership checks on the hot path, which makes materialization both
//! cheap and embarrassingly parallel across feature combinations
//! ([`Borges::mappings_parallel`]).

use crate::delta::{
    self, DeltaStats, EdgeSegment, SegmentDelta, SnapshotDelta, SnapshotState, SourceDelta,
    SourceFingerprints,
};
use crate::mapping::AsOrgMapping;
use crate::ner::{extract, extract_with_memo, NerConfig, NerResult};
use crate::orgkeys;
use crate::unionfind::SegmentFeed;
use crate::unionfind::{DenseUnionFind, ShardReport, UnionFind};
use crate::web::favicon::{favicon_inference, favicon_inference_memo, FaviconInference};
use crate::web::rr::{rr_inference, RrInference};
use crate::world::{
    CompiledWorld, FaviconGroupRecord, NerEntryRecord, RrGroupRecord, ServingExtras,
};
use borges_llm::chat::ChatModel;
use borges_llm::RetryingModel;
use borges_parallel::{stream_indexed, StreamConfig, StreamLedger};
use borges_peeringdb::PdbSnapshot;
use borges_resilience::{
    stable_hash, BreakerConfig, Clock, RateLimiterRegistry, ResilienceStats, RetryPolicy, SimClock,
};
use borges_telemetry::{
    CacheReport, CacheStats, CoverageRow, CrawlFunnel, DeltaEdgeRow, DeltaRecordRow, DeltaReport,
    EvidenceSummary, FaviconFunnel, NerFunnel, ResilienceRow, RrFunnel, RunReport, Span, Telemetry,
    TimelineReport, WorkerTiming, RUN_REPORT_SCHEMA,
};
use borges_types::{Asn, AsnInterner, Url};
use borges_websim::{
    ReportAssembler, RetryingWebClient, ScrapeReport, ScrapeStats, Scraper, StreamingWebClient,
    WebClient,
};
use borges_whois::WhoisRegistry;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A subset of Borges's four optional features. The WHOIS organization
/// key (`OID_W`) is always on — it is the compulsory base that defines
/// the universe, and with all four features off the pipeline *is* the
/// AS2Org baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FeatureSet {
    /// PeeringDB organization keys (§4.1).
    pub oid_p: bool,
    /// notes/aka LLM extraction (§4.2).
    pub na: bool,
    /// Final-URL matching (§4.3.2).
    pub rr: bool,
    /// Favicon decision tree (§4.3.3).
    pub favicons: bool,
}

impl FeatureSet {
    /// No optional features: the AS2Org baseline.
    pub const NONE: FeatureSet = FeatureSet {
        oid_p: false,
        na: false,
        rr: false,
        favicons: false,
    };

    /// Everything on: full Borges.
    pub const ALL: FeatureSet = FeatureSet {
        oid_p: true,
        na: true,
        rr: true,
        favicons: true,
    };

    /// All 16 combinations, in binary-counting order (Table 6 rows).
    pub fn all_combinations() -> Vec<FeatureSet> {
        (0..16).map(FeatureSet::from_bits).collect()
    }

    /// Packs the four optional features into the low nibble of a byte —
    /// a dense cache/map key. Inverse of [`FeatureSet::from_bits`].
    pub fn bits(&self) -> u8 {
        (self.oid_p as u8)
            | (self.na as u8) << 1
            | (self.rr as u8) << 2
            | (self.favicons as u8) << 3
    }

    /// The feature set encoded by the low nibble of `bits` (high bits
    /// are ignored). Inverse of [`FeatureSet::bits`].
    pub fn from_bits(bits: u8) -> FeatureSet {
        FeatureSet {
            oid_p: bits & 1 != 0,
            na: bits & 2 != 0,
            rr: bits & 4 != 0,
            favicons: bits & 8 != 0,
        }
    }

    /// Parses a feature spec: `all`, `none`, or a comma-separated list
    /// of `oid_p`, `na` (alias `notes-aka`), `rr`, `favicons` (alias
    /// `f`). Shared by the CLI `--features` flag and the serving API's
    /// `features=` query parameter, so both surfaces accept the same
    /// vocabulary and reject the same typos.
    pub fn parse(spec: &str) -> Result<FeatureSet, String> {
        match spec {
            "all" => return Ok(FeatureSet::ALL),
            "none" => return Ok(FeatureSet::NONE),
            _ => {}
        }
        let mut features = FeatureSet::NONE;
        for token in spec.split(',') {
            match token.trim() {
                "oid_p" => features.oid_p = true,
                "na" | "notes-aka" => features.na = true,
                "rr" => features.rr = true,
                "favicons" | "f" => features.favicons = true,
                other => {
                    return Err(format!(
                        "unknown feature {other:?} (expected oid_p, na, rr, favicons)"
                    ))
                }
            }
        }
        Ok(features)
    }

    /// A human-readable label like `"OID_P + N&A"` (or `"AS2Org"` for the
    /// empty set).
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.oid_p {
            parts.push("OID_P");
        }
        if self.na {
            parts.push("N&A");
        }
        if self.rr {
            parts.push("R&R");
        }
        if self.favicons {
            parts.push("F");
        }
        if parts.is_empty() {
            "AS2Org (base)".to_string()
        } else {
            parts.join(" + ")
        }
    }
}

/// One of the five evidence sources of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feature {
    /// PeeringDB org keys.
    OidP,
    /// WHOIS org keys.
    OidW,
    /// notes/aka extraction.
    NotesAka,
    /// Final-URL matching.
    RefreshRedirect,
    /// Favicon grouping.
    Favicons,
}

impl Feature {
    /// All five, in Table 3 row order.
    pub const ALL: [Feature; 5] = [
        Feature::OidP,
        Feature::OidW,
        Feature::NotesAka,
        Feature::RefreshRedirect,
        Feature::Favicons,
    ];

    /// The row label used in Table 3.
    pub fn label(&self) -> &'static str {
        match self {
            Feature::OidP => "OID_P",
            Feature::OidW => "OID_W",
            Feature::NotesAka => "notes and aka",
            Feature::RefreshRedirect => "R&R",
            Feature::Favicons => "Favicons",
        }
    }
}

/// Table 3 row: how many ASNs a feature says anything about, and how many
/// organizations it groups them into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureContribution {
    /// Number of ASes covered by the feature in isolation.
    pub ases: usize,
    /// Number of organizations the feature groups them into.
    pub orgs: usize,
}

/// All five evidence sources compiled to dense-id edge lists over the
/// fixed universe, plus the precomputed OID_W base closure.
///
/// Compiled once at pipeline construction; replayed (against a clone of
/// `base`) on every [`Borges::mapping`] call. Evidence naming ASNs
/// outside the universe is dropped here, mirroring the membership
/// filtering the per-call path used to do: every group is filtered
/// member-wise and then chained pairwise (the spanning chain
/// [`UnionFind::union_group`] walks) — an NER subject's star of
/// siblings becomes a chain with the same edge count and closure.
///
/// The edge lists are partitioned into [`EdgeSegment`]s keyed by the
/// source record that derived them. A full compile and an incremental
/// [`CompiledEvidence::apply_delta`] run the *same* segment-merge code
/// ([`delta::merge_feature`]) — the full path just starts from an empty
/// prior, which is what makes incremental-equals-full structural rather
/// than coincidental.
#[derive(Debug, Clone)]
struct CompiledEvidence {
    interner: AsnInterner,
    /// The compulsory OID_W feature, already closed over the universe.
    base: DenseUnionFind,
    oid_w: Vec<EdgeSegment<String>>,
    oid_p: Vec<EdgeSegment<u64>>,
    na: Vec<EdgeSegment<u32>>,
    rr: Vec<EdgeSegment<String>>,
    favicons: Vec<EdgeSegment<u64>>,
}

fn segment_edge_count<K>(segments: &[EdgeSegment<K>]) -> usize {
    segments.iter().map(|s| s.edges.len()).sum()
}

impl CompiledEvidence {
    /// Full (non-incremental) compilation: a fresh interner over the
    /// sorted universe, every segment derived from scratch. With
    /// `threads > 1` the OID_W base closure is replayed sharded (see
    /// [`CompiledEvidence::build`]); the result is byte-identical either
    /// way.
    #[allow(clippy::too_many_arguments)]
    fn compile(
        universe: BTreeSet<Asn>,
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        ner: &NerResult,
        rr: &RrInference,
        favicon: &FaviconInference,
        threads: usize,
        tel: &Telemetry,
    ) -> Self {
        let interner = AsnInterner::new(universe);
        Self::build(interner, None, whois, pdb, ner, rr, favicon, threads, tel).0
    }

    /// Incremental recompilation against persisted snapshot-T state:
    /// the interner evolves append-only (surviving ASNs keep their
    /// dense ids, departures are tombstoned, arrivals get fresh or
    /// resurrected slots), and only segments whose member fingerprint
    /// moved are re-derived — the per-feature union-find replay then
    /// happens lazily in [`Borges::mapping`], exactly as on a full run.
    #[allow(clippy::too_many_arguments)]
    fn apply_delta(
        state: &SnapshotState,
        universe: &BTreeSet<Asn>,
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        ner: &NerResult,
        rr: &RrInference,
        favicon: &FaviconInference,
        threads: usize,
        tel: &Telemetry,
    ) -> (Self, DeltaStats) {
        let mut interner = AsnInterner::from_slots(state.slot_pairs());
        let mut stats = DeltaStats::default();
        for asn in interner.live_asns() {
            if universe.contains(&asn) {
                stats.asns_retained += 1;
            } else {
                interner.retire(asn);
                stats.asns_retired += 1;
            }
        }
        // Ascending order keeps appended slot ids deterministic.
        for &asn in universe {
            if !interner.contains(asn) {
                interner.append(asn);
                stats.asns_added += 1;
            }
        }
        let (compiled, [oid_w, oid_p, na, rr_d, favicons]) = Self::build(
            interner,
            Some(state),
            whois,
            pdb,
            ner,
            rr,
            favicon,
            threads,
            tel,
        );
        stats.oid_w = oid_w;
        stats.oid_p = oid_p;
        stats.na = na;
        stats.rr = rr_d;
        stats.favicons = favicons;
        (compiled, stats)
    }

    /// The shared segment-merge tail of both compilation paths. `prior`
    /// is `None` for a full compile (every segment derives fresh). The
    /// OID_W base closure is always rebuilt from the segment edges —
    /// a union-find cannot un-union a retired bridge, and the rebuild
    /// is cheap next to group re-derivation.
    ///
    /// With `threads > 1` the base replay runs sharded
    /// ([`DenseUnionFind::union_edge_lists_sharded`], DESIGN.md §11):
    /// byte-identical output, with per-shard accounting stamped into
    /// `tel`'s worker-timing ledger only — never the canonical trace or
    /// metrics snapshot, which must not vary with thread count.
    #[allow(clippy::too_many_arguments)]
    fn build(
        interner: AsnInterner,
        prior: Option<&SnapshotState>,
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        ner: &NerResult,
        rr: &RrInference,
        favicon: &FaviconInference,
        threads: usize,
        tel: &Telemetry,
    ) -> (Self, [SegmentDelta; 5]) {
        let (p_w, p_p, p_na, p_rr, p_f) = match prior {
            Some(s) => (
                s.prior_oid_w(),
                s.prior_oid_p(),
                s.prior_na(),
                s.prior_rr(),
                s.prior_favicons(),
            ),
            None => Default::default(),
        };
        let (oid_w, d_w) = delta::merge_feature(&interner, &p_w, delta::keyed_whois_groups(whois));
        let (oid_p, d_p) = delta::merge_feature(&interner, &p_p, delta::keyed_pdb_groups(pdb));
        let (na, d_na) = delta::merge_feature(&interner, &p_na, delta::keyed_ner_groups(ner));
        let (rr, d_rr) = delta::merge_feature(&interner, &p_rr, delta::keyed_rr_groups(rr));
        let (favicons, d_f) =
            delta::merge_feature(&interner, &p_f, delta::keyed_favicon_groups(favicon));

        let mut base = DenseUnionFind::new(interner.len());
        if threads > 1 {
            let lists: Vec<&[(u32, u32)]> = oid_w.iter().map(|seg| seg.edges.as_slice()).collect();
            let report = base.union_edge_lists_sharded(&lists, threads, || tel.now_ms());
            record_shard_report(tel, "compile", &report);
        } else {
            for seg in &oid_w {
                base.union_edges(&seg.edges);
            }
        }

        (
            CompiledEvidence {
                interner,
                base,
                oid_w,
                oid_p,
                na,
                rr,
                favicons,
            },
            [d_w, d_p, d_na, d_rr, d_f],
        )
    }

    /// The streaming compile tail: finishes a [`StreamPrecompiled`]
    /// (whose registry-derived segments and OID_W base feed were built
    /// *during* the crawl overlap window) with the crawl-dependent
    /// features. Runs the exact same `merge_feature` derivations and
    /// the same sharded base replay as [`CompiledEvidence::compile`] —
    /// the work is merely scheduled earlier, so the result is
    /// byte-identical.
    #[allow(clippy::too_many_arguments)]
    fn compile_from_stream(
        interner: AsnInterner,
        oid_w: Vec<EdgeSegment<String>>,
        oid_p: Vec<EdgeSegment<u64>>,
        feed: SegmentFeed,
        ner: &NerResult,
        rr: &RrInference,
        favicon: &FaviconInference,
        threads: usize,
        tel: &Telemetry,
    ) -> Self {
        let (na, _) =
            delta::merge_feature(&interner, &BTreeMap::new(), delta::keyed_ner_groups(ner));
        let (rr, _) = delta::merge_feature(&interner, &BTreeMap::new(), delta::keyed_rr_groups(rr));
        let (favicons, _) = delta::merge_feature(
            &interner,
            &BTreeMap::new(),
            delta::keyed_favicon_groups(favicon),
        );
        let mut base = DenseUnionFind::new(interner.len());
        let report = feed.finish(&mut base, || tel.now_ms());
        if threads > 1 {
            record_shard_report(tel, "compile", &report);
        }
        CompiledEvidence {
            interner,
            base,
            oid_w,
            oid_p,
            na,
            rr,
            favicons,
        }
    }
}

/// The crawl-independent compilation work a streaming run performs
/// while fetches are still in flight: the fixed universe, the interner,
/// both registry org-key groupings, the OID_W/OID_P edge segments, and
/// a [`SegmentFeed`] already loaded with every OID_W edge, ready for
/// the sharded base replay at compile time.
struct StreamPrecompiled {
    interner: AsnInterner,
    oid_w: Vec<EdgeSegment<String>>,
    oid_p: Vec<EdgeSegment<u64>>,
    feed: SegmentFeed,
    oid_w_groups: Vec<Vec<Asn>>,
    oid_p_groups: Vec<Vec<Asn>>,
}

impl StreamPrecompiled {
    /// Compiles everything derivable from the registries alone —
    /// scheduled on the compute thread while the crawl scheduler owns
    /// the I/O. `threads` sizes the eventual base replay's shard count,
    /// matching what the staged compile would use.
    fn build(whois: &WhoisRegistry, pdb: &PdbSnapshot, threads: usize) -> Self {
        let mut universe: BTreeSet<Asn> = whois.all_asns().collect();
        universe.extend(pdb.nets().map(|n| n.asn));
        let oid_w_groups = orgkeys::oid_w_groups(whois);
        let oid_p_groups = orgkeys::oid_p_groups(pdb);
        let interner = AsnInterner::new(universe);
        let (oid_w, _) = delta::merge_feature(
            &interner,
            &BTreeMap::new(),
            delta::keyed_whois_groups(whois),
        );
        let (oid_p, _) =
            delta::merge_feature(&interner, &BTreeMap::new(), delta::keyed_pdb_groups(pdb));
        let mut feed = SegmentFeed::new(interner.len(), threads);
        for seg in &oid_w {
            feed.feed(&seg.edges);
        }
        StreamPrecompiled {
            interner,
            oid_w,
            oid_p,
            feed,
            oid_w_groups,
            oid_p_groups,
        }
    }
}

/// How much of one feature's attempted work survived the transport —
/// one row of the [`CoverageReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FeatureCoverage {
    /// Units of work the stage attempted (entries, LLM calls, groups).
    pub attempted: usize,
    /// Units whose transport transaction completed (whatever the
    /// in-world answer was).
    pub succeeded: usize,
    /// Units abandoned after the resilience budget ran out (or
    /// immediately, when no retry layer was installed).
    pub abandoned: usize,
}

impl FeatureCoverage {
    fn new(attempted: usize, abandoned: usize) -> Self {
        FeatureCoverage {
            attempted,
            succeeded: attempted - abandoned,
            abandoned,
        }
    }

    /// Accounting invariant: nothing silently dropped. Holds by
    /// construction for every report the pipeline builds; exposed so
    /// callers (and the chaos tests) can assert it end to end.
    pub fn accounted(&self) -> bool {
        self.succeeded + self.abandoned == self.attempted
    }

    /// No losses at all — the degraded and flawless pipelines coincide.
    pub fn complete(&self) -> bool {
        self.abandoned == 0
    }

    /// Fraction of attempted work that survived (1.0 for an idle stage).
    pub fn fraction(&self) -> f64 {
        if self.attempted == 0 {
            1.0
        } else {
            self.succeeded as f64 / self.attempted as f64
        }
    }
}

/// Per-feature account of what the pipeline attempted, kept, and lost to
/// the transport — the "partial evidence" contract: a degraded run tells
/// you exactly what is missing instead of failing or lying by omission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoverageReport {
    /// The crawl: PeeringDB entries with a parseable website URL.
    pub crawl: FeatureCoverage,
    /// §4.2 extraction: LLM calls over notes/aka text.
    pub notes_aka: FeatureCoverage,
    /// §4.3.3 step 2: LLM calls over shared-favicon groups.
    pub favicon_groups: FeatureCoverage,
}

impl CoverageReport {
    /// Every row individually accounted (see
    /// [`FeatureCoverage::accounted`]).
    pub fn accounted(&self) -> bool {
        self.crawl.accounted() && self.notes_aka.accounted() && self.favicon_groups.accounted()
    }

    /// Nothing was lost anywhere: the mapping is built on full evidence.
    pub fn complete(&self) -> bool {
        self.crawl.complete() && self.notes_aka.complete() && self.favicon_groups.complete()
    }

    /// Total abandoned units across all rows.
    pub fn total_abandoned(&self) -> usize {
        self.crawl.abandoned + self.notes_aka.abandoned + self.favicon_groups.abandoned
    }
}

/// The computed pipeline: all evidence, ready to combine.
#[derive(Debug, Clone)]
pub struct Borges {
    compiled: CompiledEvidence,
    oid_w_groups: Vec<Vec<Asn>>,
    oid_p_groups: Vec<Vec<Asn>>,
    /// §4.2 extraction output.
    pub ner: NerResult,
    /// §4.3.2 output.
    pub rr: RrInference,
    /// §4.3.3 output.
    pub favicon: FaviconInference,
    /// Crawl funnel statistics (§5.2).
    pub scrape_stats: ScrapeStats,
    /// Hit/miss counters of the crawl's fetch (redirect) cache.
    /// Observational only — under a parallel crawl, racing misses on the
    /// same URL may each count — so it feeds the run ledger, never the
    /// `PartialEq`-compared funnel stats.
    pub web_cache: CacheStats,
    /// Per-record fingerprints of the inputs this run consumed, captured
    /// so [`Borges::snapshot_state`] can persist them for a later
    /// [`Borges::remap`] to diff against.
    fingerprints: SourceFingerprints,
    /// Delta accounting when this pipeline was built incrementally by
    /// [`Borges::remap`]; `None` on full runs.
    pub delta: Option<DeltaStats>,
    /// Timeline epoch this world was published at; `0` until a timeline
    /// append stamps it (see [`Borges::set_world_epoch`]). Exported
    /// through [`Borges::to_world`] so the epoch participates in the
    /// artifact's content address.
    world_epoch: u64,
}

/// Runs `f` as one logical pipeline stage: a child span of `parent` plus
/// a `borges_stage_<name>_ms` duration observation on the run clock. The
/// closure gets the span to annotate with its funnel numbers — fields
/// must come from merged, schedule-independent stats so the canonical
/// journal stays identical across sequential and parallel execution.
fn stage<T>(tel: &Telemetry, parent: &Span, name: &str, f: impl FnOnce(&Span) -> T) -> T {
    let span = parent.child(name);
    let started_ms = tel.now_ms();
    let out = f(&span);
    if tel.is_enabled() {
        tel.observe_ms(
            &format!("borges_stage_{name}_ms"),
            tel.now_ms().saturating_sub(started_ms),
        );
    }
    out
}

/// Stamps one sharded replay's accounting into the worker-timing
/// ledger: a `<ctx>_shard_union` row per shard (items = bucket edges),
/// one `<ctx>_shard_cross` row (items = cross-range edges), and one
/// `<ctx>_shard_contract` row (items = edges the contraction replayed).
/// The ledger invariant `Σ contract.items ≤ Σ union.items + Σ
/// cross.items` holds because each shard's spanning output is a subset
/// of its bucket — the CI scale-equivalence job asserts it.
///
/// Worker rows only: the canonical trace and the metrics snapshot must
/// stay byte-identical across thread counts (DESIGN.md §8), and the
/// worker ledger is exactly the surface both exclude.
fn record_shard_report(tel: &Telemetry, ctx: &str, report: &ShardReport) {
    if !tel.is_enabled() {
        return;
    }
    for t in &report.shards {
        tel.record_worker(WorkerTiming {
            stage: format!("{ctx}_shard_union"),
            chunk: t.shard as u64,
            items: t.edges as u64,
            started_ms: t.started_ms,
            elapsed_ms: t.elapsed_ms,
        });
    }
    tel.record_worker(WorkerTiming {
        stage: format!("{ctx}_shard_cross"),
        chunk: 0,
        items: report.cross_edges as u64,
        started_ms: report.contraction_started_ms,
        elapsed_ms: 0,
    });
    tel.record_worker(WorkerTiming {
        stage: format!("{ctx}_shard_contract"),
        chunk: 0,
        items: report.contraction_edges as u64,
        started_ms: report.contraction_started_ms,
        elapsed_ms: report.contraction_elapsed_ms,
    });
}

// Span annotations per stage. Every value is a merged funnel number —
// proven schedule-independent by `parallel_pipeline_matches_sequential` —
// never a per-worker observation.

fn annotate_crawl(span: &Span, stats: &ScrapeStats) {
    span.field("entries_with_website", stats.entries_with_website);
    span.field("reachable_urls", stats.reachable_urls);
    span.field("entries_abandoned", stats.entries_abandoned);
}

fn annotate_ner(span: &Span, ner: &NerResult) {
    span.field("llm_calls", ner.stats.llm_calls);
    span.field("extracted_asns", ner.stats.extracted_asns);
}

fn annotate_rr(span: &Span, rr: &RrInference) {
    span.field("groups", rr.groups.len());
    span.field("shared_final_urls", rr.stats.shared_final_urls);
}

fn annotate_favicon(span: &Span, favicon: &FaviconInference) {
    span.field("groups", favicon.groups.len());
    span.field("llm_calls", favicon.stats.llm_calls);
}

/// Knobs for the streaming ingest engine ([`Borges::run_streaming`]).
#[derive(Clone)]
pub struct StreamOptions {
    /// Worker threads in the fetch pool.
    pub workers: usize,
    /// Global cap on fetches started but not yet completed.
    pub max_in_flight: usize,
    /// Per-host admission rate (requests per second of pacing-clock
    /// time); `None` disables rate limiting.
    pub per_host_rps: Option<f64>,
    /// Instantaneous per-host burst allowance for the token buckets.
    pub burst: u32,
    /// Retry policy for the web and LLM boundaries. `None` runs the
    /// bare stack (the streaming twin of [`Borges::run_parallel`]);
    /// `Some` runs the resilient stack (the streaming twin of
    /// [`Borges::run_resilient`]), with per-host breakers at
    /// [`BreakerConfig::standard`].
    pub policy: Option<RetryPolicy>,
    /// Compute parallelism: NER fan-out (bare stack only) and the
    /// compile-time base replay's shard count.
    pub threads: usize,
    /// The pacing clock token buckets read and throttled workers sleep
    /// on. Virtual ([`SimClock`]) by default, so throttled runs are
    /// deterministic and never actually wait; a production deployment
    /// passes [`borges_resilience::SystemClock`]. Pacing affects
    /// wall-clock scheduling only — never canonical outputs.
    pub pacing: Arc<dyn Clock>,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            workers: 8,
            max_in_flight: 8,
            per_host_rps: None,
            burst: 1,
            policy: None,
            threads: 1,
            pacing: Arc::new(SimClock::new()),
        }
    }
}

impl std::fmt::Debug for StreamOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamOptions")
            .field("workers", &self.workers)
            .field("max_in_flight", &self.max_in_flight)
            .field("per_host_rps", &self.per_host_rps)
            .field("burst", &self.burst)
            .field("policy", &self.policy)
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

/// One crawl entry prepared for the streaming scheduler: the parse and
/// host-key work is done once up front so the admission gate and the
/// per-key FIFO discipline never re-parse under the scheduler lock.
struct StreamEntry<'a> {
    asn: Asn,
    raw: &'a str,
    /// FIFO-serialization key: the host hash for fetching entries
    /// (matching breaker/rate-limit keying), a raw-string hash for
    /// entries that never reach the network.
    key: u64,
    /// The host a fetch would hit; `None` for empty/invalid websites,
    /// which are never rate-limited.
    host: Option<String>,
}

fn stream_entries(pdb: &PdbSnapshot) -> Vec<StreamEntry<'_>> {
    pdb.nets()
        .map(|n| {
            let raw = n.website.as_str();
            let host = raw
                .trim()
                .parse::<Url>()
                .ok()
                .map(|u| u.host().as_str().to_string());
            let key = match &host {
                Some(h) => stable_hash(h.as_bytes()),
                None => stable_hash(raw.as_bytes()),
            };
            StreamEntry {
                asn: n.asn,
                raw,
                key,
                host,
            }
        })
        .collect()
}

/// Stamps one streaming run's scheduler accounting into the
/// worker-timing ledger (stage names from [`borges_telemetry::ingest`]).
/// Ledger rows only — the canonical trace and metrics snapshot must
/// stay byte-identical to the staged run, and the worker ledger is
/// exactly the schedule-variant surface both exclude (DESIGN.md §8).
fn record_ingest_ledger(tel: &Telemetry, ledger: &StreamLedger) {
    if !tel.is_enabled() {
        return;
    }
    for (worker, items) in ledger.per_worker.iter().enumerate() {
        tel.record_worker(WorkerTiming {
            stage: borges_telemetry::ingest::WORKER_STAGE.to_string(),
            chunk: worker as u64,
            items: *items,
            started_ms: 0,
            elapsed_ms: 0,
        });
    }
    tel.record_worker(WorkerTiming {
        stage: borges_telemetry::ingest::IN_FLIGHT_STAGE.to_string(),
        chunk: 0,
        items: ledger.in_flight_high_water as u64,
        started_ms: 0,
        elapsed_ms: 0,
    });
    tel.record_worker(WorkerTiming {
        stage: borges_telemetry::ingest::THROTTLE_STAGE.to_string(),
        chunk: 0,
        items: ledger.throttle_waits,
        started_ms: 0,
        elapsed_ms: ledger.throttle_wait_ms,
    });
    tel.record_worker(WorkerTiming {
        stage: borges_telemetry::ingest::REASSEMBLY_STAGE.to_string(),
        chunk: 0,
        items: ledger.reassembly_high_water as u64,
        started_ms: 0,
        elapsed_ms: 0,
    });
}

impl Borges {
    /// Runs every stage: crawls the web through `web_client`, extracts
    /// siblings with `model`, and caches all merge evidence.
    pub fn run<C: WebClient>(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        web_client: C,
        model: &dyn ChatModel,
    ) -> Self {
        Self::run_traced(whois, pdb, web_client, model, &Telemetry::disabled())
    }

    /// Like [`Borges::run`], recording a span per stage, stage-duration
    /// histograms, and the stage funnels (as counters) into `tel`.
    ///
    /// Everything traced here is derived from merged, order-canonical
    /// stats, so under a [`SimClock`](borges_resilience::SimClock) the
    /// canonical journal and the metrics snapshot are identical to what
    /// [`Borges::run_parallel_traced`] emits — the determinism contract
    /// of DESIGN.md §8, pinned by `tests/telemetry.rs`.
    pub fn run_traced<C: WebClient>(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        web_client: C,
        model: &dyn ChatModel,
        tel: &Telemetry,
    ) -> Self {
        let root = tel.span("run");
        let scraper = Scraper::new(web_client);
        let report = stage(tel, &root, "crawl", |span| {
            let report = scraper.crawl(pdb.nets().map(|n| (n.asn, n.website.as_str())));
            annotate_crawl(span, &report.stats);
            report
        });
        let web_cache = scraper.cache_stats();
        Self::extract_and_assemble(
            whois,
            pdb,
            &report,
            model,
            NerConfig::default(),
            web_cache,
            1,
            tel,
            &root,
        )
    }

    /// Like [`Borges::run`], fanning the crawl and the LLM calls out over
    /// `threads` worker threads. Produces results identical to the
    /// sequential run (entries are independent; all aggregation is
    /// key-canonical) — only wall-clock time changes.
    pub fn run_parallel<C: WebClient + Sync>(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        web_client: C,
        model: &(dyn ChatModel + Sync),
        threads: usize,
    ) -> Self {
        Self::run_parallel_traced(
            whois,
            pdb,
            web_client,
            model,
            threads,
            &Telemetry::disabled(),
        )
    }

    /// Like [`Borges::run_parallel`], recording into `tel`. Emits the
    /// same logical spans, span fields, and metrics as
    /// [`Borges::run_traced`] — worker scheduling shows up only in
    /// runtime spans and [`WorkerTiming`] rows, which canonicalization
    /// and the metrics snapshot exclude by design.
    pub fn run_parallel_traced<C: WebClient + Sync>(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        web_client: C,
        model: &(dyn ChatModel + Sync),
        threads: usize,
        tel: &Telemetry,
    ) -> Self {
        let root = tel.span("run");
        let scraper = Scraper::new(web_client);
        let report = stage(tel, &root, "crawl", |span| {
            let entries: Vec<(Asn, &str)> =
                pdb.nets().map(|n| (n.asn, n.website.as_str())).collect();
            let report = scraper.crawl_parallel(entries, threads);
            annotate_crawl(span, &report.stats);
            report
        });
        let web_cache = scraper.cache_stats();
        let ner = stage(tel, &root, "ner", |span| {
            let ner = crate::ner::extract_parallel(pdb, model, NerConfig::default(), threads);
            annotate_ner(span, &ner);
            ner
        });
        Self::assemble(
            whois, pdb, &report, ner, model, web_cache, threads, tel, &root,
        )
    }

    /// Like [`Borges::run`], with every boundary wrapped in the
    /// resilience stack: the web client behind a
    /// [`RetryingWebClient`] with per-host circuit breakers, and the chat
    /// model behind one [`RetryingModel`] per LLM stage (NER and the
    /// favicon classifier get separate retry/breaker state, so a meltdown
    /// in one stage cannot poison the other's budget accounting).
    ///
    /// The retry/breaker spend of each boundary is stamped into the
    /// matching stats block ([`ScrapeStats::resilience`],
    /// [`NerStats::resilience`](crate::ner::NerStats),
    /// [`FaviconStats::resilience`](crate::web::favicon::FaviconStats)),
    /// and [`Borges::coverage`] reports what survived.
    ///
    /// Determinism contract: over a fault-free (or recoverable-within-
    /// budget) world this produces a mapping **bit-identical** to
    /// [`Borges::run`] over the bare stack — retries erase recoverable
    /// faults entirely. When faults are not recoverable, the run still
    /// completes: abandoned work is counted, the mapping is built from
    /// the evidence that survived, and every abandoned record shows up in
    /// the coverage report.
    pub fn run_resilient<C: WebClient>(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        web_client: C,
        model: &dyn ChatModel,
        policy: RetryPolicy,
    ) -> Self {
        Self::run_resilient_traced(
            whois,
            pdb,
            web_client,
            model,
            policy,
            &Telemetry::disabled(),
        )
    }

    /// Like [`Borges::run_resilient`], recording into `tel`. On top of
    /// the stage spans and funnels, the retry wrappers themselves emit
    /// per-boundary attempt/recovery/abandonment counters, call-duration
    /// histograms, and [`BreakerEvent`]s — and they share the telemetry
    /// clock, so virtual backoff spend is visible in stage durations.
    pub fn run_resilient_traced<C: WebClient>(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        web_client: C,
        model: &dyn ChatModel,
        policy: RetryPolicy,
        tel: &Telemetry,
    ) -> Self {
        let root = tel.span("run");
        let breaker = BreakerConfig::standard();
        let web = RetryingWebClient::new(web_client, policy)
            .with_breakers(breaker)
            .with_clock(tel.clock())
            .with_telemetry(tel.clone());
        let scraper = Scraper::new(&web);
        let report = stage(tel, &root, "crawl", |span| {
            let mut report = scraper.crawl(pdb.nets().map(|n| (n.asn, n.website.as_str())));
            report.stats.resilience = web.stats();
            annotate_crawl(span, &report.stats);
            report
        });
        let web_cache = scraper.cache_stats();

        let ner = stage(tel, &root, "ner", |span| {
            let ner_model = RetryingModel::new(model, policy)
                .with_breaker(breaker)
                .with_clock(tel.clock())
                .with_telemetry(tel.clone(), "ner");
            let mut ner = extract(pdb, &ner_model, NerConfig::default());
            ner.stats.resilience = ner_model.stats();
            annotate_ner(span, &ner);
            ner
        });

        let rr = stage(tel, &root, "rr", |span| {
            let rr = rr_inference(&report);
            annotate_rr(span, &rr);
            rr
        });
        let favicon = stage(tel, &root, "favicon", |span| {
            let favicon_model = RetryingModel::new(model, policy)
                .with_breaker(breaker)
                .with_clock(tel.clock())
                .with_telemetry(tel.clone(), "favicon");
            let mut favicon = favicon_inference(&report, &favicon_model);
            favicon.stats.resilience = favicon_model.stats();
            annotate_favicon(span, &favicon);
            favicon
        });

        Self::finish(
            whois, pdb, &report, ner, rr, favicon, web_cache, 1, tel, &root,
        )
    }

    /// Like [`Borges::run`] but with a pre-computed scrape report and an
    /// explicit NER configuration (used by ablations and benches to avoid
    /// re-crawling).
    pub fn from_scrape(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        report: &ScrapeReport,
        model: &dyn ChatModel,
        ner_config: NerConfig,
    ) -> Self {
        Self::from_scrape_traced(
            whois,
            pdb,
            report,
            model,
            ner_config,
            &Telemetry::disabled(),
        )
    }

    /// Like [`Borges::from_scrape`], but with the evidence compilation's
    /// OID_W base replay sharded over `threads` workers
    /// ([`CompiledEvidence::build`]). LLM extraction stays sequential —
    /// this entry point exists for compile-bound workloads (the compile
    /// bench, large-world CLI runs) where the crawl and LLM stages are
    /// pre-computed or memoized. Byte-identical to
    /// [`Borges::from_scrape`] at every thread count.
    pub fn from_scrape_parallel(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        report: &ScrapeReport,
        model: &dyn ChatModel,
        ner_config: NerConfig,
        threads: usize,
    ) -> Self {
        Self::from_scrape_parallel_traced(
            whois,
            pdb,
            report,
            model,
            ner_config,
            threads,
            &Telemetry::disabled(),
        )
    }

    /// Like [`Borges::from_scrape`], recording into `tel`. There is no
    /// crawl stage (the report is pre-computed), so the trace has no
    /// `run/crawl` span and the redirect-cache ledger row reads zero.
    pub fn from_scrape_traced(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        report: &ScrapeReport,
        model: &dyn ChatModel,
        ner_config: NerConfig,
        tel: &Telemetry,
    ) -> Self {
        Self::from_scrape_parallel_traced(whois, pdb, report, model, ner_config, 1, tel)
    }

    /// [`Borges::from_scrape_parallel`] recording into `tel`.
    pub fn from_scrape_parallel_traced(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        report: &ScrapeReport,
        model: &dyn ChatModel,
        ner_config: NerConfig,
        threads: usize,
        tel: &Telemetry,
    ) -> Self {
        let root = tel.span("run");
        Self::extract_and_assemble(
            whois,
            pdb,
            report,
            model,
            ner_config,
            CacheStats::default(),
            threads,
            tel,
            &root,
        )
    }

    /// Streaming ingest: [`Borges::run`] with the crawl overlapped
    /// against NER extraction and registry-side evidence compilation
    /// (DESIGN.md §14). A bounded-concurrency scheduler
    /// ([`borges_parallel::stream_indexed`]) drives `opts.workers`
    /// fetch workers under a global `opts.max_in_flight` cap and
    /// optional per-host token-bucket rate limits, serializing fetches
    /// per host in canonical input order; completions flow through a
    /// key-canonical reassembly buffer into an incremental
    /// [`ReportAssembler`] while later fetches are still in flight.
    ///
    /// Determinism contract: the mapping, canonical trace, and metrics
    /// snapshot are **byte-identical** to the staged run
    /// ([`Borges::run_parallel`] bare, [`Borges::run_resilient`] when
    /// `opts.policy` is set) at every worker count, in-flight cap, and
    /// rate limit — including under recoverable transport faults.
    /// Scheduler concurrency shows up only in [`WorkerTiming`] ledger
    /// rows (stage names from [`borges_telemetry::ingest`]), the one
    /// surface the contract excludes.
    pub fn run_streaming<C: WebClient + Sync>(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        web_client: C,
        model: &(dyn ChatModel + Sync),
        opts: &StreamOptions,
    ) -> Self {
        Self::run_streaming_traced(whois, pdb, web_client, model, opts, &Telemetry::disabled())
    }

    /// Like [`Borges::run_streaming`], recording into `tel`.
    ///
    /// Two phases keep the canonical surfaces schedule-independent.
    /// **Phase A (overlap)** runs the crawl scheduler concurrently with
    /// one compute thread doing NER and [`StreamPrecompiled::build`];
    /// nothing touches the telemetry clock or opens spans — resilient
    /// fetches spend their backoff on per-call private clocks whose
    /// total is accumulated. **Phase B (replay)** opens the `run` span
    /// at virtual t=0 and replays each stage in staged order, sleeping
    /// the accumulated virtual backoff inside the matching stage span,
    /// so timestamps and stage-duration histograms land exactly where
    /// the staged run puts them.
    pub fn run_streaming_traced<C: WebClient + Sync>(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        web_client: C,
        model: &(dyn ChatModel + Sync),
        opts: &StreamOptions,
        tel: &Telemetry,
    ) -> Self {
        let fetcher = match opts.policy {
            Some(policy) => StreamingWebClient::resilient(web_client, policy)
                .with_breakers(BreakerConfig::standard())
                .with_telemetry(tel.clone()),
            None => StreamingWebClient::bare(web_client),
        };
        let scraper = Scraper::new(&fetcher);
        let entries = stream_entries(pdb);
        let limiter = opts
            .per_host_rps
            .map(|rps| RateLimiterRegistry::new(rps, opts.burst));
        let config = StreamConfig {
            workers: opts.workers,
            max_in_flight: opts.max_in_flight,
        };

        let mut assembler = ReportAssembler::new();
        let (ledger, compute_out) = std::thread::scope(|scope| {
            let compute = scope.spawn(|| {
                let pre = StreamPrecompiled::build(whois, pdb, opts.threads);
                let ner = Self::stream_ner(pdb, model, NerConfig::default(), opts, tel);
                (pre, ner)
            });
            let ledger = stream_indexed(
                &entries,
                &config,
                |e| e.key,
                |_key, e| match (&limiter, &e.host) {
                    (Some(registry), Some(host)) => {
                        registry.limiter(host).try_acquire(opts.pacing.now_ms())
                    }
                    _ => Ok(()),
                },
                |ms| opts.pacing.sleep_ms(ms),
                |_, e| scraper.resolve(e.raw),
                |index, resolution| assembler.push(entries[index].asn, resolution),
            );
            let compute_out = match compute.join() {
                Ok(out) => out,
                Err(panic) => std::panic::resume_unwind(panic),
            };
            (ledger, compute_out)
        });
        let (pre, (ner, ner_backoff_ms)) = compute_out;
        let mut report = assembler.finish();
        if opts.policy.is_some() {
            report.stats.resilience = fetcher.stats();
        }
        let web_cache = scraper.cache_stats();

        let root = tel.span("run");
        stage(tel, &root, "crawl", |span| {
            tel.clock().sleep_ms(fetcher.backoff_total_ms());
            annotate_crawl(span, &report.stats);
        });
        record_ingest_ledger(tel, &ledger);
        Self::assemble_streaming(
            whois,
            pdb,
            &report,
            ner,
            ner_backoff_ms,
            model,
            opts,
            web_cache,
            pre,
            tel,
            &root,
        )
    }

    /// [`Borges::from_scrape`]'s streaming twin: NER runs on a compute
    /// thread while the main thread builds the registry-side evidence,
    /// then the canonical stages replay. Byte-identical to
    /// [`Borges::from_scrape`] /
    /// [`Borges::from_scrape_parallel`] over the same inputs.
    pub fn from_scrape_streaming(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        report: &ScrapeReport,
        model: &(dyn ChatModel + Sync),
        ner_config: NerConfig,
        opts: &StreamOptions,
    ) -> Self {
        Self::from_scrape_streaming_traced(
            whois,
            pdb,
            report,
            model,
            ner_config,
            opts,
            &Telemetry::disabled(),
        )
    }

    /// Like [`Borges::from_scrape_streaming`], recording into `tel`.
    /// As with [`Borges::from_scrape_traced`] there is no crawl stage,
    /// so the trace has no `run/crawl` span and the redirect-cache
    /// ledger row reads zero.
    pub fn from_scrape_streaming_traced(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        report: &ScrapeReport,
        model: &(dyn ChatModel + Sync),
        ner_config: NerConfig,
        opts: &StreamOptions,
        tel: &Telemetry,
    ) -> Self {
        let ((ner, ner_backoff_ms), pre) = std::thread::scope(|scope| {
            let compute = scope.spawn(|| Self::stream_ner(pdb, model, ner_config, opts, tel));
            let pre = StreamPrecompiled::build(whois, pdb, opts.threads);
            match compute.join() {
                Ok(ner) => (ner, pre),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        });
        let root = tel.span("run");
        Self::assemble_streaming(
            whois,
            pdb,
            report,
            ner,
            ner_backoff_ms,
            model,
            opts,
            CacheStats::default(),
            pre,
            tel,
            &root,
        )
    }

    /// Phase-A NER for the streaming constructors. Resilient runs wrap
    /// the model in a [`RetryingModel`] on a *private* [`SimClock`] —
    /// the telemetry clock must not move before phase B replays the
    /// crawl — and return the virtual backoff spend for the `ner` stage
    /// replay. Backoff schedules depend only on (attempt, key), never on
    /// absolute time, so the spend equals what the staged run's shared
    /// clock would have accumulated. Bare runs fan out over
    /// `opts.threads` with zero virtual spend.
    fn stream_ner(
        pdb: &PdbSnapshot,
        model: &(dyn ChatModel + Sync),
        ner_config: NerConfig,
        opts: &StreamOptions,
        tel: &Telemetry,
    ) -> (NerResult, u64) {
        match opts.policy {
            Some(policy) => {
                let clock = Arc::new(SimClock::new());
                let ner_model = RetryingModel::new(model, policy)
                    .with_breaker(BreakerConfig::standard())
                    .with_clock(clock.clone())
                    .with_telemetry(tel.clone(), "ner");
                let mut ner = extract(pdb, &ner_model, ner_config);
                ner.stats.resilience = ner_model.stats();
                (ner, clock.now_ms())
            }
            None => (
                crate::ner::extract_parallel(pdb, model, ner_config, opts.threads),
                0,
            ),
        }
    }

    /// Phase-B tail of the streaming constructors: replays the `ner`
    /// stage (virtual backoff + annotations), runs the pure `rr`
    /// inference, runs the `favicon` stage *live* on the telemetry clock
    /// (it is sequential and starts at the same virtual instant as in
    /// the staged run, so spans, metrics, and breaker events land
    /// identically), then finishes with the precompiled evidence.
    #[allow(clippy::too_many_arguments)]
    fn assemble_streaming(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        report: &ScrapeReport,
        ner: NerResult,
        ner_backoff_ms: u64,
        model: &(dyn ChatModel + Sync),
        opts: &StreamOptions,
        web_cache: CacheStats,
        pre: StreamPrecompiled,
        tel: &Telemetry,
        root: &Span,
    ) -> Self {
        let ner = stage(tel, root, "ner", |span| {
            tel.clock().sleep_ms(ner_backoff_ms);
            annotate_ner(span, &ner);
            ner
        });
        let rr = stage(tel, root, "rr", |span| {
            let rr = rr_inference(report);
            annotate_rr(span, &rr);
            rr
        });
        let favicon = stage(tel, root, "favicon", |span| {
            let favicon = match opts.policy {
                Some(policy) => {
                    let favicon_model = RetryingModel::new(model, policy)
                        .with_breaker(BreakerConfig::standard())
                        .with_clock(tel.clock())
                        .with_telemetry(tel.clone(), "favicon");
                    let mut favicon = favicon_inference(report, &favicon_model);
                    favicon.stats.resilience = favicon_model.stats();
                    favicon
                }
                None => favicon_inference(report, model),
            };
            annotate_favicon(span, &favicon);
            favicon
        });
        Self::finish_streaming(
            whois,
            pdb,
            report,
            ner,
            rr,
            favicon,
            web_cache,
            pre,
            opts.threads,
            tel,
            root,
        )
    }

    /// Shared tail of the streaming constructors — the streaming
    /// analogue of [`Borges::finish`], consuming the
    /// [`StreamPrecompiled`] built during the overlap window instead of
    /// re-deriving the universe and registry evidence. Span fields and
    /// metrics are identical to the staged tail because every value
    /// comes from the same derivations.
    #[allow(clippy::too_many_arguments)]
    fn finish_streaming(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        report: &ScrapeReport,
        ner: NerResult,
        rr: RrInference,
        favicon: FaviconInference,
        web_cache: CacheStats,
        pre: StreamPrecompiled,
        threads: usize,
        tel: &Telemetry,
        root: &Span,
    ) -> Self {
        let StreamPrecompiled {
            interner,
            oid_w,
            oid_p,
            feed,
            oid_w_groups,
            oid_p_groups,
        } = pre;
        let fingerprints = SourceFingerprints::capture(whois, pdb, report);
        let compiled = stage(tel, root, "compile", |span| {
            let compiled = CompiledEvidence::compile_from_stream(
                interner, oid_w, oid_p, feed, &ner, &rr, &favicon, threads, tel,
            );
            span.field("asns", compiled.interner.live_len());
            span.field("ner_links", segment_edge_count(&compiled.na));
            compiled
        });

        let borges = Borges {
            compiled,
            oid_w_groups,
            oid_p_groups,
            ner,
            rr,
            favicon,
            scrape_stats: report.stats.clone(),
            web_cache,
            fingerprints,
            delta: None,
            world_epoch: 0,
        };
        borges.stamp_metrics(tel);
        borges
    }

    /// Shared tail of the sequential bare-stack constructors: runs NER,
    /// then hands off to [`Borges::assemble`].
    #[allow(clippy::too_many_arguments)]
    fn extract_and_assemble(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        report: &ScrapeReport,
        model: &dyn ChatModel,
        ner_config: NerConfig,
        web_cache: CacheStats,
        threads: usize,
        tel: &Telemetry,
        root: &Span,
    ) -> Self {
        let ner = stage(tel, root, "ner", |span| {
            let ner = extract(pdb, model, ner_config);
            annotate_ner(span, &ner);
            ner
        });
        Self::assemble(
            whois, pdb, report, ner, model, web_cache, threads, tel, root,
        )
    }

    /// Shared tail of the bare-stack constructors: runs the web
    /// inferences over `model` directly, then hands off to
    /// [`Borges::finish`].
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        report: &ScrapeReport,
        ner: NerResult,
        model: &dyn ChatModel,
        web_cache: CacheStats,
        threads: usize,
        tel: &Telemetry,
        root: &Span,
    ) -> Self {
        let rr = stage(tel, root, "rr", |span| {
            let rr = rr_inference(report);
            annotate_rr(span, &rr);
            rr
        });
        let favicon = stage(tel, root, "favicon", |span| {
            let favicon = favicon_inference(report, model);
            annotate_favicon(span, &favicon);
            favicon
        });
        Self::finish(
            whois, pdb, report, ner, rr, favicon, web_cache, threads, tel, root,
        )
    }

    /// Shared tail of every constructor: fixes the universe and compiles
    /// all (pre-computed) evidence to dense edge lists. Takes the web
    /// inferences ready-made so callers can run them behind whatever
    /// client/model stack they choose (see [`Borges::run_resilient`]).
    /// Also where every stage funnel is stamped into the metrics
    /// registry — from the merged stats, never per item inside workers,
    /// so sequential and parallel runs emit identical snapshots.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        report: &ScrapeReport,
        ner: NerResult,
        rr: RrInference,
        favicon: FaviconInference,
        web_cache: CacheStats,
        threads: usize,
        tel: &Telemetry,
        root: &Span,
    ) -> Self {
        let mut universe: BTreeSet<Asn> = whois.all_asns().collect();
        // PeeringDB networks missing from WHOIS (rare, but real dumps have
        // them) still belong to the mapping universe.
        universe.extend(pdb.nets().map(|n| n.asn));

        let oid_w_groups = orgkeys::oid_w_groups(whois);
        let oid_p_groups = orgkeys::oid_p_groups(pdb);
        let fingerprints = SourceFingerprints::capture(whois, pdb, report);
        let compiled = stage(tel, root, "compile", |span| {
            let compiled =
                CompiledEvidence::compile(universe, whois, pdb, &ner, &rr, &favicon, threads, tel);
            span.field("asns", compiled.interner.live_len());
            span.field("ner_links", segment_edge_count(&compiled.na));
            compiled
        });

        let borges = Borges {
            compiled,
            oid_w_groups,
            oid_p_groups,
            ner,
            rr,
            favicon,
            scrape_stats: report.stats.clone(),
            web_cache,
            fingerprints,
            delta: None,
            world_epoch: 0,
        };
        borges.stamp_metrics(tel);
        borges
    }

    /// Incrementally re-maps snapshot T+1 against persisted snapshot-T
    /// state: LLM stages replay memoized replies for records whose text
    /// did not change, and evidence compilation reuses every edge
    /// segment whose member fingerprint is untouched
    /// ([`CompiledEvidence`]'s delta path). The keystone contract — the
    /// result is **byte-identical** to [`Borges::from_scrape`] over the
    /// same T+1 inputs — holds because both paths run the same
    /// derivation code and only skip work proven unchanged.
    ///
    /// `report` is the *re-crawled* T+1 web observation: crawling is
    /// cheap next to LLM calls and the web can drift even when the
    /// registries did not, so it is never carried over from T.
    pub fn remap(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        report: &ScrapeReport,
        model: &dyn ChatModel,
        ner_config: NerConfig,
        state: &SnapshotState,
    ) -> Self {
        Self::remap_traced(
            whois,
            pdb,
            report,
            model,
            ner_config,
            state,
            &Telemetry::disabled(),
        )
    }

    /// Like [`Borges::remap`], with the rebuilt OID_W base closure
    /// replayed sharded over `threads` workers — the `--threads` flag's
    /// effect on the incremental path. Byte-identical to
    /// [`Borges::remap`] at every thread count.
    pub fn remap_parallel(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        report: &ScrapeReport,
        model: &dyn ChatModel,
        ner_config: NerConfig,
        state: &SnapshotState,
        threads: usize,
    ) -> Self {
        Self::remap_parallel_traced(
            whois,
            pdb,
            report,
            model,
            ner_config,
            state,
            threads,
            &Telemetry::disabled(),
        )
    }

    /// Like [`Borges::remap`], recording into `tel`: a `remap` root span
    /// with `ner`/`rr`/`favicon` stage children plus an `apply` stage
    /// for the delta compilation, the usual funnel counters, and
    /// `borges_delta_*` counters for the reuse accounting.
    pub fn remap_traced(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        report: &ScrapeReport,
        model: &dyn ChatModel,
        ner_config: NerConfig,
        state: &SnapshotState,
        tel: &Telemetry,
    ) -> Self {
        Self::remap_parallel_traced(whois, pdb, report, model, ner_config, state, 1, tel)
    }

    /// [`Borges::remap_parallel`] recording into `tel`.
    #[allow(clippy::too_many_arguments)]
    pub fn remap_parallel_traced(
        whois: &WhoisRegistry,
        pdb: &PdbSnapshot,
        report: &ScrapeReport,
        model: &dyn ChatModel,
        ner_config: NerConfig,
        state: &SnapshotState,
        threads: usize,
        tel: &Telemetry,
    ) -> Self {
        let root = tel.span("remap");
        let ner_memo = state.ner_memo_map();
        let ner = stage(tel, &root, "ner", |span| {
            let ner = extract_with_memo(pdb, model, ner_config, &ner_memo);
            annotate_ner(span, &ner);
            span.field("memo_hits", ner.memo_hits);
            ner
        });
        let rr = stage(tel, &root, "rr", |span| {
            let rr = rr_inference(report);
            annotate_rr(span, &rr);
            rr
        });
        let favicon_memo = state.favicon_memo_map();
        let favicon = stage(tel, &root, "favicon", |span| {
            let favicon = favicon_inference_memo(report, model, true, &favicon_memo);
            annotate_favicon(span, &favicon);
            span.field("memo_hits", favicon.memo_hits);
            favicon
        });

        let mut universe: BTreeSet<Asn> = whois.all_asns().collect();
        universe.extend(pdb.nets().map(|n| n.asn));
        let oid_w_groups = orgkeys::oid_w_groups(whois);
        let oid_p_groups = orgkeys::oid_p_groups(pdb);
        let fingerprints = SourceFingerprints::capture(whois, pdb, report);

        let (compiled, mut dstats) = stage(tel, &root, "apply", |span| {
            let (compiled, mut dstats) = CompiledEvidence::apply_delta(
                state, &universe, whois, pdb, &ner, &rr, &favicon, threads, tel,
            );
            dstats.records = SnapshotDelta::compute(&state.fingerprints(), &fingerprints);
            span.field("asns", compiled.interner.live_len());
            span.field("records_dirty", dstats.records.dirty());
            span.field(
                "segments_retained",
                dstats
                    .edge_rows()
                    .iter()
                    .map(|(_, d)| d.segments_retained)
                    .sum::<usize>(),
            );
            (compiled, dstats)
        });
        dstats.ner_reused = ner.memo_hits;
        dstats.ner_recomputed = ner.stats.llm_calls;
        dstats.favicon_reused = favicon.memo_hits;
        dstats.favicon_recomputed = favicon.stats.llm_calls;

        let borges = Borges {
            compiled,
            oid_w_groups,
            oid_p_groups,
            ner,
            rr,
            favicon,
            scrape_stats: report.stats.clone(),
            web_cache: CacheStats::default(),
            fingerprints,
            delta: Some(dstats),
            world_epoch: 0,
        };
        borges.stamp_metrics(tel);
        borges.stamp_delta_metrics(tel);
        borges
    }

    /// The persistable compiled state of this run: interner slots, edge
    /// segments, source fingerprints, and the LLM reply memos — exactly
    /// what a later [`Borges::remap`] needs. Captured on *every* run
    /// (full or incremental), so remaps chain: T → T+1 → T+2.
    pub fn snapshot_state(&self) -> SnapshotState {
        SnapshotState::build(
            &self.compiled.interner,
            &self.compiled.oid_w,
            &self.compiled.oid_p,
            &self.compiled.na,
            &self.compiled.rr,
            &self.compiled.favicons,
            &self.fingerprints,
            &self.ner,
            &self.favicon,
        )
    }

    /// Captures this pipeline as a persistable [`CompiledWorld`]: the
    /// [`Borges::snapshot_state`] plus the [`ServingExtras`] a server
    /// reads at request time. Lossless up to the two audit-only fields
    /// `crate::world` documents (favicon decision records, memo-hit
    /// counters); [`Borges::from_world`] inverts it.
    pub fn to_world(&self) -> CompiledWorld {
        fn wire_groups(groups: &[Vec<Asn>]) -> Vec<Vec<u32>> {
            groups
                .iter()
                .map(|g| g.iter().map(|a| a.value()).collect())
                .collect()
        }
        CompiledWorld {
            state: self.snapshot_state(),
            epoch: self.world_epoch,
            extras: ServingExtras {
                oid_w_groups: wire_groups(&self.oid_w_groups),
                oid_p_groups: wire_groups(&self.oid_p_groups),
                ner_entries: self
                    .ner
                    .per_entry
                    .iter()
                    .map(|(asn, siblings)| NerEntryRecord {
                        asn: asn.value(),
                        siblings: siblings.iter().map(|a| a.value()).collect(),
                    })
                    .collect(),
                ner_stats: (&self.ner.stats).into(),
                rr_groups: self
                    .rr
                    .groups
                    .iter()
                    .zip(&self.rr.final_urls)
                    .map(|(group, url)| RrGroupRecord {
                        final_url: url.clone(),
                        members: group.iter().map(|a| a.value()).collect(),
                    })
                    .collect(),
                rr_stats: (&self.rr.stats).into(),
                favicon_groups: self
                    .favicon
                    .groups
                    .iter()
                    .zip(&self.favicon.group_favicons)
                    .map(|(group, hash)| FaviconGroupRecord {
                        favicon: hash.raw(),
                        members: group.iter().map(|a| a.value()).collect(),
                    })
                    .collect(),
                favicon_stats: (&self.favicon.stats).into(),
                scrape_stats: (&self.scrape_stats).into(),
                web_cache: self.web_cache,
            },
        }
    }

    /// Rebuilds a serving pipeline from a persisted [`CompiledWorld`]
    /// without re-deriving any evidence: no crawl, no LLM call, no
    /// group derivation — only the cheap OID_W base-closure replay from
    /// the stored segment edges (the same replay `remap` always does,
    /// sharded over `threads` workers when `threads > 1`,
    /// byte-identical either way).
    ///
    /// Validates before trusting ([`CompiledWorld::validate`]) and
    /// never panics on a decoded-but-insane world: duplicate interner
    /// slots, out-of-range edge ids, or a wrong inner schema come back
    /// as `Err`. The keystone contract: the returned pipeline produces
    /// byte-identical mapfiles, snapshot states, and HTTP responses to
    /// the freshly compiled pipeline [`Borges::to_world`] captured.
    pub fn from_world(world: &CompiledWorld, threads: usize) -> Result<Self, String> {
        world.validate()?;
        let state = &world.state;
        let extras = &world.extras;
        // Safe after validate(): slots are unique, so the rebuild's
        // duplicate assertion cannot fire.
        let interner = AsnInterner::from_slots(state.slot_pairs());

        // Segments are reconstructed straight from the persisted record
        // vectors, preserving compile order exactly — re-persisting a
        // loaded world must serialize byte-identically.
        fn segments<K>(
            records: &[crate::delta::SegmentRecord],
            parse: impl Fn(&str) -> Option<K>,
        ) -> Result<Vec<EdgeSegment<K>>, String> {
            records
                .iter()
                .map(|rec| {
                    let key = parse(&rec.key)
                        .ok_or_else(|| format!("unparseable segment key {:?}", rec.key))?;
                    Ok(EdgeSegment {
                        key,
                        fp: rec.fp,
                        edges: rec.edges.iter().map(|e| (e.a, e.b)).collect(),
                    })
                })
                .collect()
        }
        let oid_w = segments(&state.oid_w, |k| Some(k.to_string()))?;
        let oid_p = segments(&state.oid_p, |k| k.parse().ok())?;
        let na = segments(&state.na, |k| k.parse().ok())?;
        let rr_segments = segments(&state.rr, |k| Some(k.to_string()))?;
        let favicons = segments(&state.favicons, |k| k.parse().ok())?;

        let mut base = DenseUnionFind::new(interner.len());
        if threads > 1 {
            let lists: Vec<&[(u32, u32)]> = oid_w.iter().map(|seg| seg.edges.as_slice()).collect();
            base.union_edge_lists_sharded(&lists, threads, || 0);
        } else {
            for seg in &oid_w {
                base.union_edges(&seg.edges);
            }
        }

        fn live_groups(groups: &[Vec<u32>]) -> Vec<Vec<Asn>> {
            groups
                .iter()
                .map(|g| g.iter().map(|&n| Asn::new(n)).collect())
                .collect()
        }
        let ner = NerResult {
            per_entry: extras
                .ner_entries
                .iter()
                .map(|rec| {
                    (
                        Asn::new(rec.asn),
                        rec.siblings.iter().map(|&s| Asn::new(s)).collect(),
                    )
                })
                .collect(),
            memo: state.ner_memo_map(),
            memo_hits: 0,
            stats: (&extras.ner_stats).into(),
        };
        let rr = RrInference {
            groups: extras
                .rr_groups
                .iter()
                .map(|rec| rec.members.iter().map(|&n| Asn::new(n)).collect())
                .collect(),
            final_urls: extras
                .rr_groups
                .iter()
                .map(|rec| rec.final_url.clone())
                .collect(),
            stats: (&extras.rr_stats).into(),
        };
        let favicon = FaviconInference {
            groups: extras
                .favicon_groups
                .iter()
                .map(|rec| rec.members.iter().map(|&n| Asn::new(n)).collect())
                .collect(),
            group_favicons: extras
                .favicon_groups
                .iter()
                .map(|rec| borges_types::FaviconHash::from_raw(rec.favicon))
                .collect(),
            decisions: Vec::new(),
            memo: state.favicon_memo_map(),
            memo_hits: 0,
            stats: (&extras.favicon_stats).into(),
        };

        Ok(Borges {
            fingerprints: state.fingerprints(),
            compiled: CompiledEvidence {
                interner,
                base,
                oid_w,
                oid_p,
                na,
                rr: rr_segments,
                favicons,
            },
            oid_w_groups: live_groups(&extras.oid_w_groups),
            oid_p_groups: live_groups(&extras.oid_p_groups),
            ner,
            rr,
            favicon,
            scrape_stats: (&extras.scrape_stats).into(),
            web_cache: extras.web_cache,
            delta: None,
            world_epoch: world.epoch,
        })
    }

    /// The timeline epoch this world was published at; `0` if never
    /// published.
    pub fn world_epoch(&self) -> u64 {
        self.world_epoch
    }

    /// Stamps the timeline epoch. Called by the timeline layer *before*
    /// the artifact is encoded, so the epoch participates in the
    /// content address and survives [`Borges::from_world`].
    pub fn set_world_epoch(&mut self, epoch: u64) {
        self.world_epoch = epoch;
    }

    /// Stamps the incremental-run reuse accounting as
    /// `borges_delta_*` counters.
    fn stamp_delta_metrics(&self, tel: &Telemetry) {
        let (Some(d), true) = (&self.delta, tel.is_enabled()) else {
            return;
        };
        let c = |name: &str, v: usize| tel.counter(name, v as u64);
        c("borges_delta_records_dirty_total", d.records.dirty());
        c("borges_delta_asns_retained_total", d.asns_retained);
        c("borges_delta_asns_added_total", d.asns_added);
        c("borges_delta_asns_retired_total", d.asns_retired);
        let (mut seg_ret, mut seg_red, mut edge_ret, mut edge_red) = (0, 0, 0, 0);
        for (_, s) in d.edge_rows() {
            seg_ret += s.segments_retained;
            seg_red += s.segments_rederived;
            edge_ret += s.edges_retained;
            edge_red += s.edges_rederived;
        }
        c("borges_delta_segments_retained_total", seg_ret);
        c("borges_delta_segments_rederived_total", seg_red);
        c("borges_delta_edges_retained_total", edge_ret);
        c("borges_delta_edges_rederived_total", edge_red);
        c("borges_delta_llm_calls_saved_total", d.llm_calls_saved());
    }

    /// Stamps every stage funnel and the evidence-base sizes into the
    /// metrics registry as counters, following the naming convention
    /// `borges_<stage>_<what>_total` (DESIGN.md §8).
    fn stamp_metrics(&self, tel: &Telemetry) {
        if !tel.is_enabled() {
            return;
        }
        let c = |name: &str, v: usize| tel.counter(name, v as u64);
        let s = &self.scrape_stats;
        c(
            "borges_crawl_entries_with_website_total",
            s.entries_with_website,
        );
        c(
            "borges_crawl_entries_with_invalid_url_total",
            s.entries_with_invalid_url,
        );
        c("borges_crawl_entries_abandoned_total", s.entries_abandoned);
        c("borges_crawl_unique_urls_total", s.unique_urls);
        c("borges_crawl_reachable_urls_total", s.reachable_urls);
        c("borges_crawl_unique_final_urls_total", s.unique_final_urls);
        c(
            "borges_crawl_final_urls_with_favicon_total",
            s.final_urls_with_favicon,
        );
        c("borges_crawl_unique_favicons_total", s.unique_favicons);

        let r = &self.rr.stats;
        c(
            "borges_rr_networks_with_final_url_total",
            r.networks_with_final_url,
        );
        c("borges_rr_blocked_networks_total", r.blocked_networks);
        c("borges_rr_distinct_final_urls_total", r.distinct_final_urls);
        c("borges_rr_shared_final_urls_total", r.shared_final_urls);

        let n = &self.ner.stats;
        c("borges_ner_entries_total", n.entries_total);
        c("borges_ner_entries_with_text_total", n.entries_with_text);
        c("borges_ner_entries_numeric_total", n.entries_numeric);
        c("borges_ner_numeric_in_aka_total", n.numeric_in_aka);
        c("borges_ner_numeric_in_notes_total", n.numeric_in_notes);
        c("borges_ner_llm_calls_total", n.llm_calls);
        c("borges_ner_llm_abandoned_total", n.llm_abandoned);
        c("borges_ner_filtered_out_total", n.filtered_out);
        c(
            "borges_ner_entries_with_siblings_total",
            n.entries_with_siblings,
        );
        c("borges_ner_extracted_asns_total", n.extracted_asns);
        tel.counter("borges_ner_prompt_tokens_total", n.usage.prompt_tokens);
        tel.counter(
            "borges_ner_completion_tokens_total",
            n.usage.completion_tokens,
        );

        let f = &self.favicon.stats;
        c("borges_favicon_favicons_total", f.favicons_total);
        c("borges_favicon_favicons_shared_total", f.favicons_shared);
        c("borges_favicon_urls_in_shared_total", f.urls_in_shared);
        c(
            "borges_favicon_same_label_groups_total",
            f.same_label_groups,
        );
        c("borges_favicon_merged_by_step1_total", f.merged_by_step1);
        c("borges_favicon_llm_calls_total", f.llm_calls);
        c("borges_favicon_llm_abandoned_total", f.llm_abandoned);
        c("borges_favicon_merged_by_llm_total", f.merged_by_llm);
        c(
            "borges_favicon_framework_rejections_total",
            f.framework_rejections,
        );
        c("borges_favicon_dont_know_total", f.dont_know);
        tel.counter("borges_favicon_prompt_tokens_total", f.usage.prompt_tokens);
        tel.counter(
            "borges_favicon_completion_tokens_total",
            f.usage.completion_tokens,
        );

        c(
            "borges_evidence_asns_total",
            self.compiled.interner.live_len(),
        );
        c(
            "borges_evidence_whois_groups_total",
            self.oid_w_groups.len(),
        );
        c("borges_evidence_pdb_groups_total", self.oid_p_groups.len());
        c(
            "borges_evidence_rr_groups_total",
            self.rr.merging_groups().count(),
        );
        c(
            "borges_evidence_favicon_groups_total",
            self.favicon.groups.len(),
        );
        c(
            "borges_evidence_ner_links_total",
            segment_edge_count(&self.compiled.na),
        );
    }

    /// The mapping universe (all delegated ASNs), ascending. On an
    /// incremental run the interner may carry tombstoned slots for
    /// retired ASNs; those are excluded here.
    pub fn universe(&self) -> Vec<Asn> {
        self.compiled.interner.live_asns()
    }

    /// `true` when `asn` belongs to the live mapping universe. The
    /// membership probe of the serving read path: unlike
    /// [`Borges::universe`] it allocates nothing.
    pub fn contains(&self, asn: Asn) -> bool {
        self.compiled.interner.contains(asn)
    }

    /// Number of ASNs in the live universe, without materializing it.
    pub fn universe_len(&self) -> usize {
        self.compiled.interner.live_len()
    }

    /// Total compiled evidence edges the given feature subset would
    /// replay (the compulsory OID_W base included) — the cost model the
    /// weighted materialization scheduler and the serving layer's
    /// capacity planning both use.
    pub fn edge_weight(&self, features: FeatureSet) -> u64 {
        let mut w = 1 + segment_edge_count(&self.compiled.oid_w) as u64;
        if features.oid_p {
            w += segment_edge_count(&self.compiled.oid_p) as u64;
        }
        if features.na {
            w += segment_edge_count(&self.compiled.na) as u64;
        }
        if features.rr {
            w += segment_edge_count(&self.compiled.rr) as u64;
        }
        if features.favicons {
            w += segment_edge_count(&self.compiled.favicons) as u64;
        }
        w
    }

    /// Materializes the mapping for a feature subset. `OID_W` is always
    /// applied; selected features add their merge evidence on top, and
    /// union-find reconciles partially overlapping clusters (§4.1).
    ///
    /// Evidence about ASNs outside the delegated universe — e.g. an
    /// extraction false positive reading a year as an ASN that was never
    /// allocated — was discarded at compile time: the mapping's vertex
    /// set is fixed to the WHOIS universe (§5.4).
    ///
    /// This is a pure replay over pre-compiled state: clone the OID_W
    /// base closure, union the selected edge lists, read the groups out.
    /// Calls are independent, so any number can run concurrently — see
    /// [`Borges::mappings_parallel`].
    pub fn mapping(&self, features: FeatureSet) -> AsOrgMapping {
        let mut uf = self.compiled.base.clone();
        if features.oid_p {
            for seg in &self.compiled.oid_p {
                uf.union_edges(&seg.edges);
            }
        }
        if features.na {
            for seg in &self.compiled.na {
                uf.union_edges(&seg.edges);
            }
        }
        if features.rr {
            for seg in &self.compiled.rr {
                uf.union_edges(&seg.edges);
            }
        }
        if features.favicons {
            for seg in &self.compiled.favicons {
                uf.union_edges(&seg.edges);
            }
        }
        AsOrgMapping::from_groups(uf.into_groups(&self.compiled.interner))
    }

    /// Like [`Borges::mapping`], but replays the selected feature edge
    /// lists sharded over up to `shards` concurrent workers
    /// ([`DenseUnionFind::union_edge_lists_sharded`]). Byte-identical to
    /// the sequential replay for every feature set and shard count;
    /// `shards <= 1` *is* the sequential replay. This is the
    /// intra-mapping parallelism [`Borges::mappings_parallel`] falls
    /// back to when there are fewer feature combinations than workers.
    pub fn mapping_sharded(&self, features: FeatureSet, shards: usize) -> AsOrgMapping {
        self.mapping_sharded_traced(features, shards, &Telemetry::disabled())
    }

    fn mapping_sharded_traced(
        &self,
        features: FeatureSet,
        shards: usize,
        tel: &Telemetry,
    ) -> AsOrgMapping {
        if shards <= 1 {
            return self.mapping(features);
        }
        let mut uf = self.compiled.base.clone();
        let mut lists: Vec<&[(u32, u32)]> = Vec::new();
        if features.oid_p {
            lists.extend(self.compiled.oid_p.iter().map(|s| s.edges.as_slice()));
        }
        if features.na {
            lists.extend(self.compiled.na.iter().map(|s| s.edges.as_slice()));
        }
        if features.rr {
            lists.extend(self.compiled.rr.iter().map(|s| s.edges.as_slice()));
        }
        if features.favicons {
            lists.extend(self.compiled.favicons.iter().map(|s| s.edges.as_slice()));
        }
        let report = uf.union_edge_lists_sharded(&lists, shards, || tel.now_ms());
        record_shard_report(tel, "mapping", &report);
        AsOrgMapping::from_groups(uf.into_groups(&self.compiled.interner))
    }

    /// Materializes one mapping per feature set, fanning the independent
    /// replays out over `threads` worker threads. Results come back in
    /// input order and are bit-identical to calling [`Borges::mapping`]
    /// sequentially (assembly is key-canonical; threads change only
    /// wall-clock time). This is how the Table 6 sweep runs all 16
    /// combinations.
    ///
    /// When there are fewer feature sets than workers (e.g. the CLI's
    /// single `--features` mapping with `--threads 8`), the spare
    /// capacity moves *inside* each replay: every materialization runs
    /// [`Borges::mapping_sharded`] with `threads` shards instead. Pure
    /// scheduling — the results are byte-identical either way.
    pub fn mappings_parallel(&self, features: &[FeatureSet], threads: usize) -> Vec<AsOrgMapping> {
        self.mappings_parallel_traced(features, threads, &Telemetry::disabled())
    }

    /// Like [`Borges::mappings_parallel`], recording into `tel`: one
    /// logical `mappings/materialize` span per feature set (labelled with
    /// the combination), a `borges_mapping_materialize_ms` histogram
    /// observation per replay, and — because chunk-to-worker assignment
    /// is a scheduling detail — a *runtime* span plus a [`WorkerTiming`]
    /// ledger row per chunk. Results are unchanged from the untraced
    /// call, bit for bit.
    pub fn mappings_parallel_traced(
        &self,
        features: &[FeatureSet],
        threads: usize,
        tel: &Telemetry,
    ) -> Vec<AsOrgMapping> {
        // With fewer combinations than workers, cross-combination
        // fan-out cannot use the spare threads; shard inside each
        // replay instead (byte-identical output either way).
        let shards = if threads > 1 && features.len() < threads {
            threads
        } else {
            1
        };
        if !tel.is_enabled() {
            // Replay cost is dominated by the selected edge lists (ALL
            // unions every segment, NONE only clones the base forest), so
            // weight-aware assignment keeps a Table 6 sweep from pinning
            // all the heavy combinations on one worker.
            return borges_parallel::map_items_weighted(
                features,
                threads,
                |&f| self.edge_weight(f),
                |&f| self.mapping_sharded(f, shards),
            );
        }
        let root = tel.span("mappings");
        root.field("combinations", features.len());
        let timed = borges_parallel::map_chunks_timed(
            features,
            threads,
            || tel.now_ms(),
            |chunk| {
                let chunk_span = root.child_runtime("chunk");
                chunk_span.field("items", chunk.len());
                chunk
                    .iter()
                    .map(|&f| {
                        let span = root.child("materialize");
                        span.field("features", f.label());
                        let started_ms = tel.now_ms();
                        let mapping = self.mapping_sharded_traced(f, shards, tel);
                        tel.observe_ms(
                            "borges_mapping_materialize_ms",
                            tel.now_ms().saturating_sub(started_ms),
                        );
                        mapping
                    })
                    .collect::<Vec<_>>()
            },
        );
        let mut out = Vec::with_capacity(features.len());
        for (mappings, timing) in timed {
            tel.record_worker(WorkerTiming {
                stage: "mapping".to_string(),
                chunk: timing.chunk as u64,
                items: timing.items as u64,
                started_ms: timing.started_ms,
                elapsed_ms: timing.elapsed_ms,
            });
            out.extend(mappings);
        }
        out
    }

    /// The AS2Org baseline (OID_W only).
    pub fn baseline_as2org(&self) -> AsOrgMapping {
        self.mapping(FeatureSet::NONE)
    }

    /// Full Borges (all features).
    pub fn full(&self) -> AsOrgMapping {
        self.mapping(FeatureSet::ALL)
    }

    /// The per-feature coverage report: what each transport-facing stage
    /// attempted, kept, and abandoned. Over a bare or fully-recovered
    /// stack this is [`complete`](CoverageReport::complete); it is
    /// [`accounted`](CoverageReport::accounted) always.
    pub fn coverage(&self) -> CoverageReport {
        CoverageReport {
            crawl: FeatureCoverage::new(
                self.scrape_stats.entries_with_website,
                self.scrape_stats.entries_abandoned,
            ),
            notes_aka: FeatureCoverage::new(self.ner.stats.llm_calls, self.ner.stats.llm_abandoned),
            favicon_groups: FeatureCoverage::new(
                self.favicon.stats.llm_calls,
                self.favicon.stats.llm_abandoned,
            ),
        }
    }

    /// Builds the unified run ledger: every stage funnel, the coverage
    /// ledger, per-boundary resilience spend, cache efficacy, sorted
    /// breaker events and worker timings, and the full metrics snapshot,
    /// in one serializable [`RunReport`]. `pipeline` names how the run
    /// executed (`sequential`, `parallel`, `resilient`) and `threads` the
    /// fan-out width — pure labels, not re-derived.
    ///
    /// Pass the same `tel` the run recorded into; a disabled context
    /// yields a report with empty metrics/events but complete funnels.
    pub fn run_report(&self, tel: &Telemetry, pipeline: &str, threads: usize) -> RunReport {
        let u = |v: usize| v as u64;
        let s = &self.scrape_stats;
        let r = &self.rr.stats;
        let n = &self.ner.stats;
        let f = &self.favicon.stats;
        let resilience_row = |boundary: &str, rs: &ResilienceStats| ResilienceRow {
            boundary: boundary.to_string(),
            calls: rs.calls,
            attempts: rs.attempts,
            recovered: rs.recovered,
            abandoned: rs.abandoned,
            breaker_trips: rs.breaker_trips,
            breaker_fast_fails: rs.breaker_fast_fails,
        };
        let coverage_row = |feature: &str, cov: FeatureCoverage| CoverageRow {
            feature: feature.to_string(),
            attempted: u(cov.attempted),
            succeeded: u(cov.succeeded),
            abandoned: u(cov.abandoned),
        };
        let coverage = self.coverage();
        // Arrival order of both event streams is scheduling-dependent;
        // the ledger pins the sorted order.
        let mut breaker_events = tel.breaker_events();
        breaker_events.sort();
        let mut workers = tel.worker_timings();
        workers.sort();
        RunReport {
            schema: RUN_REPORT_SCHEMA.to_string(),
            pipeline: pipeline.to_string(),
            threads: threads as u64,
            crawl: CrawlFunnel {
                entries_with_website: u(s.entries_with_website),
                entries_with_invalid_url: u(s.entries_with_invalid_url),
                entries_abandoned: u(s.entries_abandoned),
                unique_urls: u(s.unique_urls),
                reachable_urls: u(s.reachable_urls),
                unique_final_urls: u(s.unique_final_urls),
                final_urls_with_favicon: u(s.final_urls_with_favicon),
                unique_favicons: u(s.unique_favicons),
            },
            rr: RrFunnel {
                networks_with_final_url: u(r.networks_with_final_url),
                blocked_networks: u(r.blocked_networks),
                distinct_final_urls: u(r.distinct_final_urls),
                shared_final_urls: u(r.shared_final_urls),
            },
            ner: NerFunnel {
                entries_total: u(n.entries_total),
                entries_with_text: u(n.entries_with_text),
                entries_numeric: u(n.entries_numeric),
                numeric_in_aka: u(n.numeric_in_aka),
                numeric_in_notes: u(n.numeric_in_notes),
                llm_calls: u(n.llm_calls),
                llm_abandoned: u(n.llm_abandoned),
                filtered_out: u(n.filtered_out),
                entries_with_siblings: u(n.entries_with_siblings),
                extracted_asns: u(n.extracted_asns),
                prompt_tokens: n.usage.prompt_tokens,
                completion_tokens: n.usage.completion_tokens,
            },
            favicon: FaviconFunnel {
                favicons_total: u(f.favicons_total),
                favicons_shared: u(f.favicons_shared),
                urls_in_shared: u(f.urls_in_shared),
                same_label_groups: u(f.same_label_groups),
                merged_by_step1: u(f.merged_by_step1),
                llm_calls: u(f.llm_calls),
                llm_abandoned: u(f.llm_abandoned),
                merged_by_llm: u(f.merged_by_llm),
                framework_rejections: u(f.framework_rejections),
                dont_know: u(f.dont_know),
                prompt_tokens: f.usage.prompt_tokens,
                completion_tokens: f.usage.completion_tokens,
            },
            evidence: EvidenceSummary {
                asns: u(self.compiled.interner.live_len()),
                whois_groups: u(self.oid_w_groups.len()),
                pdb_groups: u(self.oid_p_groups.len()),
                rr_groups: u(self.rr.merging_groups().count()),
                favicon_groups: u(self.favicon.groups.len()),
                ner_links: u(segment_edge_count(&self.compiled.na)),
            },
            delta: self.delta_report(),
            // The pipeline doesn't know about chains; the CLI overwrites
            // this row after a `--timeline` append.
            timeline: TimelineReport::default(),
            coverage: vec![
                coverage_row("crawl", coverage.crawl),
                coverage_row("notes_aka", coverage.notes_aka),
                coverage_row("favicon_groups", coverage.favicon_groups),
            ],
            resilience: vec![
                resilience_row("web", &s.resilience),
                resilience_row("llm.ner", &n.resilience),
                resilience_row("llm.favicon", &f.resilience),
            ],
            caches: vec![CacheReport::new("web.redirect", self.web_cache)],
            breaker_events,
            workers,
            metrics: tel.metrics_snapshot(),
        }
    }

    /// The run ledger's incremental-remap row group. On a full run this
    /// is the inert default (`incremental: false`, empty rows) so the
    /// report shape stays fixed across pipelines; on a remap it carries
    /// the record/edge delta classification and LLM-reuse accounting.
    /// Wall-clock savings are deliberately *not* ledger fields — the
    /// ledger must be byte-deterministic under the simulated clock — so
    /// the remap benchmark reports them instead.
    fn delta_report(&self) -> DeltaReport {
        let Some(d) = &self.delta else {
            return DeltaReport::default();
        };
        let record_row = |source: &str, sd: SourceDelta| DeltaRecordRow {
            source: source.to_string(),
            unchanged: sd.unchanged as u64,
            added: sd.added as u64,
            removed: sd.removed as u64,
            modified: sd.modified as u64,
        };
        let edge_row = |(feature, sd): (&'static str, SegmentDelta)| DeltaEdgeRow {
            feature: feature.to_string(),
            segments_retained: sd.segments_retained as u64,
            segments_rederived: sd.segments_rederived as u64,
            edges_retained: sd.edges_retained as u64,
            edges_rederived: sd.edges_rederived as u64,
        };
        DeltaReport {
            incremental: true,
            records: d
                .records
                .rows()
                .into_iter()
                .map(|(source, sd)| record_row(source, sd))
                .collect(),
            edges: d.edge_rows().into_iter().map(edge_row).collect(),
            asns_retained: d.asns_retained as u64,
            asns_added: d.asns_added as u64,
            asns_retired: d.asns_retired as u64,
            ner_reused: d.ner_reused as u64,
            ner_recomputed: d.ner_recomputed as u64,
            favicon_reused: d.favicon_reused as u64,
            favicon_recomputed: d.favicon_recomputed as u64,
            llm_calls_saved: d.llm_calls_saved() as u64,
        }
    }

    /// Which evidence sources independently support `a` and `b` being
    /// siblings — the provenance of a merge. An empty result for a pair
    /// the full mapping merges means the link is *transitive only*
    /// (each hop supported by some feature, but no single feature sees
    /// the pair directly end to end).
    pub fn evidence(&self, a: Asn, b: Asn) -> Vec<Feature> {
        let mut out = Vec::new();
        let connects = |groups: &[Vec<Asn>]| {
            let mut uf = UnionFind::new();
            for group in groups {
                uf.union_group(group);
            }
            uf.same_set(a, b)
        };
        if connects(&self.oid_w_groups) {
            out.push(Feature::OidW);
        }
        if connects(&self.oid_p_groups) {
            out.push(Feature::OidP);
        }
        {
            let mut uf = UnionFind::new();
            for (x, y) in self.ner.edges() {
                uf.union(x, y);
            }
            if uf.same_set(a, b) {
                out.push(Feature::NotesAka);
            }
        }
        {
            let mut uf = UnionFind::new();
            for group in self.rr.merging_groups() {
                uf.union_group(group);
            }
            if uf.same_set(a, b) {
                out.push(Feature::RefreshRedirect);
            }
        }
        {
            let mut uf = UnionFind::new();
            for group in &self.favicon.groups {
                uf.union_group(group);
            }
            if uf.same_set(a, b) {
                out.push(Feature::Favicons);
            }
        }
        out
    }

    /// Table 3: the feature's contribution in isolation.
    pub fn contribution(&self, feature: Feature) -> FeatureContribution {
        let count = |groups: &[Vec<Asn>]| {
            let ases: usize = groups.iter().map(Vec::len).sum();
            FeatureContribution {
                ases,
                orgs: groups.len(),
            }
        };
        match feature {
            Feature::OidW => count(&self.oid_w_groups),
            Feature::OidP => count(&self.oid_p_groups),
            Feature::RefreshRedirect => count(&self.rr.groups),
            Feature::NotesAka => {
                // Cluster the extraction edges on their own.
                let mut uf = UnionFind::new();
                for (a, b) in self.ner.edges() {
                    uf.union(a, b);
                }
                let groups = uf.into_groups();
                count(&groups)
            }
            Feature::Favicons => {
                let mut uf = UnionFind::new();
                for group in &self.favicon.groups {
                    uf.union_group(group);
                }
                let groups = uf.into_groups();
                count(&groups)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borges_llm::SimLlm;
    use borges_synthnet::{GeneratorConfig, SyntheticInternet};
    use borges_websim::SimWebClient;

    fn pipeline() -> (SyntheticInternet, Borges) {
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(11));
        let llm = SimLlm::flawless();
        let borges = Borges::run(
            &world.whois,
            &world.pdb,
            SimWebClient::browser(&world.web),
            &llm,
        );
        (world, borges)
    }

    #[test]
    fn baseline_reproduces_whois_split() {
        let (_, borges) = pipeline();
        let base = borges.baseline_as2org();
        assert!(
            !base.same_org(Asn::new(3356), Asn::new(209)),
            "Fig. 3 split"
        );
    }

    #[test]
    fn oid_p_feature_merges_lumen() {
        let (_, borges) = pipeline();
        let m = borges.mapping(FeatureSet {
            oid_p: true,
            ..FeatureSet::NONE
        });
        assert!(m.same_org(Asn::new(3356), Asn::new(209)), "Fig. 3 merge");
    }

    #[test]
    fn rr_feature_merges_edgio() {
        let (_, borges) = pipeline();
        let base = borges.baseline_as2org();
        assert!(!base.same_org(Asn::new(22822), Asn::new(15133)));
        let m = borges.mapping(FeatureSet {
            rr: true,
            ..FeatureSet::NONE
        });
        assert!(m.same_org(Asn::new(22822), Asn::new(15133)), "§4.3.2 case");
    }

    #[test]
    fn na_feature_merges_deutsche_telekom() {
        let (_, borges) = pipeline();
        let m = borges.mapping(FeatureSet {
            na: true,
            ..FeatureSet::NONE
        });
        assert!(m.same_org(Asn::new(3320), Asn::new(6855)), "Fig. 4 case");
        assert!(m.same_org(Asn::new(3320), Asn::new(5483)));
    }

    #[test]
    fn favicon_feature_merges_claro() {
        let (_, borges) = pipeline();
        let m = borges.mapping(FeatureSet {
            favicons: true,
            ..FeatureSet::NONE
        });
        assert!(
            m.same_org(Asn::new(27651), Asn::new(10396)),
            "Claro Chile + Claro PR via favicon + LLM"
        );
    }

    #[test]
    fn full_borges_groups_monotonically_vs_baseline() {
        let (_, borges) = pipeline();
        let base = borges.baseline_as2org();
        let full = borges.full();
        assert_eq!(base.asn_count(), full.asn_count(), "same universe");
        assert!(
            full.org_count() < base.org_count(),
            "features must merge organizations"
        );
        // Monotonicity: everything the baseline merged stays merged.
        for (_, members) in base.clusters() {
            for pair in members.windows(2) {
                assert!(full.same_org(pair[0], pair[1]));
            }
        }
    }

    #[test]
    fn all_16_combinations_enumerate() {
        let combos = FeatureSet::all_combinations();
        assert_eq!(combos.len(), 16);
        assert_eq!(combos[0], FeatureSet::NONE);
        assert_eq!(combos[15], FeatureSet::ALL);
        let labels: std::collections::BTreeSet<String> =
            combos.iter().map(FeatureSet::label).collect();
        assert_eq!(labels.len(), 16, "labels must be distinct");
    }

    #[test]
    fn feature_bits_round_trip_and_parse() {
        for (bits, combo) in FeatureSet::all_combinations().into_iter().enumerate() {
            assert_eq!(combo.bits(), bits as u8);
            assert_eq!(FeatureSet::from_bits(combo.bits()), combo);
        }
        assert_eq!(
            FeatureSet::from_bits(0xF0),
            FeatureSet::NONE,
            "high bits ignored"
        );
        assert_eq!(FeatureSet::parse("all").unwrap(), FeatureSet::ALL);
        assert_eq!(FeatureSet::parse("none").unwrap(), FeatureSet::NONE);
        let f = FeatureSet::parse("oid_p, favicons").unwrap();
        assert!(f.oid_p && f.favicons && !f.na && !f.rr);
        let err = FeatureSet::parse("oid_p,bogus").unwrap_err();
        assert!(err.contains("bogus"), "{err}");
    }

    #[test]
    fn read_path_accessors_agree_with_universe() {
        let (_, borges) = pipeline();
        let universe = borges.universe();
        assert_eq!(borges.universe_len(), universe.len());
        assert!(borges.contains(universe[0]));
        assert!(!borges.contains(Asn::new(4_294_000_000)));
        // Edge weight grows monotonically with the feature set.
        let none = borges.edge_weight(FeatureSet::NONE);
        let all = borges.edge_weight(FeatureSet::ALL);
        assert!(none >= 1);
        assert!(all > none, "optional features add edges");
    }

    #[test]
    fn contributions_have_sensible_shapes() {
        let (world, borges) = pipeline();
        let oid_w = borges.contribution(Feature::OidW);
        let oid_p = borges.contribution(Feature::OidP);
        assert_eq!(oid_w.ases, world.whois.asn_count());
        assert_eq!(oid_p.ases, world.pdb.net_count());
        assert!(oid_w.ases > oid_p.ases, "WHOIS covers more than PeeringDB");
        for f in Feature::ALL {
            let c = borges.contribution(f);
            assert!(c.orgs <= c.ases, "{:?}: more orgs than ASes", f);
        }
        let na = borges.contribution(Feature::NotesAka);
        assert!(na.ases > 0, "scripted sibling notes must fire");
        let rr = borges.contribution(Feature::RefreshRedirect);
        assert!(rr.ases > 0 && rr.orgs < rr.ases);
    }

    #[test]
    fn mapping_covers_the_whole_universe() {
        let (world, borges) = pipeline();
        let m = borges.full();
        assert_eq!(m.asn_count(), borges.universe().len());
        assert!(m.asn_count() >= world.whois.asn_count());
    }

    #[test]
    fn evidence_provenance_names_the_right_features() {
        let (_, borges) = pipeline();
        // Lumen/CenturyLink: merged by the PeeringDB key, not WHOIS.
        let ev = borges.evidence(Asn::new(3356), Asn::new(209));
        assert!(ev.contains(&Feature::OidP), "{ev:?}");
        assert!(!ev.contains(&Feature::OidW), "{ev:?}");
        // Edgio: merged by final-URL matching.
        let ev = borges.evidence(Asn::new(22822), Asn::new(15133));
        assert!(ev.contains(&Feature::RefreshRedirect), "{ev:?}");
        // Deutsche Telekom subsidiary: notes evidence.
        let ev = borges.evidence(Asn::new(3320), Asn::new(6855));
        assert!(ev.contains(&Feature::NotesAka), "{ev:?}");
        // Claro Chile / Claro PR: favicon evidence.
        let ev = borges.evidence(Asn::new(27651), Asn::new(10396));
        assert!(ev.contains(&Feature::Favicons), "{ev:?}");
        // Unrelated pair: no evidence at all.
        assert!(borges.evidence(Asn::new(174), Asn::new(15169)).is_empty());
    }

    #[test]
    fn parallel_pipeline_matches_sequential() {
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(13));
        let llm = SimLlm::new(13);
        let sequential = Borges::run(
            &world.whois,
            &world.pdb,
            SimWebClient::browser(&world.web),
            &llm,
        );
        let parallel = Borges::run_parallel(
            &world.whois,
            &world.pdb,
            SimWebClient::browser(&world.web),
            &llm,
            4,
        );
        assert_eq!(
            parallel.mapping(FeatureSet::ALL),
            sequential.mapping(FeatureSet::ALL)
        );
        assert_eq!(parallel.ner.per_entry, sequential.ner.per_entry);
        assert_eq!(parallel.scrape_stats, sequential.scrape_stats);
    }

    #[test]
    fn mappings_parallel_matches_sequential_mapping() {
        let (_, borges) = pipeline();
        let combos = FeatureSet::all_combinations();
        let sequential: Vec<_> = combos.iter().map(|&f| borges.mapping(f)).collect();
        for threads in [1, 2, 7] {
            assert_eq!(
                borges.mappings_parallel(&combos, threads),
                sequential,
                "diverged with {threads} threads"
            );
        }
    }

    #[test]
    fn compiled_replay_matches_sparse_rebuild() {
        // The dense replay must reproduce, bit for bit, what the original
        // per-call sparse rebuild produced for every feature subset.
        let (_, borges) = pipeline();
        let allocated: BTreeSet<Asn> = borges.universe().iter().copied().collect();
        for features in FeatureSet::all_combinations() {
            let mut uf = UnionFind::with_universe(borges.universe().iter().copied());
            for group in &borges.oid_w_groups {
                uf.union_group(group);
            }
            if features.oid_p {
                for group in &borges.oid_p_groups {
                    uf.union_group(group);
                }
            }
            if features.na {
                for (a, b) in borges.ner.edges() {
                    if allocated.contains(&a) && allocated.contains(&b) {
                        uf.union(a, b);
                    }
                }
            }
            if features.rr {
                for group in borges.rr.merging_groups() {
                    let members: Vec<Asn> = group
                        .iter()
                        .copied()
                        .filter(|a| allocated.contains(a))
                        .collect();
                    uf.union_group(&members);
                }
            }
            if features.favicons {
                for group in &borges.favicon.groups {
                    let members: Vec<Asn> = group
                        .iter()
                        .copied()
                        .filter(|a| allocated.contains(a))
                        .collect();
                    uf.union_group(&members);
                }
            }
            assert_eq!(
                borges.mapping(features),
                AsOrgMapping::from_union_find(uf),
                "replay diverged for {}",
                features.label()
            );
        }
    }

    #[test]
    fn chaos_resilient_run_on_a_flawless_world_matches_run() {
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(11));
        let llm = SimLlm::flawless();
        let bare = Borges::run(
            &world.whois,
            &world.pdb,
            SimWebClient::browser(&world.web),
            &llm,
        );
        let resilient = Borges::run_resilient(
            &world.whois,
            &world.pdb,
            SimWebClient::browser(&world.web),
            &llm,
            borges_resilience::RetryPolicy::standard(11),
        );
        for features in FeatureSet::all_combinations() {
            assert_eq!(resilient.mapping(features), bare.mapping(features));
        }
        let coverage = resilient.coverage();
        assert!(coverage.accounted());
        assert!(coverage.complete());
        // The stack was transparent: one attempt per call, nothing retried.
        let web = resilient.scrape_stats.resilience;
        assert_eq!(web.attempts, web.calls);
        assert_eq!(web.recovered + web.abandoned, 0);
        assert_eq!(
            resilient.ner.stats.resilience.calls as usize,
            resilient.ner.stats.llm_calls
        );
        assert_eq!(
            resilient.favicon.stats.resilience.calls as usize,
            resilient.favicon.stats.llm_calls
        );
    }

    #[test]
    fn chaos_recoverable_faults_yield_a_bit_identical_mapping() {
        use borges_llm::FlakyModel;
        use borges_resilience::{EpisodePlan, RetryPolicy};
        use borges_websim::FlakyWebClient;

        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(11));
        let flawless = Borges::run(
            &world.whois,
            &world.pdb,
            SimWebClient::browser(&world.web),
            &SimLlm::flawless(),
        );
        for seed in [1u64, 2, 3] {
            let flaky_web = FlakyWebClient::new(
                SimWebClient::browser(&world.web),
                EpisodePlan::calibrated(seed),
            );
            let flaky_llm = FlakyModel::new(SimLlm::flawless(), EpisodePlan::calibrated(seed ^ 1));
            let chaotic = Borges::run_resilient(
                &world.whois,
                &world.pdb,
                flaky_web,
                &flaky_llm,
                RetryPolicy::standard(seed),
            );
            // The keystone: every recoverable episode is erased entirely.
            for features in FeatureSet::all_combinations() {
                assert_eq!(
                    chaotic.mapping(features),
                    flawless.mapping(features),
                    "seed {seed}, {}",
                    features.label()
                );
            }
            let coverage = chaotic.coverage();
            assert!(coverage.complete(), "seed {seed}: nothing may be lost");
            assert!(coverage.accounted());
            assert!(
                chaotic.scrape_stats.resilience.recovered
                    + chaotic.ner.stats.resilience.recovered
                    + chaotic.favicon.stats.resilience.recovered
                    > 0,
                "seed {seed}: the plan must actually have injected faults"
            );
        }
    }

    #[test]
    fn chaos_unrecoverable_faults_degrade_with_full_accounting() {
        use borges_llm::FlakyModel;
        use borges_resilience::{EpisodePlan, RetryPolicy};
        use borges_websim::FlakyWebClient;

        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(11));
        let flawless = Borges::run(
            &world.whois,
            &world.pdb,
            SimWebClient::browser(&world.web),
            &SimLlm::flawless(),
        );
        // Permanent outages and no retries: losses are guaranteed.
        let flaky_web = FlakyWebClient::new(
            SimWebClient::browser(&world.web),
            EpisodePlan::with_outages(7),
        );
        let flaky_llm = FlakyModel::new(SimLlm::flawless(), EpisodePlan::with_outages(8));
        let degraded = Borges::run_resilient(
            &world.whois,
            &world.pdb,
            flaky_web,
            &flaky_llm,
            RetryPolicy::none(),
        );

        // The run completed and every loss is on the books.
        let coverage = degraded.coverage();
        assert!(coverage.accounted(), "abandoned + succeeded == attempted");
        assert!(
            coverage.total_abandoned() > 0,
            "outages must cost something"
        );
        // Client-level accounting: one call per distinct URL (the cache
        // dedups), and every call either succeeded or was abandoned.
        let web = degraded.scrape_stats.resilience;
        assert_eq!(web.calls as usize, degraded.scrape_stats.unique_urls);
        assert_eq!(web.succeeded() + web.abandoned, web.calls);

        // Degradation only removes evidence: everything still merged is
        // merged in the flawless world too, and the universe is intact.
        let full = degraded.full();
        let reference = flawless.full();
        assert_eq!(full.asn_count(), reference.asn_count());
        for (_, members) in full.clusters() {
            for pair in members.windows(2) {
                assert!(
                    reference.same_org(pair[0], pair[1]),
                    "degraded run invented a merge: {:?}",
                    pair
                );
            }
        }
    }

    #[test]
    fn traced_run_emits_stage_spans_and_funnel_counters() {
        use borges_telemetry::{Telemetry, Verbosity};
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(11));
        let llm = SimLlm::flawless();
        let tel = Telemetry::sim(Verbosity::Quiet);
        let borges = Borges::run_traced(
            &world.whois,
            &world.pdb,
            SimWebClient::browser(&world.web),
            &llm,
            &tel,
        );
        // One logical span per stage, under the root.
        let paths: Vec<String> = tel.trace_records().iter().map(|r| r.path.clone()).collect();
        for path in [
            "run",
            "run/crawl",
            "run/ner",
            "run/rr",
            "run/favicon",
            "run/compile",
        ] {
            assert!(paths.contains(&path.to_string()), "missing span {path}");
        }
        // Funnel counters come from the merged stats, verbatim.
        let snap = tel.metrics_snapshot();
        assert_eq!(
            snap.counter("borges_crawl_unique_urls_total") as usize,
            borges.scrape_stats.unique_urls
        );
        assert_eq!(
            snap.counter("borges_ner_llm_calls_total") as usize,
            borges.ner.stats.llm_calls
        );
        assert_eq!(
            snap.counter("borges_evidence_asns_total") as usize,
            borges.universe().len()
        );
        // Stage durations were observed (zero under SimClock, but present).
        for metric in [
            "borges_stage_crawl_ms",
            "borges_stage_ner_ms",
            "borges_stage_rr_ms",
            "borges_stage_favicon_ms",
            "borges_stage_compile_ms",
        ] {
            assert_eq!(snap.histogram(metric).unwrap().count, 1, "{metric}");
        }
        // The redirect cache saw every unique URL miss once (sequential).
        assert_eq!(
            borges.web_cache.misses as usize,
            borges.scrape_stats.unique_urls
        );
    }

    #[test]
    fn traced_mappings_record_materializations_and_worker_timings() {
        use borges_telemetry::{Telemetry, Verbosity};
        let (_, borges) = pipeline();
        let combos = FeatureSet::all_combinations();
        let tel = Telemetry::sim(Verbosity::Quiet);
        let mapped = borges.mappings_parallel_traced(&combos, 4, &tel);
        assert_eq!(mapped, borges.mappings_parallel(&combos, 4));
        let snap = tel.metrics_snapshot();
        assert_eq!(
            snap.histogram("borges_mapping_materialize_ms")
                .unwrap()
                .count,
            16
        );
        // One worker-timing row per chunk, accounting for every item.
        let workers = tel.worker_timings();
        assert_eq!(workers.len(), 4);
        assert_eq!(workers.iter().map(|w| w.items).sum::<u64>(), 16);
        // One logical materialize span per combination, each labelled.
        let records = tel.trace_records();
        let materialize: Vec<_> = records
            .iter()
            .filter(|r| r.path == "mappings/materialize")
            .collect();
        assert_eq!(materialize.len(), 16);
        let labels: BTreeSet<&str> = materialize
            .iter()
            .flat_map(|r| r.fields.iter())
            .filter(|f| f.key == "features")
            .map(|f| f.value.as_str())
            .collect();
        assert_eq!(labels.len(), 16, "every combination labelled distinctly");
    }

    #[test]
    fn run_report_mirrors_stats_and_balances() {
        use borges_telemetry::{Telemetry, Verbosity};
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(11));
        let llm = SimLlm::flawless();
        let tel = Telemetry::sim(Verbosity::Quiet);
        let borges = Borges::run_resilient_traced(
            &world.whois,
            &world.pdb,
            SimWebClient::browser(&world.web),
            &llm,
            borges_resilience::RetryPolicy::standard(11),
            &tel,
        );
        let report = borges.run_report(&tel, "resilient", 1);
        assert_eq!(report.schema, borges_telemetry::RUN_REPORT_SCHEMA);
        assert!(report.accounted(), "abandoned + succeeded == attempted");
        assert_eq!(
            report.crawl.unique_urls as usize,
            borges.scrape_stats.unique_urls
        );
        assert_eq!(report.ner.llm_calls as usize, borges.ner.stats.llm_calls);
        assert_eq!(
            report.evidence.whois_groups as usize,
            borges.oid_w_groups.len()
        );
        // Boundary rows mirror the stamped resilience stats.
        assert_eq!(report.resilience.len(), 3);
        assert_eq!(report.resilience[0].boundary, "web");
        assert_eq!(
            report.resilience[0].calls,
            borges.scrape_stats.resilience.calls
        );
        assert_eq!(report.resilience[1].boundary, "llm.ner");
        assert_eq!(
            report.resilience[1].calls,
            borges.ner.stats.resilience.calls
        );
        // The redirect-cache ledger row is present and consistent.
        assert_eq!(report.caches.len(), 1);
        assert_eq!(report.caches[0].name, "web.redirect");
        assert_eq!(
            report.caches[0].misses as usize,
            borges.scrape_stats.unique_urls
        );
        // The embedded snapshot matches what the context holds, and the
        // whole ledger round-trips through JSON.
        assert_eq!(report.metrics, tel.metrics_snapshot());
        let back = borges_telemetry::RunReport::from_json(&report.to_json_pretty()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn feature_order_does_not_matter() {
        // Union-find is order-insensitive; two different routes to the
        // same feature set must agree exactly.
        let (_, borges) = pipeline();
        let a = borges.mapping(FeatureSet::ALL);
        let b = borges.mapping(FeatureSet::ALL);
        assert_eq!(a, b);
    }

    /// Runs a full compile and an incremental remap over the same T+1
    /// inputs and asserts the keystone: every feature combination's
    /// mapfile is byte-identical.
    fn assert_remap_matches_full(world: &SyntheticInternet, state: &SnapshotState) {
        let llm = SimLlm::flawless();
        let scraper = Scraper::new(SimWebClient::browser(&world.web));
        let report = scraper.crawl(world.pdb.nets().map(|n| (n.asn, n.website.as_str())));
        let full = Borges::from_scrape(
            &world.whois,
            &world.pdb,
            &report,
            &llm,
            NerConfig::default(),
        );
        let inc = Borges::remap(
            &world.whois,
            &world.pdb,
            &report,
            &llm,
            NerConfig::default(),
            state,
        );
        assert_eq!(inc.universe(), full.universe());
        for f in FeatureSet::all_combinations() {
            assert_eq!(
                crate::mapfile::serialize(&inc.mapping(f)),
                crate::mapfile::serialize(&full.mapping(f)),
                "remap must be byte-identical to full compile for {f:?}"
            );
        }
    }

    #[test]
    fn remap_of_unchanged_world_is_byte_identical_and_llm_free() {
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(11));
        let llm = SimLlm::flawless();
        let scraper = Scraper::new(SimWebClient::browser(&world.web));
        let report = scraper.crawl(world.pdb.nets().map(|n| (n.asn, n.website.as_str())));
        let t0 = Borges::from_scrape(
            &world.whois,
            &world.pdb,
            &report,
            &llm,
            NerConfig::default(),
        );
        let state = t0.snapshot_state();
        assert_remap_matches_full(&world, &state);

        // With nothing changed, every LLM answer replays from the memo
        // and every edge segment is carried over verbatim.
        let inc = Borges::remap(
            &world.whois,
            &world.pdb,
            &report,
            &llm,
            NerConfig::default(),
            &state,
        );
        assert_eq!(inc.ner.stats.llm_calls, 0, "NER must replay from memo");
        assert_eq!(
            inc.favicon.stats.llm_calls, 0,
            "favicon must replay from memo"
        );
        let d = inc.delta.as_ref().expect("remap records delta stats");
        assert_eq!(d.records.dirty(), 0);
        assert_eq!(d.asns_added + d.asns_retired, 0);
        for (feature, sd) in d.edge_rows() {
            assert_eq!(sd.segments_rederived, 0, "{feature} segments re-derived");
            assert_eq!(sd.edges_rederived, 0, "{feature} edges re-derived");
        }
        assert_eq!(d.llm_calls_saved(), d.ner_reused + d.favicon_reused);
        assert!(d.llm_calls_saved() > 0, "the memo replay saved real calls");
    }

    #[test]
    fn remap_against_a_foreign_state_still_matches_full_compile() {
        // Degenerate delta: the persisted state comes from a *different*
        // world, so essentially every record is added/removed/modified.
        // Correctness must not depend on reuse actually happening.
        let t0 = SyntheticInternet::generate(&GeneratorConfig::tiny(11));
        let t1 = SyntheticInternet::generate(&GeneratorConfig::tiny(77));
        let llm = SimLlm::flawless();
        let scraper = Scraper::new(SimWebClient::browser(&t0.web));
        let report = scraper.crawl(t0.pdb.nets().map(|n| (n.asn, n.website.as_str())));
        let state = Borges::from_scrape(&t0.whois, &t0.pdb, &report, &llm, NerConfig::default())
            .snapshot_state();
        assert_remap_matches_full(&t1, &state);
    }

    #[test]
    fn remap_emits_stage_spans_and_delta_counters() {
        use borges_telemetry::{Telemetry, Verbosity};
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(11));
        let llm = SimLlm::flawless();
        let scraper = Scraper::new(SimWebClient::browser(&world.web));
        let report = scraper.crawl(world.pdb.nets().map(|n| (n.asn, n.website.as_str())));
        let state = Borges::from_scrape(
            &world.whois,
            &world.pdb,
            &report,
            &llm,
            NerConfig::default(),
        )
        .snapshot_state();
        let tel = Telemetry::sim(Verbosity::Quiet);
        let inc = Borges::remap_traced(
            &world.whois,
            &world.pdb,
            &report,
            &llm,
            NerConfig::default(),
            &state,
            &tel,
        );
        let paths: Vec<String> = tel.trace_records().iter().map(|r| r.path.clone()).collect();
        for path in [
            "remap",
            "remap/ner",
            "remap/rr",
            "remap/favicon",
            "remap/apply",
        ] {
            assert!(paths.contains(&path.to_string()), "missing span {path}");
        }
        let metrics = tel.metrics_snapshot();
        let counter = |name: &str| metrics.counter(name);
        assert_eq!(counter("borges_delta_records_dirty_total"), 0);
        assert_eq!(counter("borges_delta_segments_rederived_total"), 0);
        assert!(counter("borges_delta_segments_retained_total") > 0);
        assert_eq!(
            counter("borges_delta_llm_calls_saved_total") as usize,
            inc.delta.as_ref().unwrap().llm_calls_saved()
        );
        // The run ledger carries the same accounting as typed rows.
        let ledger = inc.run_report(&tel, "remap", 1);
        assert!(ledger.delta.incremental);
        assert!(ledger.delta.consistent());
        assert_eq!(ledger.delta.records.len(), 5);
        assert_eq!(ledger.delta.edges.len(), 5);
    }
}
