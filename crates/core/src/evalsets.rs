//! §5.3 — Scoring the LLM stages against labeled data.
//!
//! The paper validates both LLM stages by manual inspection: 320
//! numeric-text PeeringDB records for information extraction (Table 4)
//! and 449 shared-favicon groups for the classifier (Table 5). Here the
//! synthetic world provides the labels, and these helpers compute the
//! same record-level confusion matrices.

use crate::ner::NerResult;
use crate::web::favicon::{FaviconInference, GroupOutcome};
use borges_peeringdb::PdbSnapshot;
use borges_types::Asn;
use std::collections::{BTreeMap, BTreeSet};

/// A confusion matrix with the paper's derived metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// True negatives.
    pub tn: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// `tp / (tp + fp)`; 1.0 when undefined (no positive predictions).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// `tp / (tp + fn)`; 1.0 when undefined (no positive labels).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// `(tp + tn) / total`; 1.0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.tn + self.fp + self.fn_;
        if total == 0 {
            1.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// Total records scored.
    pub fn total(&self) -> usize {
        self.tp + self.tn + self.fp + self.fn_
    }
}

/// Table 4: record-level scoring of the IE stage.
///
/// The population is every record that passed the numeric input filter
/// (`sample` caps it, mirroring the paper's 320-record manual audit —
/// records are taken in ASN order for determinism). Per record with
/// expected siblings `E` and extracted set `G`:
///
/// * `G == E`, `E` non-empty → **TP** (all siblings recovered, nothing
///   spurious);
/// * `G ⊂ E` (missing some, nothing spurious) → **FN**;
/// * `G ⊄ E` (anything spurious — an unrelated numeral or a
///   non-sibling ASN) → **FP**;
/// * `E` and `G` both empty → **TN**.
pub fn ie_confusion(
    pdb: &PdbSnapshot,
    labels: &BTreeMap<Asn, Vec<Asn>>,
    ner: &NerResult,
    sample: Option<usize>,
) -> Confusion {
    let mut c = Confusion::default();
    for (scored, net) in pdb.nets().filter(|n| n.has_numeric_text()).enumerate() {
        if let Some(cap) = sample {
            if scored >= cap {
                break;
            }
        }
        let expected: BTreeSet<Asn> = labels
            .get(&net.asn)
            .map(|v| v.iter().copied().collect())
            .unwrap_or_default();
        let got: BTreeSet<Asn> = ner
            .per_entry
            .get(&net.asn)
            .map(|v| v.iter().copied().collect())
            .unwrap_or_default();
        let spurious = got.difference(&expected).count();
        if spurious > 0 {
            c.fp += 1;
        } else if expected.is_empty() {
            c.tn += 1;
        } else if got == expected {
            c.tp += 1;
        } else {
            c.fn_ += 1;
        }
    }
    c
}

/// Table 5: confusion matrices for the favicon classifier, per step and
/// overall.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassifierEval {
    /// Step 1 (favicon + brand-label rule).
    pub step1: Confusion,
    /// Step 2 (LLM reclassification of step-1 false negatives).
    pub step2: Confusion,
    /// The whole decision tree.
    pub overall: Confusion,
}

/// Scores the classifier decision records against ground truth.
///
/// A shared-favicon group's true label is **positive** when every ASN in
/// it belongs to one true organization (`are_siblings` must answer that),
/// **negative** otherwise (frameworks, coincidences).
///
/// Step 1's prediction is "merge" iff the brand-label rule merged the
/// whole group; step 2 is evaluated — as in the paper — on the groups
/// step 1 got wrong in the negative direction (its false negatives),
/// where the LLM either recovers them (TP) or not (FN). Step-2 false
/// positives (LLM merging a truly-negative group) are also counted into
/// the overall matrix.
pub fn classifier_confusion(
    inference: &FaviconInference,
    mut are_siblings: impl FnMut(Asn, Asn) -> bool,
) -> ClassifierEval {
    let mut eval = ClassifierEval::default();
    for decision in &inference.decisions {
        let truly_one_org = decision.asns.windows(2).all(|w| are_siblings(w[0], w[1]));

        // Step 1.
        match (truly_one_org, decision.step1_merged_all) {
            (true, true) => eval.step1.tp += 1,
            (true, false) => eval.step1.fn_ += 1,
            (false, false) => eval.step1.tn += 1,
            (false, true) => eval.step1.fp += 1,
        }

        // Step 2 runs on groups step 1 did not fully merge.
        if !decision.step1_merged_all {
            let llm_merged = decision.outcome == GroupOutcome::MergedByLlm;
            match (truly_one_org, llm_merged) {
                (true, true) => eval.step2.tp += 1,
                (true, false) => eval.step2.fn_ += 1,
                (false, false) => eval.step2.tn += 1,
                (false, true) => eval.step2.fp += 1,
            }
        }

        // Overall: the tree's final verdict.
        let finally_merged = matches!(
            decision.outcome,
            GroupOutcome::MergedByStep1 | GroupOutcome::MergedByLlm
        );
        match (truly_one_org, finally_merged) {
            (true, true) => eval.overall.tp += 1,
            (true, false) => eval.overall.fn_ += 1,
            (false, false) => eval.overall.tn += 1,
            (false, true) => eval.overall.fp += 1,
        }
    }
    // The paper reports step 2 only over step-1 false negatives (TN = 0
    // there). Keep true negatives out of the step-2 matrix to match.
    eval.step2.tn = 0;
    eval
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ner::{extract, NerConfig};
    use crate::web::favicon::favicon_inference;
    use borges_llm::SimLlm;
    use borges_synthnet::{GeneratorConfig, SyntheticInternet};
    use borges_websim::{Scraper, SimWebClient};

    #[test]
    fn confusion_metrics() {
        let c = Confusion {
            tp: 187,
            tn: 116,
            fp: 5,
            fn_: 12,
        };
        assert!((c.accuracy() - 0.947).abs() < 0.001, "{}", c.accuracy());
        assert!((c.precision() - 0.974).abs() < 0.001);
        assert!((c.recall() - 0.94).abs() < 0.001);
        assert_eq!(c.total(), 320);
    }

    #[test]
    fn degenerate_metrics_are_defined() {
        let c = Confusion::default();
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn ie_confusion_on_the_synthetic_world_is_accurate() {
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(3));
        let llm = SimLlm::flawless();
        let ner = extract(&world.pdb, &llm, NerConfig::default());
        let c = ie_confusion(&world.pdb, &world.text_labels, &ner, None);
        assert!(c.total() > 10, "eval population too small: {}", c.total());
        assert!(
            c.accuracy() > 0.9,
            "flawless model should score high: {c:?}"
        );
    }

    #[test]
    fn ie_confusion_sample_caps_population() {
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(3));
        let llm = SimLlm::flawless();
        let ner = extract(&world.pdb, &llm, NerConfig::default());
        let c = ie_confusion(&world.pdb, &world.text_labels, &ner, Some(5));
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn faulty_model_scores_worse_than_flawless() {
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(3));
        let flawless = extract(&world.pdb, &SimLlm::flawless(), NerConfig::default());
        let faulty = extract(&world.pdb, &SimLlm::new(9), NerConfig::default());
        let cf = ie_confusion(&world.pdb, &world.text_labels, &flawless, None);
        let cl = ie_confusion(&world.pdb, &world.text_labels, &faulty, None);
        assert!(cl.accuracy() <= cf.accuracy());
    }

    #[test]
    fn classifier_confusion_shapes() {
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(3));
        let llm = SimLlm::flawless();
        let scraper = Scraper::new(SimWebClient::browser(&world.web));
        let report = scraper.crawl(world.pdb.nets().map(|n| (n.asn, n.website.as_str())));
        let inference = favicon_inference(&report, &llm);
        assert!(!inference.decisions.is_empty());
        let eval = classifier_confusion(&inference, |a, b| world.truth.are_siblings(a, b));
        assert_eq!(
            eval.overall.total(),
            inference.decisions.len(),
            "every decision scored once"
        );
        assert_eq!(eval.step2.tn, 0, "paper's step-2 matrix has TN = 0");
        assert!(
            eval.overall.accuracy() >= eval.step1.accuracy(),
            "step 2 exists to recover step-1 misses"
        );
    }
}
