//! # borges-parallel
//!
//! Chunked scoped-thread fan-out, shared by every embarrassingly
//! parallel stage of the workspace: the web crawl, the LLM extraction
//! loop, and mapping materialization across feature combinations.
//!
//! All three stages have the same shape — a slice of independent work
//! items, a pure per-item (or per-chunk) function, and key-canonical
//! downstream assembly that makes the result independent of execution
//! order. The helpers here encode exactly that shape with
//! `std::thread::scope`, replacing the hand-rolled copies that used to
//! live in each crate:
//!
//! * results come back **in input order** (handles are joined in spawn
//!   order), so callers need no re-sorting;
//! * items are split into at most `threads` contiguous chunks of
//!   near-equal size (`ceil(len / threads)`), one worker thread per
//!   chunk — cheap for coarse items, and deterministic;
//! * a panicking worker propagates the panic to the caller instead of
//!   poisoning a channel or deadlocking a join.
//!
//! The crate is dependency-free so any layer — including the web
//! simulator, which sits *below* the core pipeline — can use it.
//!
//! The [`stream`] module is the non-batch sibling: a bounded-concurrency
//! streaming scheduler (per-key FIFO, global in-flight cap, injectable
//! admission gate) whose completions are re-ordered into canonical input
//! order by a reassembly buffer before the consumer sees them.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod stream;

pub use stream::{stream_indexed, ReassemblyBuffer, StreamConfig, StreamLedger};

/// The worker-thread count to use when the caller has no opinion: the
/// machine's available parallelism, or 1 when it cannot be determined
/// (the fan-out helpers degrade to sequential execution at 1).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to at most `threads` contiguous chunks of `items`, one
/// scoped worker thread per chunk, returning the per-chunk results in
/// input (chunk) order.
///
/// This is the primitive for stages that fold each chunk into a partial
/// aggregate (e.g. per-chunk extraction statistics) and merge the
/// partials afterwards. `threads` is clamped to at least 1; an empty
/// `items` yields an empty result without spawning.
pub fn map_chunks<'a, T, R, F>(items: &'a [T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a [T]) -> R + Sync,
{
    let threads = threads.max(1);
    let chunk_size = items.len().div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(|| f(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|handle| match handle.join() {
                Ok(result) => result,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    })
}

/// One chunk's worth of timing from [`map_chunks_timed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkTiming {
    /// Chunk index in input order.
    pub chunk: usize,
    /// Items the chunk contained.
    pub items: usize,
    /// Clock reading when the worker picked the chunk up.
    pub started_ms: u64,
    /// Clock delta the chunk took.
    pub elapsed_ms: u64,
}

/// Like [`map_chunks`], but also times each chunk on a caller-supplied
/// clock, pairing every result with a [`ChunkTiming`].
///
/// The clock is injected as a plain `now_ms` closure so this crate stays
/// dependency-free: telemetry layers pass their run clock, tests pass a
/// counter. Timings are observational only — results are still returned
/// in input order and are unaffected by the clock.
pub fn map_chunks_timed<'a, T, R, F, N>(
    items: &'a [T],
    threads: usize,
    now_ms: N,
    f: F,
) -> Vec<(R, ChunkTiming)>
where
    T: Sync,
    R: Send,
    F: Fn(&'a [T]) -> R + Sync,
    N: Fn() -> u64 + Sync,
{
    let indexed: Vec<(usize, &'a [T])> = {
        let threads = threads.max(1);
        let chunk_size = items.len().div_ceil(threads).max(1);
        items.chunks(chunk_size).enumerate().collect()
    };
    map_items(&indexed, indexed.len(), |&(chunk, slice)| {
        let started_ms = now_ms();
        let result = f(slice);
        let timing = ChunkTiming {
            chunk,
            items: slice.len(),
            started_ms,
            elapsed_ms: now_ms().saturating_sub(started_ms),
        };
        (result, timing)
    })
}

/// Applies `f` to every item of `items` across at most `threads` scoped
/// worker threads, returning the per-item results in input order.
///
/// This is the primitive for stages whose unit of work is one item
/// (one URL to fetch, one feature combination to materialize).
pub fn map_items<'a, T, R, F>(items: &'a [T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    map_chunks(items, threads, |chunk| {
        chunk.iter().map(&f).collect::<Vec<R>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Like [`map_items`], but balances *uneven* work across workers using
/// the caller's per-item weight estimate instead of contiguous
/// equal-count chunks.
///
/// Contiguous chunking is optimal when items cost roughly the same; it
/// degrades badly when cost is skewed (e.g. mapping materialization,
/// where `ALL` unions every edge list and `NONE` only clones the base
/// forest) — the worker that drew the heavy chunk finishes last while
/// the rest idle. This helper assigns items to workers with the classic
/// LPT (longest-processing-time-first) greedy: items are considered in
/// descending weight (ties broken by input index, so the assignment is
/// deterministic), each going to the currently least-loaded worker
/// (ties to the lowest worker id). Every worker then processes its
/// items in *input order*, and results are returned in input order —
/// callers cannot observe the scheduling, only the wall-clock.
pub fn map_items_weighted<'a, T, R, F, W>(items: &'a [T], threads: usize, weight: W, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
    W: Fn(&T) -> u64,
{
    let threads = threads.max(1).min(items.len().max(1));
    // LPT assignment: heaviest first onto the least-loaded worker.
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(weight(&items[i])), i));
    let mut loads: Vec<u64> = vec![0; threads];
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); threads];
    for i in order {
        let worker = (0..threads)
            .min_by_key(|&w| (loads[w], w))
            .expect("at least one worker");
        loads[worker] += weight(&items[i]);
        assignment[worker].push(i);
    }
    // Per-worker input order keeps any per-worker side effects (none in
    // the workspace today) as predictable as the contiguous splitter's.
    for worker in &mut assignment {
        worker.sort_unstable();
    }
    let per_worker: Vec<Vec<(usize, R)>> = map_items(&assignment, threads, |indices| {
        indices.iter().map(|&i| (i, f(&items[i]))).collect()
    });
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, result) in per_worker.into_iter().flatten() {
        slots[i] = Some(result);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every input index is assigned exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 3, 7, 64] {
            let doubled = map_items(&items, threads, |x| x * 2);
            assert_eq!(doubled.len(), items.len());
            assert!(doubled.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
        }
    }

    #[test]
    fn chunk_results_concatenate_to_the_whole() {
        let items: Vec<usize> = (0..103).collect();
        let sums = map_chunks(&items, 4, |chunk| chunk.iter().sum::<usize>());
        assert_eq!(sums.len(), 4, "103 items over 4 threads → 4 chunks");
        assert_eq!(sums.iter().sum::<usize>(), items.iter().sum::<usize>());
    }

    #[test]
    fn empty_input_spawns_nothing() {
        let spawned = AtomicUsize::new(0);
        let out: Vec<u32> = map_chunks(&[] as &[u32], 8, |_chunk| {
            spawned.fetch_add(1, Ordering::Relaxed);
            0
        });
        assert!(out.is_empty());
        assert_eq!(spawned.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let items = [1, 2, 3];
        assert_eq!(map_items(&items, 0, |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = [5u32, 6];
        assert_eq!(map_items(&items, 32, |x| *x), vec![5, 6]);
    }

    #[test]
    fn timed_chunks_match_untimed_results_and_count_items() {
        let items: Vec<usize> = (0..103).collect();
        let plain = map_chunks(&items, 4, |chunk| chunk.iter().sum::<usize>());
        let ticks = AtomicUsize::new(0);
        let timed = map_chunks_timed(
            &items,
            4,
            || ticks.fetch_add(1, Ordering::Relaxed) as u64,
            |chunk| chunk.iter().sum::<usize>(),
        );
        let (sums, timings): (Vec<_>, Vec<_>) = timed.into_iter().unzip();
        assert_eq!(sums, plain);
        assert_eq!(timings.len(), 4);
        for (i, t) in timings.iter().enumerate() {
            assert_eq!(t.chunk, i, "timings arrive in chunk order");
        }
        assert_eq!(
            timings.iter().map(|t| t.items).sum::<usize>(),
            items.len(),
            "every item is in exactly one chunk"
        );
    }

    #[test]
    fn timed_chunks_under_a_frozen_clock_report_zero_elapsed() {
        let items: Vec<u32> = (0..10).collect();
        let timed = map_chunks_timed(&items, 2, || 42, |chunk| chunk.len());
        for (_, t) in timed {
            assert_eq!((t.started_ms, t.elapsed_ms), (42, 0));
        }
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        let items = [1u32, 2, 3, 4];
        map_items(&items, 2, |x| {
            if *x == 3 {
                panic!("worker boom");
            }
            *x
        });
    }

    #[test]
    fn weighted_results_match_sequential_in_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 2, 3, 7, 64] {
            // Strongly skewed weights must not perturb result order.
            let out = map_items_weighted(&items, threads, |&x| x * x, |x| x * 3);
            assert_eq!(out, expected, "diverged with {threads} threads");
        }
    }

    #[test]
    fn weighted_assignment_balances_skewed_loads() {
        // One huge item plus many small ones: contiguous chunking puts
        // the giant with a third of the small items on one worker; LPT
        // gives it a worker almost to itself.
        let weights: Vec<u64> = std::iter::once(1000u64)
            .chain((0..99).map(|_| 10))
            .collect();
        let threads = 4;
        // Replay the LPT assignment the helper documents and check the
        // resulting load spread.
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(weights[i]), i));
        let mut loads = vec![0u64; threads];
        for i in order {
            let w = (0..threads).min_by_key(|&w| (loads[w], w)).unwrap();
            loads[w] += weights[i];
        }
        let heaviest = *loads.iter().max().unwrap();
        let total: u64 = weights.iter().sum();
        assert!(
            heaviest <= 1000 + 10,
            "LPT keeps the giant nearly alone: {loads:?}"
        );
        assert!(heaviest * threads as u64 <= total * 3, "{loads:?}");
        // And the helper still evaluates every item exactly once, with
        // results in input order.
        let evaluated = AtomicUsize::new(0);
        let out = map_items_weighted(
            &weights,
            threads,
            |&w| w,
            |&w| {
                evaluated.fetch_add(1, Ordering::Relaxed);
                w
            },
        );
        assert_eq!(out, weights);
        assert_eq!(evaluated.load(Ordering::Relaxed), weights.len());
    }

    #[test]
    fn weighted_handles_degenerate_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = map_items_weighted(&empty, 8, |_| 1, |x| *x);
        assert!(out.is_empty());
        assert_eq!(
            map_items_weighted(&[9u32], 0, |_| 0, |x| x + 1),
            vec![10],
            "zero threads and zero weights clamp safely"
        );
    }

    #[test]
    fn borrowed_results_keep_input_lifetime() {
        // The 'a on map_items lets workers return references into items.
        let items: Vec<String> = (0..10).map(|i| i.to_string()).collect();
        let refs: Vec<&str> = map_items(&items, 3, |s| s.as_str());
        assert_eq!(refs[7], "7");
    }
}
