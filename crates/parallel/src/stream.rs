//! Bounded-concurrency streaming scheduler.
//!
//! The staged fan-out helpers in the crate root split a finished batch
//! into chunks; this module is the *streaming* front-end: a fixed pool
//! of workers pulls items off a deterministic work queue under a global
//! in-flight cap, per-key FIFO serialization, and an injectable
//! admission gate (per-host token buckets, in the crawl's case), and a
//! channel feeds completions to a consumer that sees them in canonical
//! input order via a [`ReassemblyBuffer`] — never in completion order.
//!
//! Two scheduling invariants carry the determinism story:
//!
//! 1. **Per-key FIFO serialization.** At most one item per key is in
//!    flight, and a key's items start in input order. Everything
//!    stateful about a crawl — fault episodes, breaker streaks, the
//!    fetch cache — is keyed per host, so serializing each key makes
//!    every per-key operation subsequence identical to a sequential
//!    run's. Cross-key interleaving remains free, which is where the
//!    I/O overlap comes from.
//! 2. **Canonical release order.** The consumer receives `(index,
//!    result)` strictly by index, whatever order completions arrive
//!    in, so downstream assembly is the same in-order fold the staged
//!    path runs.
//!
//! The scheduler itself never reads a clock: pacing ("wait this many
//! milliseconds before asking again") is delegated to the caller's
//! `sleep` closure, so tests run on a virtual clock and production
//! really sleeps — the same injection seam as `map_chunks_timed`'s
//! `now_ms`.
//!
//! This crate is dependency-free, so synchronization is `std` only.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};

/// Sizing knobs for [`stream_indexed`].
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Worker threads pulling from the queue (clamped to ≥ 1).
    pub workers: usize,
    /// Global cap on items started but not yet completed (clamped to
    /// ≥ 1). With blocking workers the effective in-flight count is
    /// also bounded by `workers`.
    pub max_in_flight: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            workers: 4,
            max_in_flight: 8,
        }
    }
}

/// What one [`stream_indexed`] run did — schedule-variant observability
/// (high-water marks, throttle spend) for the caller's worker-timing
/// ledger. Never feeds canonical outputs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamLedger {
    /// Items offered to the scheduler.
    pub items: usize,
    /// Items completed (always equals `items`: the queue drains).
    pub completed: usize,
    /// Highest concurrent in-flight count observed.
    pub in_flight_high_water: usize,
    /// Times a worker found work but the admission gate refused it.
    pub throttle_waits: u64,
    /// Total pacing-clock milliseconds workers were told to wait.
    pub throttle_wait_ms: u64,
    /// Highest number of out-of-order completions parked in the
    /// reassembly buffer.
    pub reassembly_high_water: usize,
    /// Items each worker completed (length = configured workers).
    pub per_worker: Vec<u64>,
}

/// Re-orders out-of-order completions into canonical index order.
///
/// `push` accepts `(index, value)` in any order and hands every
/// releasable value — the contiguous run starting at the next expected
/// index — to the `release` callback, in order. Duplicate or
/// already-released indices are a caller bug and panic.
#[derive(Debug)]
pub struct ReassemblyBuffer<T> {
    next: usize,
    parked: BTreeMap<usize, T>,
    high_water: usize,
}

impl<T> Default for ReassemblyBuffer<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ReassemblyBuffer<T> {
    /// An empty buffer expecting index 0 first.
    pub fn new() -> Self {
        ReassemblyBuffer {
            next: 0,
            parked: BTreeMap::new(),
            high_water: 0,
        }
    }

    /// Accepts one completion and releases every value that is now in
    /// order. Panics on an index that was already pushed or released.
    pub fn push(&mut self, index: usize, value: T, mut release: impl FnMut(usize, T)) {
        assert!(
            index >= self.next,
            "index {index} already released (next expected: {})",
            self.next
        );
        if index == self.next {
            release(index, value);
            self.next += 1;
            while let Some(parked) = self.parked.remove(&self.next) {
                release(self.next, parked);
                self.next += 1;
            }
        } else if self.parked.insert(index, value).is_some() {
            panic!("index {index} pushed twice");
        } else {
            self.high_water = self.high_water.max(self.parked.len());
        }
    }

    /// The next index the buffer will release.
    pub fn next_expected(&self) -> usize {
        self.next
    }

    /// Completions currently parked out of order.
    pub fn parked(&self) -> usize {
        self.parked.len()
    }

    /// Highest parked count observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Whether nothing is parked (every pushed value was released).
    pub fn is_drained(&self) -> bool {
        self.parked.is_empty()
    }
}

/// Scheduler state shared by the worker pool.
struct SchedState {
    /// Pending item indices per key, input order. The front of a
    /// key's queue is its only startable item.
    queues: HashMap<u64, VecDeque<usize>>,
    /// Startable items: the front of every key whose previous item
    /// (if any) has completed. Ordered, so claims are
    /// lowest-index-first — a deterministic queue discipline.
    ready: BTreeSet<usize>,
    in_flight: usize,
    /// Items not yet completed (claimed or not).
    outstanding: usize,
    high_water: usize,
    throttle_waits: u64,
    throttle_wait_ms: u64,
}

/// Runs every item of `items` through `work` on a bounded worker pool
/// and feeds the results to `consume` in canonical input order.
///
/// * `key_of` buckets items for FIFO serialization (per host, for a
///   crawl): at most one item per key in flight, started in input
///   order.
/// * `admit` is the admission gate, called under the scheduler lock
///   right before an item would start: `Ok(())` admits (and may
///   consume a rate token), `Err(wait_ms)` refuses and names the
///   earliest pacing time worth retrying at. Gates must be cheap and
///   never block.
/// * `sleep` waits out an admission refusal on the caller's pacing
///   clock (virtual in tests, real in production).
/// * `work` runs outside the lock on a worker thread.
/// * `consume` runs on the caller's thread, strictly in index order.
///
/// Completion-order nondeterminism is confined to the [`StreamLedger`];
/// everything `consume` observes is schedule-independent.
pub fn stream_indexed<T, R>(
    items: &[T],
    config: &StreamConfig,
    key_of: impl Fn(&T) -> u64 + Sync,
    admit: impl Fn(u64, &T) -> Result<(), u64> + Sync,
    sleep: impl Fn(u64) + Sync,
    work: impl Fn(usize, &T) -> R + Sync,
    mut consume: impl FnMut(usize, R),
) -> StreamLedger
where
    T: Sync,
    R: Send,
{
    let workers = config.workers.max(1);
    let max_in_flight = config.max_in_flight.max(1);
    let mut ledger = StreamLedger {
        items: items.len(),
        per_worker: vec![0; workers],
        ..StreamLedger::default()
    };
    if items.is_empty() {
        return ledger;
    }

    let mut queues: HashMap<u64, VecDeque<usize>> = HashMap::new();
    for (index, item) in items.iter().enumerate() {
        queues.entry(key_of(item)).or_default().push_back(index);
    }
    let ready: BTreeSet<usize> = queues.values().map(|q| q[0]).collect();
    let state = Mutex::new(SchedState {
        queues,
        ready,
        in_flight: 0,
        outstanding: items.len(),
        high_water: 0,
        throttle_waits: 0,
        throttle_wait_ms: 0,
    });
    let wakeup = Condvar::new();
    let (tx, rx) = mpsc::channel::<(usize, R)>();

    let worker_counts: Vec<Mutex<u64>> = (0..workers).map(|_| Mutex::new(0)).collect();

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let tx = tx.clone();
            let state = &state;
            let wakeup = &wakeup;
            let key_of = &key_of;
            let admit = &admit;
            let sleep = &sleep;
            let work = &work;
            let counts = &worker_counts;
            scope.spawn(move || {
                loop {
                    // Claim phase: find the lowest-index startable,
                    // admissible item, or learn why we cannot.
                    let claimed = {
                        let mut guard = state.lock().expect("scheduler lock");
                        loop {
                            if guard.outstanding == 0 {
                                return;
                            }
                            let mut chosen = None;
                            let mut min_wait: Option<u64> = None;
                            if guard.in_flight < max_in_flight {
                                for &index in guard.ready.iter() {
                                    let key = key_of(&items[index]);
                                    match admit(key, &items[index]) {
                                        Ok(()) => {
                                            chosen = Some(index);
                                            break;
                                        }
                                        Err(wait_ms) => {
                                            let wait_ms = wait_ms.max(1);
                                            min_wait = Some(match min_wait {
                                                Some(w) => w.min(wait_ms),
                                                None => wait_ms,
                                            });
                                        }
                                    }
                                }
                            }
                            if let Some(index) = chosen {
                                guard.ready.remove(&index);
                                let key = key_of(&items[index]);
                                let queue =
                                    guard.queues.get_mut(&key).expect("claimed key has a queue");
                                let head = queue.pop_front();
                                debug_assert_eq!(head, Some(index));
                                guard.in_flight += 1;
                                guard.high_water = guard.high_water.max(guard.in_flight);
                                break Some(index);
                            }
                            if let Some(wait_ms) = min_wait {
                                // Everything startable is throttled:
                                // wait out the nearest token on the
                                // pacing clock, without the lock.
                                guard.throttle_waits += 1;
                                guard.throttle_wait_ms += wait_ms;
                                drop(guard);
                                sleep(wait_ms);
                                guard = state.lock().expect("scheduler lock");
                                continue;
                            }
                            // Nothing startable: every pending key is
                            // busy or the in-flight cap is reached. A
                            // completion will wake us.
                            guard = wakeup.wait(guard).expect("scheduler lock");
                        }
                    };
                    let Some(index) = claimed else { return };

                    let result = work(index, &items[index]);

                    {
                        let mut guard = state.lock().expect("scheduler lock");
                        guard.in_flight -= 1;
                        guard.outstanding -= 1;
                        let key = key_of(&items[index]);
                        if let Some(queue) = guard.queues.get(&key) {
                            if let Some(&next_head) = queue.front() {
                                guard.ready.insert(next_head);
                            }
                        }
                        wakeup.notify_all();
                    }
                    *counts[worker].lock().expect("worker count lock") += 1;
                    if tx.send((index, result)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(tx);

        // Consumer: canonical-order release on the caller's thread,
        // overlapping with whatever is still in flight.
        let mut buffer = ReassemblyBuffer::new();
        let mut released = 0usize;
        for (index, result) in rx {
            buffer.push(index, result, |i, r| {
                consume(i, r);
                released += 1;
            });
        }
        assert_eq!(released, items.len(), "every item releases exactly once");
        assert!(buffer.is_drained());
        ledger.completed = released;
        ledger.reassembly_high_water = buffer.high_water();
    });

    let guard = state.into_inner().expect("scheduler lock");
    ledger.in_flight_high_water = guard.high_water;
    ledger.throttle_waits = guard.throttle_waits;
    ledger.throttle_wait_ms = guard.throttle_wait_ms;
    ledger.per_worker = worker_counts
        .into_iter()
        .map(|c| c.into_inner().expect("worker count lock"))
        .collect();
    ledger
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn releases_in_canonical_order_for_every_permutation() {
        // Exhaustive: every completion order of 6 items releases
        // 0,1,2,...,5 — the reassembly contract, not sampled but proven
        // for this size (Heap's algorithm, no deps).
        let mut order: Vec<usize> = (0..6).collect();
        let mut stack = [0usize; 6];
        let check = |perm: &[usize]| {
            let mut buffer = ReassemblyBuffer::new();
            let mut released = Vec::new();
            for &index in perm {
                buffer.push(index, index * 10, |i, v| {
                    assert_eq!(v, i * 10);
                    released.push(i);
                });
            }
            assert_eq!(released, (0..6).collect::<Vec<_>>());
            assert!(buffer.is_drained());
        };
        check(&order);
        let mut i = 1;
        while i < order.len() {
            if stack[i] < i {
                if i % 2 == 0 {
                    order.swap(0, i);
                } else {
                    order.swap(stack[i], i);
                }
                check(&order);
                stack[i] += 1;
                i = 1;
            } else {
                stack[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn buffer_tracks_high_water_and_next_expected() {
        let mut buffer = ReassemblyBuffer::new();
        let mut out = Vec::new();
        buffer.push(2, "c", |_, v| out.push(v));
        buffer.push(1, "b", |_, v| out.push(v));
        assert_eq!(buffer.parked(), 2);
        assert_eq!(buffer.next_expected(), 0);
        assert!(out.is_empty());
        buffer.push(0, "a", |_, v| out.push(v));
        assert_eq!(out, vec!["a", "b", "c"]);
        assert_eq!(buffer.high_water(), 2);
        assert_eq!(buffer.next_expected(), 3);
    }

    #[test]
    #[should_panic(expected = "pushed twice")]
    fn duplicate_push_panics() {
        let mut buffer = ReassemblyBuffer::new();
        buffer.push(5, (), |_, _| {});
        buffer.push(5, (), |_, _| {});
    }

    #[test]
    fn streams_everything_in_order_across_configs() {
        let items: Vec<u64> = (0..200).collect();
        for config in [
            StreamConfig {
                workers: 1,
                max_in_flight: 1,
            },
            StreamConfig {
                workers: 4,
                max_in_flight: 2,
            },
            StreamConfig {
                workers: 8,
                max_in_flight: 64,
            },
        ] {
            let mut seen = Vec::new();
            let ledger = stream_indexed(
                &items,
                &config,
                |item| item % 7, // several items share each key
                |_, _| Ok(()),
                |_| {},
                |index, item| index as u64 + item,
                |index, result| seen.push((index, result)),
            );
            assert_eq!(ledger.completed, items.len());
            assert_eq!(seen.len(), items.len());
            for (position, (index, result)) in seen.iter().enumerate() {
                assert_eq!(*index, position, "canonical release order");
                assert_eq!(*result, 2 * *index as u64);
            }
            assert!(ledger.in_flight_high_water <= config.max_in_flight.max(1));
            assert_eq!(
                ledger.per_worker.iter().sum::<u64>(),
                items.len() as u64,
                "every completion is attributed to a worker"
            );
        }
    }

    #[test]
    fn per_key_items_never_overlap_and_run_fifo() {
        // 40 items over 4 keys; track concurrent per-key execution and
        // per-key start order.
        let items: Vec<u64> = (0..40).map(|i| i % 4).collect();
        let running: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        let starts: Mutex<Vec<Vec<usize>>> = Mutex::new(vec![Vec::new(); 4]);
        let config = StreamConfig {
            workers: 8,
            max_in_flight: 8,
        };
        stream_indexed(
            &items,
            &config,
            |item| *item,
            |_, _| Ok(()),
            |_| {},
            |index, item| {
                let key = *item as usize;
                starts.lock().unwrap()[key].push(index);
                let now = running[key].fetch_add(1, Ordering::SeqCst);
                assert_eq!(now, 0, "key {key} ran two items concurrently");
                std::thread::yield_now();
                running[key].fetch_sub(1, Ordering::SeqCst);
            },
            |_, _| {},
        );
        for (key, key_starts) in starts.into_inner().unwrap().into_iter().enumerate() {
            let expected: Vec<usize> = (0..40).filter(|i| i % 4 == key).collect();
            assert_eq!(key_starts, expected, "key {key} started out of input order");
        }
    }

    #[test]
    fn in_flight_cap_is_respected() {
        let items: Vec<u64> = (0..50).collect();
        let in_flight = AtomicUsize::new(0);
        let config = StreamConfig {
            workers: 8,
            max_in_flight: 3,
        };
        let ledger = stream_indexed(
            &items,
            &config,
            |item| *item, // all keys distinct: the cap is the only brake
            |_, _| Ok(()),
            |_| {},
            |_, _| {
                let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                assert!(now <= 3, "cap violated: {now} in flight");
                std::thread::yield_now();
                in_flight.fetch_sub(1, Ordering::SeqCst);
            },
            |_, _| {},
        );
        assert!(ledger.in_flight_high_water <= 3);
        assert_eq!(ledger.completed, 50);
    }

    #[test]
    fn throttled_admission_waits_and_still_drains() {
        // A gate that refuses each key's first ask, then admits: the
        // scheduler must spend waits on the virtual pacing clock and
        // still complete everything.
        let items: Vec<u64> = (0..30).collect();
        let asked: Mutex<std::collections::HashSet<u64>> =
            Mutex::new(std::collections::HashSet::new());
        let virtual_ms = AtomicU64::new(0);
        let config = StreamConfig {
            workers: 4,
            max_in_flight: 4,
        };
        let mut seen = 0usize;
        let ledger = stream_indexed(
            &items,
            &config,
            |item| item % 5,
            |key, _| {
                if asked.lock().unwrap().insert(key) {
                    Err(7)
                } else {
                    Ok(())
                }
            },
            |ms| {
                virtual_ms.fetch_add(ms, Ordering::SeqCst);
            },
            |index, _| index,
            |_, _| seen += 1,
        );
        assert_eq!(seen, 30);
        assert!(ledger.throttle_waits >= 1);
        assert_eq!(ledger.throttle_wait_ms, virtual_ms.load(Ordering::SeqCst));
    }

    #[test]
    fn empty_input_spawns_nothing() {
        let items: Vec<u64> = Vec::new();
        let ledger = stream_indexed(
            &items,
            &StreamConfig::default(),
            |item| *item,
            |_, _| Ok(()),
            |_| {},
            |_, _| (),
            |_, _| panic!("no items to consume"),
        );
        assert_eq!(
            ledger,
            StreamLedger {
                items: 0,
                per_worker: vec![0; 4],
                ..StreamLedger::default()
            }
        );
    }
}
