//! CAIDA AS2Org (Cai et al., IMC 2010): the WHOIS-only baseline.
//!
//! AS2Org groups ASNs under the organization identifiers of RIR
//! allocation databases. It covers *every* allocated network (delegation
//! is compulsory) but sees only legal/contractual boundaries — which is
//! why CenturyLink-AS209 and Level3-AS3356 still sit in different AS2Org
//! clusters a decade after their merger (Fig. 3 of the Borges paper).

use borges_core::orgkeys::oid_w_mapping;
use borges_core::AsOrgMapping;
use borges_whois::WhoisRegistry;

/// Builds the AS2Org mapping from a WHOIS registry.
pub fn as2org(whois: &WhoisRegistry) -> AsOrgMapping {
    oid_w_mapping(whois)
}

#[cfg(test)]
mod tests {
    use super::*;
    use borges_synthnet::{GeneratorConfig, SyntheticInternet};
    use borges_types::Asn;

    #[test]
    fn covers_every_delegated_asn() {
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(5));
        let m = as2org(&world.whois);
        assert_eq!(m.asn_count(), world.whois.asn_count());
    }

    #[test]
    fn misses_the_lumen_merger() {
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(5));
        let m = as2org(&world.whois);
        assert!(
            !m.same_org(Asn::new(3356), Asn::new(209)),
            "AS2Org must reproduce the Fig. 3 blind spot"
        );
    }

    #[test]
    fn keeps_whois_consolidations() {
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(5));
        let m = as2org(&world.whois);
        // Global Crossing was folded into Level3's WHOIS org long ago.
        assert!(m.same_org(Asn::new(3356), Asn::new(3549)));
    }
}
