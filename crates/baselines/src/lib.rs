//! # borges-baselines
//!
//! The comparison methods of §5:
//!
//! * [`as2org()`] — CAIDA's long-standing AS2Org: group ASNs by WHOIS
//!   organization identifier (`OID_W`). The θ = 0.3343 baseline of
//!   Table 6.
//! * [`as2orgplus()`] — Arturi et al.'s *as2org+*: AS2Org enriched with
//!   PeeringDB. Its published methodology extracts sibling ASNs from
//!   `notes`/`aka` with regular expressions plus heavy manual curation;
//!   since Borges is evaluated fully automated, §5.1 compares against the
//!   automated configuration (organization keys only). The regex
//!   extractor is implemented too — it is the instructive comparator for
//!   the LLM stage, with exactly the false-positive families the paper
//!   blames on it (phone numbers, years, addresses misread as ASNs).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod as2org;
pub mod as2orgplus;

pub use as2org::as2org;
pub use as2orgplus::{as2orgplus, regex_extract, As2orgPlusConfig};
