//! *as2org+* (Arturi et al., PAM 2023): AS2Org enriched with PeeringDB.
//!
//! Two configurations are implemented:
//!
//! * [`As2orgPlusConfig::automated`] — the §5.1 comparison setup: AS2Org
//!   plus the PeeringDB organization key, with every manual step removed.
//!   This is the "as2org+" row of Table 6 (θ = 0.3467 in the paper).
//! * [`As2orgPlusConfig::with_regex`] — additionally runs the published
//!   regex sibling extraction over `notes`/`aka`. Deliberately faithful
//!   to its failure modes: the regexes have no semantic context, so phone
//!   numbers, years, street addresses and upstream listings become
//!   sibling "evidence" — the false positives that forced the original
//!   system into manual curation and that Borges's LLM stage eliminates.

use borges_core::orgkeys::{oid_p_groups, oid_w_groups};
use borges_core::{AsOrgMapping, UnionFind};
use borges_peeringdb::PdbSnapshot;
use borges_types::Asn;
use borges_whois::WhoisRegistry;
use std::collections::BTreeSet;

/// Configuration of the as2org+ reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct As2orgPlusConfig {
    /// Merge PeeringDB organization keys (`OID_P`).
    pub use_oid_p: bool,
    /// Run the regex sibling extraction over `notes`/`aka`.
    pub regex_extraction: bool,
    /// With regex extraction: also harvest bare (un-prefixed) numbers,
    /// the noisiest part of the published pipeline.
    pub bare_numbers: bool,
}

impl As2orgPlusConfig {
    /// The fully automated configuration used for the paper's comparison
    /// (§5.1): organization keys only.
    pub const fn automated() -> Self {
        As2orgPlusConfig {
            use_oid_p: true,
            regex_extraction: false,
            bare_numbers: false,
        }
    }

    /// The published pipeline including regex extraction (without the
    /// human curation that normally follows it).
    pub const fn with_regex() -> Self {
        As2orgPlusConfig {
            use_oid_p: true,
            regex_extraction: true,
            bare_numbers: true,
        }
    }
}

/// The rule-based sibling extraction of as2org+: pattern-matched ASNs
/// with no semantic context.
///
/// * `AS`/`ASN`-prefixed digit runs are always harvested;
/// * with `bare_numbers`, any digit run of 2–7 digits is harvested too
///   (this is where years and phone fragments come from).
///
/// Only basic validity filtering is applied (routable 32-bit ASN) —
/// context does not exist in a regex.
pub fn regex_extract(subject: Asn, notes: &str, aka: &str, bare_numbers: bool) -> Vec<Asn> {
    let mut out = BTreeSet::new();
    for text in [notes, aka] {
        let lower = text.to_lowercase();
        let bytes = lower.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i].is_ascii_digit() {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let run = &lower[start..i];
                if run.len() > 10 {
                    continue;
                }
                let value: u32 = match run.parse() {
                    Ok(v) => v,
                    Err(_) => continue,
                };
                let prefixed = has_as_prefix(&lower, start);
                let asn = Asn::new(value);
                if asn == subject || !asn.is_routable() {
                    continue;
                }
                if prefixed || (bare_numbers && (2..=7).contains(&run.len())) {
                    out.insert(asn);
                }
            } else {
                i += 1;
            }
        }
    }
    out.into_iter().collect()
}

fn has_as_prefix(lower: &str, start: usize) -> bool {
    let head = lower[..start].trim_end_matches([' ', '-', ':', '#']);
    let bytes = head.as_bytes();
    let check = |word: &str| {
        head.ends_with(word)
            && (head.len() == word.len()
                || !bytes[head.len() - word.len() - 1].is_ascii_alphanumeric())
    };
    check("as") || check("asn")
}

/// Builds the as2org+ mapping.
pub fn as2orgplus(
    whois: &WhoisRegistry,
    pdb: &PdbSnapshot,
    config: As2orgPlusConfig,
) -> AsOrgMapping {
    let allocated: BTreeSet<Asn> = whois.all_asns().chain(pdb.nets().map(|n| n.asn)).collect();
    let mut uf = UnionFind::with_universe(allocated.iter().copied());
    for group in oid_w_groups(whois) {
        uf.union_group(&group);
    }
    if config.use_oid_p {
        for group in oid_p_groups(pdb) {
            uf.union_group(&group);
        }
    }
    if config.regex_extraction {
        for net in pdb.nets() {
            for sibling in regex_extract(net.asn, &net.notes, &net.aka, config.bare_numbers) {
                if allocated.contains(&sibling) {
                    uf.union(net.asn, sibling);
                }
            }
        }
    }
    AsOrgMapping::from_union_find(uf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use borges_synthnet::{GeneratorConfig, SyntheticInternet};

    fn a(n: u32) -> Asn {
        Asn::new(n)
    }

    #[test]
    fn regex_finds_prefixed_asns() {
        let got = regex_extract(a(1), "Siblings: AS209 and AS3356.", "", false);
        assert_eq!(got, vec![a(209), a(3356)]);
    }

    #[test]
    fn regex_misreads_upstream_listings() {
        // The Maxihost case (Listing 1): regexes cannot tell upstreams
        // from siblings — the LLM can.
        let notes = "We connect directly with the following ISPs,\n- Cogent (AS174)";
        let got = regex_extract(a(262287), notes, "", false);
        assert_eq!(
            got,
            vec![a(174)],
            "as2org+ must exhibit this false positive"
        );
    }

    #[test]
    fn regex_bare_numbers_misread_years_and_phones() {
        let notes = "Founded 1998. NOC phone 555 0100.";
        let got = regex_extract(a(1), notes, "", true);
        assert!(
            got.contains(&a(1998)),
            "the year-as-ASN false positive: {got:?}"
        );
    }

    #[test]
    fn regex_without_bare_numbers_is_quieter() {
        let notes = "Founded 1998. NOC phone 555 0100.";
        assert!(regex_extract(a(1), notes, "", false).is_empty());
    }

    #[test]
    fn automated_config_is_keys_only() {
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(5));
        let m = as2orgplus(&world.whois, &world.pdb, As2orgPlusConfig::automated());
        // OID_P merges Lumen (Fig. 3)…
        assert!(m.same_org(a(3356), a(209)));
        // …but text-only evidence (Deutsche Telekom's notes) is not used.
        assert!(!m.same_org(a(3320), a(5483)));
    }

    #[test]
    fn as2orgplus_groups_at_least_as_much_as_as2org() {
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(5));
        let base = crate::as2org(&world.whois);
        let plus = as2orgplus(&world.whois, &world.pdb, As2orgPlusConfig::automated());
        assert!(plus.org_count() <= base.org_count());
    }

    #[test]
    fn regex_config_merges_more_but_wrongly() {
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(5));
        let automated = as2orgplus(&world.whois, &world.pdb, As2orgPlusConfig::automated());
        let with_regex = as2orgplus(&world.whois, &world.pdb, As2orgPlusConfig::with_regex());
        assert!(
            with_regex.org_count() <= automated.org_count(),
            "regex evidence can only merge further"
        );
        // And some of those merges are wrong: a network mentioning its
        // upstream (AS174, Cogent) gets fused with it.
        let mut wrong = 0;
        for (_, members) in with_regex.clusters() {
            for pair in members.windows(2) {
                if !world.truth.are_siblings(pair[0], pair[1])
                    && world.truth.org_of(pair[0]).is_some()
                    && world.truth.org_of(pair[1]).is_some()
                    && !automated.same_org(pair[0], pair[1])
                {
                    wrong += 1;
                }
            }
        }
        assert!(wrong > 0, "the regex baseline should make wrong merges");
    }
}
