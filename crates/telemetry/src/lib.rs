//! Deterministic observability for the Borges pipeline.
//!
//! Three layers, one handle:
//!
//! - **Spans** ([`span`]): hierarchical, clock-injected trace of what a
//!   run did, canonicalizable to a schedule-independent journal.
//! - **Metrics** ([`metrics`]): named counters and fixed-bucket duration
//!   histograms with snapshot/merge/Prometheus exposition.
//! - **Ledger** ([`report`]): the [`RunReport`] document unifying stage
//!   funnels, coverage, resilience spend, caches, breaker events, and
//!   worker timings.
//!
//! The [`Telemetry`] handle is cheap to clone, thread-safe, and has a
//! [`Telemetry::disabled`] state in which every operation is a no-op —
//! uninstrumented callers pay one branch. Time comes from an injected
//! [`borges_resilience::Clock`]; under [`borges_resilience::SimClock`]
//! (the default for tests and simulation) a fault-free run is *fully
//! deterministic*: all timestamps are zero, and sequential vs. parallel
//! execution produce byte-identical canonical trace journals and metrics
//! snapshots. That determinism contract is the keystone — see DESIGN.md
//! §8 — and is pinned by `tests/telemetry.rs` at the workspace root.

#![deny(missing_docs)]

pub mod access;
pub mod ingest;
pub mod metrics;
pub mod report;
pub mod span;
pub mod verbosity;

pub use access::{duration_bucket_label, AccessLogWriter, AccessRecord, RingBuffer};
pub use metrics::{
    escape_label_value, labeled, CounterSample, Histogram, HistogramSample, MetricsRegistry,
    MetricsSnapshot, DURATION_BUCKETS_MS,
};
pub use report::{
    BreakerEvent, CacheReport, CacheStats, CoverageRow, CrawlFunnel, DeltaEdgeRow, DeltaRecordRow,
    DeltaReport, EvidenceSummary, FaviconFunnel, NerFunnel, ResilienceRow, RrFunnel, RunReport,
    TimelineReport, WorkerTiming, RUN_REPORT_SCHEMA,
};
pub use span::{
    canonicalize, to_jsonl, CanonicalSpan, Span, SpanField, SpanKind, SpanRecord, TraceSink,
};
pub use verbosity::{Narrator, Verbosity};

use borges_resilience::{Clock, SimClock};
use parking_lot::Mutex;
use std::sync::Arc;

/// The shared observability context for one pipeline run.
///
/// Clone it freely — all clones share the same sink, registry, and clock.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

struct Inner {
    clock: Arc<dyn Clock>,
    trace: TraceSink,
    metrics: MetricsRegistry,
    breaker_events: Mutex<Vec<BreakerEvent>>,
    workers: Mutex<Vec<WorkerTiming>>,
    narrator: Narrator,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// An enabled context on the given clock and narration level.
    pub fn new(clock: Arc<dyn Clock>, verbosity: Verbosity) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                clock,
                trace: TraceSink::new(),
                metrics: MetricsRegistry::new(),
                breaker_events: Mutex::new(Vec::new()),
                workers: Mutex::new(Vec::new()),
                narrator: Narrator::new(verbosity),
            })),
        }
    }

    /// An enabled context on a fresh [`SimClock`] — the deterministic
    /// default for tests and simulation runs.
    pub fn sim(verbosity: Verbosity) -> Self {
        Telemetry::new(Arc::new(SimClock::new()), verbosity)
    }

    /// The no-op context: every operation is a cheap branch.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this context records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    pub(crate) fn with_inner<T>(&self, f: impl FnOnce(&Inner) -> T) -> Option<T> {
        self.inner.as_deref().map(f)
    }

    /// The context's clock (a fresh [`SimClock`] when disabled), for
    /// sharing with retry wrappers so trace timestamps and backoff spend
    /// agree.
    pub fn clock(&self) -> Arc<dyn Clock> {
        match &self.inner {
            Some(inner) => inner.clock.clone(),
            None => Arc::new(SimClock::new()),
        }
    }

    /// Current clock reading (0 when disabled).
    pub fn now_ms(&self) -> u64 {
        self.with_inner(|i| i.clock.now_ms()).unwrap_or(0)
    }

    /// Opens a root logical span.
    pub fn span(&self, name: &str) -> Span {
        Span::open(self, None, name, SpanKind::Logical)
    }

    /// Adds `delta` to a named counter.
    pub fn counter(&self, name: &str, delta: u64) {
        self.with_inner(|i| i.metrics.counter(name, delta));
    }

    /// Records a duration observation in a named histogram.
    pub fn observe_ms(&self, name: &str, ms: u64) {
        self.with_inner(|i| i.metrics.observe_ms(name, ms));
    }

    /// Freezes the metrics registry.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.with_inner(|i| i.metrics.snapshot())
            .unwrap_or_default()
    }

    /// Records a breaker state transition.
    pub fn record_breaker_event(&self, event: BreakerEvent) {
        self.with_inner(|i| i.breaker_events.lock().push(event));
    }

    /// All breaker transitions recorded so far, in arrival order.
    pub fn breaker_events(&self) -> Vec<BreakerEvent> {
        self.with_inner(|i| i.breaker_events.lock().clone())
            .unwrap_or_default()
    }

    /// Records one parallel chunk's timing.
    pub fn record_worker(&self, timing: WorkerTiming) {
        self.with_inner(|i| i.workers.lock().push(timing));
    }

    /// All chunk timings recorded so far, in arrival order.
    pub fn worker_timings(&self) -> Vec<WorkerTiming> {
        self.with_inner(|i| i.workers.lock().clone())
            .unwrap_or_default()
    }

    /// All finished spans, in completion order.
    pub fn trace_records(&self) -> Vec<SpanRecord> {
        self.with_inner(|i| i.trace.records()).unwrap_or_default()
    }

    /// The raw trace journal as JSONL (completion order, full records).
    pub fn trace_jsonl(&self) -> String {
        to_jsonl(&self.trace_records())
    }

    /// The canonical trace journal as JSONL: logical spans only, no ids,
    /// sorted — byte-identical across execution schedules.
    pub fn trace_jsonl_canonical(&self) -> String {
        to_jsonl(&canonicalize(&self.trace_records()))
    }

    /// The narration level (Quiet when disabled).
    pub fn verbosity(&self) -> Verbosity {
        self.with_inner(|i| i.narrator.level())
            .unwrap_or(Verbosity::Quiet)
    }

    /// Narrates an error (never silenced; no-op only when disabled).
    pub fn error(&self, msg: impl AsRef<str>) {
        self.with_inner(|i| i.narrator.error(msg.as_ref()));
    }

    /// Narrates at normal level.
    pub fn info(&self, msg: impl AsRef<str>) {
        self.with_inner(|i| i.narrator.info(msg.as_ref()));
    }

    /// Narrates at `-v` level.
    pub fn verbose(&self, msg: impl AsRef<str>) {
        self.with_inner(|i| i.narrator.verbose(msg.as_ref()));
    }

    /// Narrates at `-vv` level.
    pub fn debug(&self, msg: impl AsRef<str>) {
        self.with_inner(|i| i.narrator.debug(msg.as_ref()));
    }

    /// Every narration line actually emitted.
    pub fn narration(&self) -> Vec<String> {
        self.with_inner(|i| i.narrator.emitted())
            .unwrap_or_default()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let tel = Telemetry::sim(Verbosity::Quiet);
        let other = tel.clone();
        other.counter("x_total", 2);
        tel.counter("x_total", 1);
        assert_eq!(tel.metrics_snapshot().counter("x_total"), 3);
        {
            let _span = other.span("run");
        }
        assert_eq!(tel.trace_records().len(), 1);
    }

    #[test]
    fn disabled_context_is_inert_everywhere() {
        let tel = Telemetry::disabled();
        tel.counter("x_total", 1);
        tel.observe_ms("y_ms", 5);
        tel.record_breaker_event(BreakerEvent::default());
        tel.record_worker(WorkerTiming::default());
        tel.info("nope");
        assert_eq!(tel.metrics_snapshot(), MetricsSnapshot::default());
        assert!(tel.breaker_events().is_empty());
        assert!(tel.worker_timings().is_empty());
        assert!(tel.narration().is_empty());
        assert_eq!(tel.now_ms(), 0);
        assert_eq!(tel.verbosity(), Verbosity::Quiet);
    }

    #[test]
    fn telemetry_clock_drives_span_timestamps() {
        let tel = Telemetry::sim(Verbosity::Quiet);
        let clock = tel.clock();
        {
            let span = tel.span("run");
            clock.sleep_ms(250);
            let _inner = span.child("stage");
            clock.sleep_ms(50);
        }
        let records = tel.trace_records();
        let stage = records.iter().find(|r| r.path == "run/stage").unwrap();
        assert_eq!((stage.start_ms, stage.end_ms), (250, 300));
        let run = records.iter().find(|r| r.path == "run").unwrap();
        assert_eq!((run.start_ms, run.end_ms), (0, 300));
    }

    #[test]
    fn contexts_are_send_and_sync() {
        fn check<T: Send + Sync + Clone>() {}
        check::<Telemetry>();
    }
}
