//! Named counters and fixed-bucket duration histograms.
//!
//! The [`MetricsRegistry`] is the live, thread-safe store the pipeline
//! increments; a [`MetricsSnapshot`] is its frozen, serializable,
//! comparable form. Snapshots merge with `+=` using the same
//! full-destructure idiom as the stats structs — adding a field without
//! deciding how it merges is a compile error — and render to
//! Prometheus-style text exposition for scrape-compatible output.
//!
//! Naming convention (pinned in DESIGN.md §8): counters are
//! `borges_<stage>_<what>_total`, duration histograms are
//! `borges_<stage>_<what>_ms`. All durations are integer milliseconds on
//! the injected clock, so a `SimClock` run observes exact, reproducible
//! values.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::AddAssign;

/// Upper bounds (inclusive, milliseconds) of the duration buckets every
/// histogram uses. An implicit `+Inf` bucket follows the last bound.
pub const DURATION_BUCKETS_MS: [u64; 10] = [1, 5, 10, 50, 100, 500, 1_000, 5_000, 10_000, 60_000];

/// Escapes a label value for Prometheus text exposition: backslash,
/// double quote, and newline are the three characters the format
/// reserves inside a quoted label value.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Builds the registry key for a labeled series: `family{k="v",...}`
/// with values escaped. Labels are rendered in the order given — pass
/// them in a fixed order so the same series always gets the same key.
pub fn labeled(family: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return family.to_string();
    }
    let mut out = String::with_capacity(family.len() + 16 * labels.len());
    out.push_str(family);
    out.push('{');
    for (i, (key, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(key);
        out.push_str("=\"");
        out.push_str(&escape_label_value(value));
        out.push('"');
    }
    out.push('}');
    out
}

/// Splits a series name into its bare family and the label body (the
/// text between the braces, if any).
fn split_family(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((family, rest)) => (family, Some(rest.trim_end_matches('}'))),
        None => (name, None),
    }
}

/// Deterministic `# HELP` text for a metric family: a curated line for
/// the families operators actually dashboard, a suffix-derived generic
/// otherwise. A lookup (not registry state) so the exposition stays
/// byte-identical across runs and `MetricsSnapshot`'s serde schema —
/// pinned by the RunReport golden files — is untouched.
fn help_for(family: &str) -> &'static str {
    match family {
        "borges_serve_accepted_total" => "Connections accepted by the listener.",
        "borges_serve_served_total" => "Requests dequeued and handled by a worker.",
        "borges_serve_shed_total" => "Connections shed with 503 because the accept queue was full.",
        "borges_serve_reloads_total" => "Successful hot world reloads.",
        "borges_serve_slow_total" => "Requests slower than the configured --slow-ms threshold.",
        "borges_serve_latency_ms" => "Request handling latency by route, milliseconds.",
        "borges_serve_status_total" => "Responses by HTTP status code.",
        "borges_serve_world_digest" => "Serving world content digest (value is the install count).",
        _ => {
            if family.ends_with("_ms") {
                "Duration histogram, milliseconds."
            } else if family.ends_with("_total") {
                "Monotone event counter."
            } else {
                "Borges metric."
            }
        }
    }
}

const BUCKETS: usize = DURATION_BUCKETS_MS.len() + 1;

/// A fixed-bucket duration histogram: per-bucket counts (not cumulative),
/// total count, and total sum in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_ms: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum_ms: 0,
        }
    }
}

impl Histogram {
    /// The bucket a value falls into: the first bound `b` with
    /// `ms <= b`, or the trailing `+Inf` bucket.
    pub fn bucket_index(ms: u64) -> usize {
        DURATION_BUCKETS_MS
            .iter()
            .position(|&b| ms <= b)
            .unwrap_or(DURATION_BUCKETS_MS.len())
    }

    /// Records one observation.
    pub fn observe(&mut self, ms: u64) {
        self.buckets[Histogram::bucket_index(ms)] += 1;
        self.count += 1;
        self.sum_ms += ms;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values, milliseconds.
    pub fn sum_ms(&self) -> u64 {
        self.sum_ms
    }

    /// Per-bucket (non-cumulative) counts, `+Inf` last.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        self.buckets
    }
}

impl AddAssign for Histogram {
    fn add_assign(&mut self, rhs: Histogram) {
        // Full destructure: a new field cannot be added without deciding
        // how it merges.
        let Histogram {
            buckets,
            count,
            sum_ms,
        } = rhs;
        for (mine, theirs) in self.buckets.iter_mut().zip(buckets) {
            *mine += theirs;
        }
        self.count += count;
        self.sum_ms += sum_ms;
    }
}

/// The live, thread-safe metrics store.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter (creating it at zero).
    pub fn counter(&self, name: &str, delta: u64) {
        *self.counters.lock().entry(name.to_string()).or_insert(0) += delta;
    }

    /// Adds `delta` to a labeled counter series
    /// (`family{k="v",...}`), escaping label values.
    pub fn counter_labeled(&self, family: &str, labels: &[(&str, &str)], delta: u64) {
        self.counter(&labeled(family, labels), delta);
    }

    /// Records one duration observation in the named histogram.
    pub fn observe_ms(&self, name: &str, ms: u64) {
        self.histograms
            .lock()
            .entry(name.to_string())
            .or_default()
            .observe(ms);
    }

    /// Records one duration observation in a labeled histogram series
    /// (`family{k="v",...}`), escaping label values.
    pub fn observe_ms_labeled(&self, family: &str, labels: &[(&str, &str)], ms: u64) {
        self.observe_ms(&labeled(family, labels), ms);
    }

    /// Reads one live counter without freezing a snapshot (0 when the
    /// counter has never been incremented). The serving layer uses this
    /// for its accounting invariants (`shed + served == accepted`) and
    /// shutdown summary, where a full snapshot per probe would be waste.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.lock().get(name).copied().unwrap_or(0)
    }

    /// Freezes the registry into a sorted, serializable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .iter()
            .map(|(name, &value)| CounterSample {
                name: name.clone(),
                value,
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .iter()
            .map(|(name, h)| HistogramSample {
                name: name.clone(),
                buckets: h.bucket_counts().to_vec(),
                count: h.count(),
                sum_ms: h.sum_ms(),
            })
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }
}

/// One counter in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name, e.g. `borges_ner_llm_calls_total`.
    pub name: String,
    /// Current value.
    pub value: u64,
}

/// One histogram in a snapshot. `buckets` are per-bucket counts aligned
/// with [`DURATION_BUCKETS_MS`] plus the trailing `+Inf` bucket.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name, e.g. `borges_web_call_ms`.
    pub name: String,
    /// Per-bucket (non-cumulative) counts, `+Inf` last.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values, milliseconds.
    pub sum_ms: u64,
}

/// A frozen metrics state: sorted by name, serializable, comparable.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSample>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// Looks up a counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
            .unwrap_or(0)
    }

    /// Looks up a histogram sample.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Prometheus text exposition: counters and histograms grouped by
    /// family, each family headed by exactly one `# HELP` + `# TYPE`
    /// pair under the bare family name (metadata lines never carry
    /// labels). Labeled histograms render their label set merged with
    /// `le` on every bucket line; histograms expand to cumulative
    /// `_bucket{le=...}` series plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        // Group by family first: a family's series can be interleaved
        // with other families in the flat name sort (`fam 1`, `fam2 0`,
        // `fam{a="b"} 1`), and metadata must appear exactly once per
        // family, directly above all of its series.
        let mut counter_families: BTreeMap<&str, Vec<&CounterSample>> = BTreeMap::new();
        for c in &self.counters {
            let (family, _) = split_family(&c.name);
            counter_families.entry(family).or_default().push(c);
        }
        let mut histogram_families: BTreeMap<&str, Vec<&HistogramSample>> = BTreeMap::new();
        for h in &self.histograms {
            let (family, _) = split_family(&h.name);
            histogram_families.entry(family).or_default().push(h);
        }

        let mut out = String::new();
        for (family, samples) in &counter_families {
            out.push_str(&format!("# HELP {family} {}\n", help_for(family)));
            out.push_str(&format!("# TYPE {family} counter\n"));
            for c in samples {
                out.push_str(&format!("{} {}\n", c.name, c.value));
            }
        }
        for (family, samples) in &histogram_families {
            out.push_str(&format!("# HELP {family} {}\n", help_for(family)));
            out.push_str(&format!("# TYPE {family} histogram\n"));
            for h in samples {
                let (_, labels) = split_family(&h.name);
                let mut cumulative = 0u64;
                for (i, count) in h.buckets.iter().enumerate() {
                    cumulative += count;
                    let le = DURATION_BUCKETS_MS
                        .get(i)
                        .map(|b| b.to_string())
                        .unwrap_or_else(|| "+Inf".to_string());
                    match labels {
                        Some(inner) => out.push_str(&format!(
                            "{family}_bucket{{{inner},le=\"{le}\"}} {cumulative}\n"
                        )),
                        None => {
                            out.push_str(&format!("{family}_bucket{{le=\"{le}\"}} {cumulative}\n"))
                        }
                    }
                }
                match labels {
                    Some(inner) => {
                        out.push_str(&format!("{family}_sum{{{inner}}} {}\n", h.sum_ms));
                        out.push_str(&format!("{family}_count{{{inner}}} {}\n", h.count));
                    }
                    None => {
                        out.push_str(&format!("{family}_sum {}\n", h.sum_ms));
                        out.push_str(&format!("{family}_count {}\n", h.count));
                    }
                }
            }
        }
        out
    }
}

impl AddAssign<&MetricsSnapshot> for MetricsSnapshot {
    fn add_assign(&mut self, rhs: &MetricsSnapshot) {
        // Full destructure, same merge idiom as the stats structs.
        let MetricsSnapshot {
            counters,
            histograms,
        } = rhs;
        let mut merged: BTreeMap<String, u64> =
            self.counters.drain(..).map(|c| (c.name, c.value)).collect();
        for c in counters {
            *merged.entry(c.name.clone()).or_insert(0) += c.value;
        }
        self.counters = merged
            .into_iter()
            .map(|(name, value)| CounterSample { name, value })
            .collect();

        let mut merged: BTreeMap<String, HistogramSample> = self
            .histograms
            .drain(..)
            .map(|h| (h.name.clone(), h))
            .collect();
        for h in histograms {
            match merged.get_mut(&h.name) {
                Some(mine) => {
                    for (a, b) in mine.buckets.iter_mut().zip(&h.buckets) {
                        *a += b;
                    }
                    mine.count += h.count;
                    mine.sum_ms += h.sum_ms;
                }
                None => {
                    merged.insert(h.name.clone(), h.clone());
                }
            }
        }
        self.histograms = merged.into_values().collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_upper_bounds() {
        // Exactly on a bound lands in that bound's bucket ...
        for (i, &bound) in DURATION_BUCKETS_MS.iter().enumerate() {
            assert_eq!(Histogram::bucket_index(bound), i, "bound {bound}");
            // ... one past it spills into the next.
            assert_eq!(Histogram::bucket_index(bound + 1), i + 1, "bound {bound}+1");
        }
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(u64::MAX), DURATION_BUCKETS_MS.len());
    }

    #[test]
    fn histogram_counts_and_sums() {
        let mut h = Histogram::default();
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(60_001);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum_ms(), 60_004);
        let buckets = h.bucket_counts();
        assert_eq!(buckets[0], 2, "0 and 1 share the le=1 bucket");
        assert_eq!(buckets[1], 1, "2 lands in le=5");
        assert_eq!(buckets[BUCKETS - 1], 1, "60001 overflows to +Inf");
    }

    #[test]
    fn histogram_merge_is_fieldwise() {
        let mut a = Histogram::default();
        a.observe(3);
        let mut b = Histogram::default();
        b.observe(7);
        b.observe(200);
        a += b;
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum_ms(), 210);
        assert_eq!(a.bucket_counts()[1], 1, "3 <= 5");
        assert_eq!(a.bucket_counts()[2], 1, "7 <= 10");
        assert_eq!(a.bucket_counts()[5], 1, "200 <= 500");
    }

    #[test]
    fn registry_snapshot_is_sorted_and_queryable() {
        let reg = MetricsRegistry::new();
        reg.counter("z_total", 2);
        reg.counter("a_total", 1);
        reg.counter("z_total", 3);
        reg.observe_ms("op_ms", 4);
        assert_eq!(reg.counter_value("z_total"), 5);
        assert_eq!(reg.counter_value("absent_total"), 0);
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].name, "a_total");
        assert_eq!(snap.counter("z_total"), 5);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.histogram("op_ms").unwrap().count, 1);
    }

    #[test]
    fn snapshot_merge_unions_by_name() {
        let reg1 = MetricsRegistry::new();
        reg1.counter("shared_total", 1);
        reg1.counter("only1_total", 10);
        reg1.observe_ms("op_ms", 1);
        let reg2 = MetricsRegistry::new();
        reg2.counter("shared_total", 2);
        reg2.observe_ms("op_ms", 100);
        reg2.observe_ms("other_ms", 7);

        let mut merged = reg1.snapshot();
        merged += &reg2.snapshot();
        assert_eq!(merged.counter("shared_total"), 3);
        assert_eq!(merged.counter("only1_total"), 10);
        let op = merged.histogram("op_ms").unwrap();
        assert_eq!(op.count, 2);
        assert_eq!(op.sum_ms, 101);
        assert!(merged.histogram("other_ms").is_some());
        // Still sorted after the merge.
        let names: Vec<&str> = merged.counters.iter().map(|c| c.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("borges_ner_llm_calls_total", 4);
        reg.observe_ms("borges_web_call_ms", 3);
        reg.observe_ms("borges_web_call_ms", 70_000);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE borges_ner_llm_calls_total counter\n"));
        assert!(text.contains("borges_ner_llm_calls_total 4\n"));
        assert!(text.contains("# TYPE borges_web_call_ms histogram\n"));
        assert!(text.contains("borges_web_call_ms_bucket{le=\"5\"} 1\n"));
        // Cumulative: the +Inf bucket always equals the total count.
        assert!(text.contains("borges_web_call_ms_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("borges_web_call_ms_sum 70003\n"));
        assert!(text.contains("borges_web_call_ms_count 2\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        assert_eq!(
            labeled("f_total", &[("k", "v\"x"), ("l", "y")]),
            "f_total{k=\"v\\\"x\",l=\"y\"}"
        );
        assert_eq!(labeled("bare", &[]), "bare");
    }

    #[test]
    fn exposition_emits_one_help_and_type_per_family() {
        let reg = MetricsRegistry::new();
        reg.counter_labeled("borges_serve_status_total", &[("code", "200")], 3);
        reg.counter_labeled("borges_serve_status_total", &[("code", "404")], 1);
        // A family that interleaves with the labeled series in the
        // flat name sort ('{' > alphanumerics).
        reg.counter("borges_serve_status_extra_total", 7);
        let text = reg.snapshot().to_prometheus();
        assert_eq!(
            text.matches("# TYPE borges_serve_status_total counter\n")
                .count(),
            1,
            "exactly one TYPE line per family:\n{text}"
        );
        assert!(text.contains(
            "# HELP borges_serve_status_total Responses by HTTP status code.\n\
             # TYPE borges_serve_status_total counter\n\
             borges_serve_status_total{code=\"200\"} 3\n\
             borges_serve_status_total{code=\"404\"} 1\n"
        ));
        assert!(text.contains("# HELP borges_serve_status_extra_total Monotone event counter.\n"));
    }

    #[test]
    fn labeled_histograms_merge_le_into_the_label_set() {
        let reg = MetricsRegistry::new();
        reg.observe_ms_labeled("borges_serve_latency_ms", &[("route", "map")], 3);
        reg.observe_ms_labeled("borges_serve_latency_ms", &[("route", "org")], 70_000);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE borges_serve_latency_ms histogram\n"));
        assert!(
            text.contains("borges_serve_latency_ms_bucket{route=\"map\",le=\"5\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("borges_serve_latency_ms_bucket{route=\"org\",le=\"+Inf\"} 1\n"),
            "{text}"
        );
        assert!(text.contains("borges_serve_latency_ms_sum{route=\"map\"} 3\n"));
        assert!(text.contains("borges_serve_latency_ms_count{route=\"org\"} 1\n"));
        assert_eq!(
            text.matches("# TYPE borges_serve_latency_ms histogram\n")
                .count(),
            1
        );
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let reg = MetricsRegistry::new();
        reg.counter("c_total", 9);
        reg.observe_ms("h_ms", 12);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
