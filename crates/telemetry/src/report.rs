//! The unified run ledger.
//!
//! [`RunReport`] gathers everything a pipeline run knows about itself —
//! the per-stage funnels that were previously scattered across
//! `ScrapeStats`/`RrStats`/`NerStats`/`FaviconStats`, the per-feature
//! coverage ledger, per-boundary retry/breaker accounting, cache efficacy
//! counters, breaker state transitions, per-worker chunk timings, and the
//! full metrics snapshot — into one serializable document with a pinned
//! schema tag.
//!
//! The types here are deliberately *mirrors*, not re-exports: the stats
//! structs of the producing crates stay serde-free and the ledger's wire
//! shape is owned in exactly one place. Conversions live next to the
//! producers (`borges-core` builds the funnels, the CLI appends cache
//! rows).

use crate::metrics::MetricsSnapshot;
use serde::{Deserialize, Serialize};

/// Schema tag stamped into every report; bump on breaking shape changes.
/// v2 added the [`DeltaReport`] row group for incremental re-mapping.
pub const RUN_REPORT_SCHEMA: &str = "borges.run_report.v2";

/// The crawl funnel (mirror of `ScrapeStats`, sans resilience).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrawlFunnel {
    /// PeeringDB entries with a website field.
    pub entries_with_website: u64,
    /// Entries whose website failed to parse as a URL.
    pub entries_with_invalid_url: u64,
    /// Entries abandoned after transport recovery was exhausted.
    pub entries_abandoned: u64,
    /// Distinct parsed URLs.
    pub unique_urls: u64,
    /// URLs that resolved to a final URL.
    pub reachable_urls: u64,
    /// Distinct final URLs after redirects.
    pub unique_final_urls: u64,
    /// Final URLs that served a favicon.
    pub final_urls_with_favicon: u64,
    /// Distinct favicon hashes.
    pub unique_favicons: u64,
}

/// The final-URL matching funnel (mirror of `RrStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RrFunnel {
    /// Networks with a resolved final URL.
    pub networks_with_final_url: u64,
    /// Networks dropped by the final-URL blocklist.
    pub blocked_networks: u64,
    /// Distinct (non-blocked) final URLs.
    pub distinct_final_urls: u64,
    /// Final URLs shared by more than one network.
    pub shared_final_urls: u64,
}

/// The NER extraction funnel (mirror of `NerStats`; token usage is
/// flattened to two counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NerFunnel {
    /// PeeringDB entries in the snapshot.
    pub entries_total: u64,
    /// Entries with non-empty notes or aka.
    pub entries_with_text: u64,
    /// Entries passing the numeric input filter.
    pub entries_numeric: u64,
    /// … of which the digits are in aka.
    pub numeric_in_aka: u64,
    /// … of which the digits are in notes.
    pub numeric_in_notes: u64,
    /// LLM calls issued.
    pub llm_calls: u64,
    /// LLM calls abandoned after recovery was exhausted.
    pub llm_abandoned: u64,
    /// Reply ASNs rejected by the hallucination filter.
    pub filtered_out: u64,
    /// Entries with at least one surviving extraction.
    pub entries_with_siblings: u64,
    /// Distinct sibling ASNs extracted.
    pub extracted_asns: u64,
    /// Prompt tokens spent by the stage.
    pub prompt_tokens: u64,
    /// Completion tokens spent by the stage.
    pub completion_tokens: u64,
}

/// The favicon grouping funnel (mirror of `FaviconStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaviconFunnel {
    /// Distinct favicons across final URLs.
    pub favicons_total: u64,
    /// Favicons shared by more than one final URL.
    pub favicons_shared: u64,
    /// Final URLs involved in shared favicons.
    pub urls_in_shared: u64,
    /// Shared favicons with a same-brand-label pair.
    pub same_label_groups: u64,
    /// Groups merged without the LLM.
    pub merged_by_step1: u64,
    /// Step-2 LLM calls issued.
    pub llm_calls: u64,
    /// Step-2 calls abandoned after recovery was exhausted.
    pub llm_abandoned: u64,
    /// Groups merged by the LLM.
    pub merged_by_llm: u64,
    /// Groups rejected as framework default icons.
    pub framework_rejections: u64,
    /// Groups the model declined to name.
    pub dont_know: u64,
    /// Prompt tokens spent by the stage.
    pub prompt_tokens: u64,
    /// Completion tokens spent by the stage.
    pub completion_tokens: u64,
}

/// Size of the compiled evidence base, per evidence class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvidenceSummary {
    /// ASNs in the fixed universe.
    pub asns: u64,
    /// WHOIS OrgId sibling groups.
    pub whois_groups: u64,
    /// PeeringDB OrgId sibling groups.
    pub pdb_groups: u64,
    /// Final-URL (redirect) sibling groups.
    pub rr_groups: u64,
    /// Favicon sibling groups.
    pub favicon_groups: u64,
    /// NER subject→sibling links.
    pub ner_links: u64,
}

/// One source's record-delta classification row (incremental runs).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaRecordRow {
    /// Input source (`whois_org`, `whois_aut`, `pdb_org`, `pdb_net`,
    /// `site`).
    pub source: String,
    /// Records with an unchanged fingerprint.
    pub unchanged: u64,
    /// Records present only in the new snapshot.
    pub added: u64,
    /// Records present only in the old snapshot.
    pub removed: u64,
    /// Records present in both with a moved fingerprint.
    pub modified: u64,
}

/// One feature's edge-segment reuse row (incremental runs).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaEdgeRow {
    /// Evidence feature (`oid_w`, `oid_p`, `na`, `rr`, `favicons`).
    pub feature: String,
    /// Segments reused verbatim from the persisted state.
    pub segments_retained: u64,
    /// Segments re-derived (new key, or member partition moved).
    pub segments_rederived: u64,
    /// Dense edges carried over without recomputation.
    pub edges_retained: u64,
    /// Dense edges freshly derived.
    pub edges_rederived: u64,
}

/// The incremental-remap row group: what the delta engine classified,
/// reused and re-derived. On full runs this is the inert default
/// (`incremental: false`, empty rows) so the ledger shape is identical
/// across pipelines. Wall-clock savings are deliberately absent: the
/// ledger must stay byte-deterministic under a simulated clock, so
/// speedups are measured by the remap benchmark, not recorded here.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaReport {
    /// Whether this run was an incremental remap.
    pub incremental: bool,
    /// Per-source record classification, fixed order.
    pub records: Vec<DeltaRecordRow>,
    /// Per-feature segment reuse, fixed order.
    pub edges: Vec<DeltaEdgeRow>,
    /// Interner slots carried over alive.
    pub asns_retained: u64,
    /// ASNs appended (new, or resurrected tombstones).
    pub asns_added: u64,
    /// Slots tombstoned because the ASN left the universe.
    pub asns_retired: u64,
    /// NER extractions replayed from the memo.
    pub ner_reused: u64,
    /// NER extractions that required a physical LLM call.
    pub ner_recomputed: u64,
    /// Favicon verdicts replayed from the memo.
    pub favicon_reused: u64,
    /// Favicon verdicts that required a physical LLM call.
    pub favicon_recomputed: u64,
    /// Physical LLM calls avoided via memo replay.
    pub llm_calls_saved: u64,
}

impl DeltaReport {
    /// Whether every record row balances against its edge accounting —
    /// trivially true on full runs (no rows).
    pub fn consistent(&self) -> bool {
        self.llm_calls_saved == self.ner_reused + self.favicon_reused
    }
}

/// The timeline row group: which chain link this run appended, when a
/// `--timeline` directory was mounted. Inert default otherwise, and
/// `#[serde(default)]` on the way in, so pre-timeline v2 ledgers still
/// parse and the shape stays identical across runs.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelineReport {
    /// Whether this run appended a link to a timeline chain.
    pub appended: bool,
    /// Chain epoch of the appended link (0 when not appended).
    pub epoch: u64,
    /// Content digest of the appended world (empty when not appended).
    pub world_digest: String,
}

/// One row of the per-feature coverage ledger.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageRow {
    /// Feature the row accounts for (`crawl`, `notes_aka`, …).
    pub feature: String,
    /// Work items the stage tried.
    pub attempted: u64,
    /// Items that produced evidence.
    pub succeeded: u64,
    /// Items lost after recovery was exhausted.
    pub abandoned: u64,
}

impl CoverageRow {
    /// The ledger invariant: nothing attempted goes unaccounted.
    pub fn accounted(&self) -> bool {
        self.abandoned + self.succeeded == self.attempted
    }
}

/// Per-boundary retry/breaker accounting (mirror of `ResilienceStats`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceRow {
    /// Boundary the wrapper guarded (`web`, `llm.ner`, `llm.favicon`).
    pub boundary: String,
    /// Logical calls through the wrapper.
    pub calls: u64,
    /// Physical attempts (>= calls).
    pub attempts: u64,
    /// Calls that succeeded only after retrying.
    pub recovered: u64,
    /// Calls abandoned with the budget exhausted.
    pub abandoned: u64,
    /// Circuit-breaker open transitions.
    pub breaker_trips: u64,
    /// Calls fast-failed by an open breaker.
    pub breaker_fast_fails: u64,
}

/// Hit/miss/eviction counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to the backing source.
    pub misses: u64,
    /// Entries dropped to enforce a capacity bound.
    pub evictions: u64,
    /// Entries resident when the stats were read.
    pub entries: u64,
}

/// A named cache's counters, as a ledger row.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheReport {
    /// Cache name (`web.redirect`, `llm.response`).
    pub name: String,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to the backing source.
    pub misses: u64,
    /// Entries dropped to enforce a capacity bound.
    pub evictions: u64,
    /// Entries resident when the stats were read.
    pub entries: u64,
}

impl CacheReport {
    /// Labels a [`CacheStats`] as a ledger row.
    pub fn new(name: &str, stats: CacheStats) -> Self {
        let CacheStats {
            hits,
            misses,
            evictions,
            entries,
        } = stats;
        CacheReport {
            name: name.to_string(),
            hits,
            misses,
            evictions,
            entries,
        }
    }
}

/// A circuit-breaker state transition.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BreakerEvent {
    /// Boundary whose breaker transitioned (`web`, `llm.ner`, …).
    pub boundary: String,
    /// Breaker key (the host, or the model boundary name).
    pub key: String,
    /// Transition name (`open`).
    pub transition: String,
    /// Clock reading at the transition.
    pub at_ms: u64,
}

/// One worker chunk's timing from a parallel fan-out.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerTiming {
    /// Fan-out site (`mapping`, `crawl`, `ner`).
    pub stage: String,
    /// Chunk index within the fan-out.
    pub chunk: u64,
    /// Items in the chunk.
    pub items: u64,
    /// Clock reading when the chunk started.
    pub started_ms: u64,
    /// Wall-clock (or virtual) milliseconds the chunk took.
    pub elapsed_ms: u64,
}

/// The unified, serializable ledger of one pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Always [`RUN_REPORT_SCHEMA`].
    pub schema: String,
    /// How the run executed (`sequential`, `parallel`, `resilient`).
    pub pipeline: String,
    /// Worker threads used for parallel stages (1 for sequential).
    pub threads: u64,
    /// Crawl funnel.
    pub crawl: CrawlFunnel,
    /// Final-URL matching funnel.
    pub rr: RrFunnel,
    /// NER extraction funnel.
    pub ner: NerFunnel,
    /// Favicon grouping funnel.
    pub favicon: FaviconFunnel,
    /// Compiled evidence base sizes.
    pub evidence: EvidenceSummary,
    /// Incremental-remap delta accounting (inert default on full runs).
    pub delta: DeltaReport,
    /// Timeline chain accounting (inert default without `--timeline`).
    #[serde(default)]
    pub timeline: TimelineReport,
    /// Per-feature coverage ledger.
    pub coverage: Vec<CoverageRow>,
    /// Per-boundary retry/breaker accounting.
    pub resilience: Vec<ResilienceRow>,
    /// Cache efficacy counters.
    pub caches: Vec<CacheReport>,
    /// Breaker state transitions, sorted.
    pub breaker_events: Vec<BreakerEvent>,
    /// Parallel chunk timings, sorted by (stage, chunk).
    pub workers: Vec<WorkerTiming>,
    /// Full metrics snapshot at report time.
    pub metrics: MetricsSnapshot,
}

impl RunReport {
    /// An empty report with the schema tag stamped.
    pub fn new() -> Self {
        RunReport {
            schema: RUN_REPORT_SCHEMA.to_string(),
            ..RunReport::default()
        }
    }

    /// Whether every coverage row balances
    /// (`abandoned + succeeded == attempted`).
    pub fn accounted(&self) -> bool {
        self.coverage.iter().all(CoverageRow::accounted)
    }

    /// Sum of attempted items across the coverage ledger.
    pub fn total_attempted(&self) -> u64 {
        self.coverage.iter().map(|r| r.attempted).sum()
    }

    /// Sum of abandoned items across the coverage ledger.
    pub fn total_abandoned(&self) -> u64 {
        self.coverage.iter().map(|r| r.abandoned).sum()
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("run reports always serialize")
    }

    /// Parses a report back from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample() -> RunReport {
        let registry = MetricsRegistry::new();
        registry.counter("borges_ner_llm_calls_total", 3);
        registry.observe_ms("borges_web_call_ms", 12);
        RunReport {
            pipeline: "resilient".to_string(),
            threads: 4,
            crawl: CrawlFunnel {
                entries_with_website: 10,
                unique_urls: 9,
                reachable_urls: 8,
                ..CrawlFunnel::default()
            },
            rr: RrFunnel {
                networks_with_final_url: 8,
                ..RrFunnel::default()
            },
            ner: NerFunnel {
                llm_calls: 3,
                prompt_tokens: 120,
                ..NerFunnel::default()
            },
            favicon: FaviconFunnel {
                favicons_total: 5,
                ..FaviconFunnel::default()
            },
            evidence: EvidenceSummary {
                asns: 40,
                whois_groups: 6,
                ..EvidenceSummary::default()
            },
            coverage: vec![CoverageRow {
                feature: "crawl".to_string(),
                attempted: 10,
                succeeded: 8,
                abandoned: 2,
            }],
            resilience: vec![ResilienceRow {
                boundary: "web".to_string(),
                calls: 9,
                attempts: 14,
                recovered: 3,
                abandoned: 2,
                ..ResilienceRow::default()
            }],
            caches: vec![CacheReport::new(
                "web.redirect",
                CacheStats {
                    hits: 4,
                    misses: 9,
                    evictions: 0,
                    entries: 9,
                },
            )],
            breaker_events: vec![BreakerEvent {
                boundary: "web".to_string(),
                key: "h0.example".to_string(),
                transition: "open".to_string(),
                at_ms: 700,
            }],
            workers: vec![WorkerTiming {
                stage: "mapping".to_string(),
                chunk: 0,
                items: 16,
                started_ms: 0,
                elapsed_ms: 0,
            }],
            metrics: registry.snapshot(),
            ..RunReport::new()
        }
    }

    #[test]
    fn golden_report_roundtrips_through_json() {
        let report = sample();
        let json = report.to_json_pretty();
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back, report);
        // Serialization is deterministic: same report, same bytes.
        assert_eq!(back.to_json_pretty(), json);
    }

    #[test]
    fn golden_report_shape_is_pinned() {
        let json = sample().to_json_pretty();
        // The schema tag and every top-level section appear, in
        // declaration order (the vendored writer preserves field order).
        let keys = [
            "\"schema\": \"borges.run_report.v2\"",
            "\"pipeline\"",
            "\"threads\"",
            "\"crawl\"",
            "\"rr\"",
            "\"ner\"",
            "\"favicon\"",
            "\"evidence\"",
            "\"delta\"",
            "\"timeline\"",
            "\"coverage\"",
            "\"resilience\"",
            "\"caches\"",
            "\"breaker_events\"",
            "\"workers\"",
            "\"metrics\"",
        ];
        let mut last = 0;
        for key in keys {
            let at = json[last..]
                .find(key)
                .unwrap_or_else(|| panic!("{key} missing or out of order"));
            last += at;
        }
    }

    #[test]
    fn pre_timeline_reports_still_parse() {
        // A v2 ledger written before the timeline row group existed
        // has no "timeline" key; it must deserialize to the inert
        // default, not fail.
        let mut json = sample().to_json_pretty();
        let start = json
            .find("  \"timeline\": {")
            .expect("timeline group present");
        let end = json[start..].find("},\n").expect("group closes") + start + 3;
        json.replace_range(start..end, "");
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back.timeline, TimelineReport::default());
        assert!(!back.timeline.appended);
    }

    #[test]
    fn ledger_invariant_checks() {
        let mut report = sample();
        assert!(report.accounted());
        assert_eq!(report.total_attempted(), 10);
        assert_eq!(report.total_abandoned(), 2);
        report.coverage[0].succeeded = 9; // 9 + 2 != 10
        assert!(!report.accounted());
    }

    #[test]
    fn empty_report_is_valid_and_tagged() {
        let report = RunReport::new();
        assert_eq!(report.schema, RUN_REPORT_SCHEMA);
        assert!(report.accounted(), "an empty ledger balances");
        let back = RunReport::from_json(&report.to_json_pretty()).unwrap();
        assert_eq!(back, report);
    }
}
