//! The serve-side flight-recorder primitives: per-request access
//! records, a bounded ring buffer of recent records, and a crash-safe
//! JSONL access-log writer.
//!
//! The access log is the *runtime* stream of the serving layer — the
//! one place wall-clock observations (durations, schedule-dependent
//! request ids) are allowed to live. Everything the byte-determinism
//! keystone compares — canonical trace, `/metrics` counter values,
//! response bodies — stays free of them; an [`AccessRecord`] therefore
//! carries two projections: [`AccessRecord::to_json`] (the full record,
//! one JSONL line) and [`AccessRecord::canonical_json`] (the
//! schedule-independent fields only), which the cross-worker-count
//! determinism tests compare after sorting.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::metrics::DURATION_BUCKETS_MS;

/// One request, as the serving layer saw it. The full record is a
/// runtime artifact (ids and durations depend on scheduling); the
/// canonical projection ([`AccessRecord::canonical_json`]) is
/// byte-deterministic across worker counts for an identical request
/// sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessRecord {
    /// Monotone per-worker request id (`w3-17`), or `a-5` for
    /// connections refused from the accept thread.
    pub id: String,
    /// Request method, `-` when the request never parsed.
    pub method: String,
    /// Path plus canonically re-rendered query (`?k=v&...`, keys
    /// sorted), `-` when the request never parsed.
    pub path: String,
    /// Response status (0 when the peer vanished unanswered).
    pub status: u16,
    /// Response body bytes.
    pub bytes: u64,
    /// Hex SHA-256 digest of the world that answered, empty when no
    /// world was consulted (errors, sheds, admin plumbing).
    pub world: String,
    /// Epoch of the serving world at answer time.
    pub epoch: u64,
    /// Mapping-LRU outcome: `hit`, `miss`, or `none` for routes that
    /// never touch the cache.
    pub lru: String,
    /// Accept-queue depth observed when the connection was accepted.
    pub queue_depth: u64,
    /// Wall-clock handling duration, milliseconds (runtime-only).
    pub duration_ms: u64,
    /// The duration's histogram bucket label (`le_5`, ..., `inf`) —
    /// coarse enough to read, aligned with [`DURATION_BUCKETS_MS`].
    pub duration_bucket: String,
}

/// The bucket label a duration falls into: `le_<bound>` for the first
/// bound `b` with `ms <= b`, or `inf` past the last bound.
pub fn duration_bucket_label(ms: u64) -> String {
    match DURATION_BUCKETS_MS.iter().find(|&&b| ms <= b) {
        Some(bound) => format!("le_{bound}"),
        None => "inf".to_string(),
    }
}

impl AccessRecord {
    /// The full record as one JSON object (field order fixed by the
    /// struct) — one line of the JSONL access log.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("access record serializes")
    }

    /// The schedule-independent projection: everything except the
    /// request id and the wall-clock duration fields. Identical
    /// request sequences produce identical canonical sets at any
    /// worker count — the property `tests/observe.rs` pins.
    pub fn canonical_json(&self) -> String {
        let canonical = CanonicalAccessRecord {
            method: self.method.clone(),
            path: self.path.clone(),
            status: self.status,
            bytes: self.bytes,
            world: self.world.clone(),
            epoch: self.epoch,
            lru: self.lru.clone(),
            queue_depth: self.queue_depth,
        };
        serde_json::to_string(&canonical).expect("canonical record serializes")
    }
}

/// [`AccessRecord`] minus the runtime-only fields (id, durations).
#[derive(Serialize)]
struct CanonicalAccessRecord {
    method: String,
    path: String,
    status: u16,
    bytes: u64,
    world: String,
    epoch: u64,
    lru: String,
    queue_depth: u64,
}

/// A bounded, thread-safe ring of the last `capacity` items — the
/// flight recorder's storage. Pushing past capacity drops the oldest
/// item; `total` keeps counting, so readers can tell how much history
/// scrolled away. The lock is held only for the O(1) push or the
/// snapshot copy, never across request handling.
#[derive(Debug)]
pub struct RingBuffer<T> {
    capacity: usize,
    inner: Mutex<RingInner<T>>,
}

#[derive(Debug)]
struct RingInner<T> {
    total: u64,
    items: VecDeque<T>,
}

impl<T: Clone> RingBuffer<T> {
    /// An empty ring holding at most `capacity` items (0 records
    /// nothing but still counts).
    pub fn new(capacity: usize) -> RingBuffer<T> {
        RingBuffer {
            capacity,
            inner: Mutex::new(RingInner {
                total: 0,
                items: VecDeque::with_capacity(capacity.min(1024)),
            }),
        }
    }

    /// Appends `item`, evicting the oldest once full.
    pub fn push(&self, item: T) {
        let mut inner = self.inner.lock();
        inner.total += 1;
        if self.capacity == 0 {
            return;
        }
        if inner.items.len() == self.capacity {
            inner.items.pop_front();
        }
        inner.items.push_back(item);
    }

    /// The retained items, oldest first.
    pub fn snapshot(&self) -> Vec<T> {
        self.inner.lock().items.iter().cloned().collect()
    }

    /// Items ever pushed (including those that scrolled away).
    pub fn total(&self) -> u64 {
        self.inner.lock().total
    }

    /// Items currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().items.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// A crash-safe JSONL appender: the access log's file face.
///
/// Mirrors the workspace's crash-safe write protocol
/// (`borges_store::write_atomic` — sibling tmp → fsync → rename → dir
/// fsync), stretched over the writer's lifetime: lines are appended
/// (and flushed) to a hidden staging sibling `.name.tmp-<pid>` while
/// the server runs, and [`AccessLogWriter::finish`] fsyncs and renames
/// it into place at graceful shutdown. The destination path therefore
/// either holds a complete log or nothing; a crash mid-serve leaves
/// the flushed staging sibling for recovery, never a torn destination.
/// (Live inspection goes through the `/v1/admin/debug/*` endpoints,
/// not the file.)
#[derive(Debug)]
pub struct AccessLogWriter {
    path: PathBuf,
    staging: PathBuf,
    /// `None` once finished — appends after finish are an error.
    file: Mutex<Option<File>>,
}

impl AccessLogWriter {
    /// Opens the staging sibling of `path` for appending.
    pub fn create(path: impl AsRef<Path>) -> io::Result<AccessLogWriter> {
        let path = path.as_ref().to_path_buf();
        let name = path.file_name().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("access-log path has no file name: {}", path.display()),
            )
        })?;
        let tmp_name = format!(".{}.tmp-{}", name.to_string_lossy(), std::process::id());
        let staging = match path.parent() {
            Some(parent) if !parent.as_os_str().is_empty() => parent.join(tmp_name),
            _ => PathBuf::from(tmp_name),
        };
        let file = File::create(&staging)?;
        Ok(AccessLogWriter {
            path,
            staging,
            file: Mutex::new(Some(file)),
        })
    }

    /// Appends one line (terminator added) and flushes it to the OS,
    /// so the staging file always ends on a record boundary short of a
    /// mid-write crash.
    pub fn append_line(&self, line: &str) -> io::Result<()> {
        let mut guard = self.file.lock();
        let file = guard
            .as_mut()
            .ok_or_else(|| io::Error::other("access log already finished"))?;
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")?;
        file.flush()
    }

    /// Fsyncs the staged log and atomically renames it into place,
    /// then fsyncs the directory (best effort — some filesystems
    /// refuse). Idempotent: a second call is a no-op.
    pub fn finish(&self) -> io::Result<()> {
        let file = match self.file.lock().take() {
            Some(file) => file,
            None => return Ok(()),
        };
        file.sync_all()?;
        fs::rename(&self.staging, &self.path)?;
        if let Some(parent) = self.path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }
}

impl Drop for AccessLogWriter {
    fn drop(&mut self) {
        // Best effort: a writer dropped without `finish` (early return,
        // panic unwinding) still lands the log if it can.
        let _ = self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: &str, ms: u64) -> AccessRecord {
        AccessRecord {
            id: id.to_string(),
            method: "GET".to_string(),
            path: "/healthz".to_string(),
            status: 200,
            bytes: 42,
            world: "abc123".to_string(),
            epoch: 0,
            lru: "none".to_string(),
            queue_depth: 0,
            duration_ms: ms,
            duration_bucket: duration_bucket_label(ms),
        }
    }

    #[test]
    fn bucket_labels_align_with_histogram_bounds() {
        assert_eq!(duration_bucket_label(0), "le_1");
        assert_eq!(duration_bucket_label(1), "le_1");
        assert_eq!(duration_bucket_label(2), "le_5");
        assert_eq!(duration_bucket_label(60_000), "le_60000");
        assert_eq!(duration_bucket_label(60_001), "inf");
    }

    #[test]
    fn record_roundtrips_and_canonical_drops_runtime_fields() {
        let r = record("w0-1", 7);
        let json = r.to_json();
        let back: AccessRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        let canonical = r.canonical_json();
        assert!(!canonical.contains("w0-1"), "{canonical}");
        assert!(!canonical.contains("duration"), "{canonical}");
        assert!(canonical.contains("\"path\":\"/healthz\""), "{canonical}");
        // Two records differing only in id and duration canonicalize
        // identically — the cross-worker determinism hinge.
        let other = record("w3-9", 5_000);
        assert_ne!(r.to_json(), other.to_json());
        assert_eq!(canonical, other.canonical_json());
    }

    #[test]
    fn ring_buffer_wraps_and_keeps_counting() {
        let ring = RingBuffer::new(3);
        assert!(ring.is_empty());
        for i in 0..7u64 {
            ring.push(i);
        }
        assert_eq!(ring.snapshot(), vec![4, 5, 6], "oldest evicted first");
        assert_eq!(ring.total(), 7);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
    }

    #[test]
    fn ring_buffer_exact_capacity_boundary() {
        let ring = RingBuffer::new(3);
        ring.push(1);
        ring.push(2);
        ring.push(3);
        assert_eq!(ring.snapshot(), vec![1, 2, 3], "no eviction at exactly cap");
        ring.push(4);
        assert_eq!(ring.snapshot(), vec![2, 3, 4], "eviction begins past cap");
    }

    #[test]
    fn zero_capacity_ring_records_nothing_but_counts() {
        let ring = RingBuffer::new(0);
        ring.push("x");
        ring.push("y");
        assert!(ring.snapshot().is_empty());
        assert_eq!(ring.total(), 2);
    }

    #[test]
    fn access_log_writer_stages_then_lands_atomically() {
        let dir = std::env::temp_dir().join(format!("borges-accesslog-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.jsonl");

        let writer = AccessLogWriter::create(&path).unwrap();
        writer.append_line(&record("w0-1", 1).to_json()).unwrap();
        writer.append_line(&record("w0-2", 2).to_json()).unwrap();
        assert!(
            !path.exists(),
            "destination must not appear before finish (crash safety)"
        );
        writer.finish().unwrap();
        writer.finish().unwrap(); // idempotent

        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let parsed: AccessRecord = serde_json::from_str(line).unwrap();
            assert_eq!(parsed.method, "GET");
        }
        // No staging sibling left behind.
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["access.jsonl".to_string()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn appends_after_finish_are_refused() {
        let dir = std::env::temp_dir().join(format!("borges-accesslog-fin-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let writer = AccessLogWriter::create(dir.join("a.jsonl")).unwrap();
        writer.finish().unwrap();
        assert!(writer.append_line("{}").is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
