//! Hierarchical spans and the in-memory trace sink.
//!
//! A [`Span`] is a guard: it opens when created, carries typed-as-text
//! fields, and records itself into the [`TraceSink`] on drop. Timestamps
//! come from the [`Telemetry`](crate::Telemetry) clock — under
//! [`borges_resilience::SimClock`] a fault-free run records every span at
//! `t = 0`, which is exactly what makes traces comparable across runs.
//!
//! Two kinds of span exist. [`SpanKind::Logical`] spans describe *what the
//! pipeline did* (stages, per-combination materializations) and must be
//! identical between sequential and parallel executions of the same world.
//! [`SpanKind::Runtime`] spans describe *how it was scheduled* (chunk
//! fan-out) and may differ by thread count. [`canonicalize`] keeps only
//! the logical spans, drops the ids (allocation order differs across
//! schedules), and sorts — the result is the byte-comparable journal the
//! determinism tests pin.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// What a span describes: pipeline semantics or scheduling detail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// Semantically meaningful work; identical across execution schedules.
    Logical,
    /// Scheduling detail (chunking, workers); varies with thread count.
    Runtime,
}

/// One key/value annotation on a span. Values are rendered to text at
/// record time so the trace journal needs no dynamic typing.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SpanField {
    /// Field name, e.g. `"features"`.
    pub key: String,
    /// Field value rendered with `Display`.
    pub value: String,
}

/// A finished span as stored in the sink and written to the journal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Sink-unique id (allocation order; not stable across schedules).
    pub id: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Slash-joined path from the root, e.g. `"run/crawl"`.
    pub path: String,
    /// Logical or runtime.
    pub kind: SpanKind,
    /// Clock reading when the span opened.
    pub start_ms: u64,
    /// Clock reading when the span dropped.
    pub end_ms: u64,
    /// Annotations, in insertion order.
    pub fields: Vec<SpanField>,
}

/// A span as it appears in the canonicalized journal: no ids, logical
/// spans only, sorted. Byte-identical across execution schedules.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CanonicalSpan {
    /// Slash-joined path from the root.
    pub path: String,
    /// Clock reading when the span opened.
    pub start_ms: u64,
    /// Clock reading when the span dropped.
    pub end_ms: u64,
    /// Annotations, in insertion order.
    pub fields: Vec<SpanField>,
}

/// Thread-safe in-memory store of finished spans.
#[derive(Debug, Default)]
pub struct TraceSink {
    next_id: AtomicU64,
    records: Mutex<Vec<SpanRecord>>,
}

impl TraceSink {
    /// An empty sink; ids start at 1 (0 means "no parent").
    pub fn new() -> Self {
        TraceSink {
            next_id: AtomicU64::new(1),
            records: Mutex::new(Vec::new()),
        }
    }

    /// Allocates the next span id.
    pub fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Stores a finished span.
    pub fn record(&self, record: SpanRecord) {
        self.records.lock().push(record);
    }

    /// All finished spans, in completion order.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.records.lock().clone()
    }

    /// Number of finished spans.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// Whether no span has finished yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Filters to logical spans, strips ids, and sorts by
/// `(path, fields, start, end)` — the canonical journal order.
pub fn canonicalize(records: &[SpanRecord]) -> Vec<CanonicalSpan> {
    let mut spans: Vec<CanonicalSpan> = records
        .iter()
        .filter(|r| r.kind == SpanKind::Logical)
        .map(|r| CanonicalSpan {
            path: r.path.clone(),
            start_ms: r.start_ms,
            end_ms: r.end_ms,
            fields: r.fields.clone(),
        })
        .collect();
    spans.sort_by(|a, b| {
        (&a.path, &a.fields, a.start_ms, a.end_ms).cmp(&(&b.path, &b.fields, b.start_ms, b.end_ms))
    });
    spans
}

/// Serializes any serializable record sequence as JSONL (one JSON object
/// per line, trailing newline; empty string for no records).
pub fn to_jsonl<T: Serialize>(records: &[T]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&serde_json::to_string(r).expect("span records always serialize"));
        out.push('\n');
    }
    out
}

/// The open-span guard. Dropping it records the span; [`Span::child`]
/// opens a nested span whose path extends this one's.
pub struct Span {
    tel: crate::Telemetry,
    data: Option<SpanData>,
}

struct SpanData {
    id: u64,
    parent: u64,
    path: String,
    kind: SpanKind,
    start_ms: u64,
    fields: Mutex<Vec<SpanField>>,
}

impl Span {
    pub(crate) fn open(
        tel: &crate::Telemetry,
        parent: Option<&Span>,
        name: &str,
        kind: SpanKind,
    ) -> Span {
        let data = tel.with_inner(|inner| {
            let (parent_id, path) = match parent.and_then(|p| p.data.as_ref()) {
                Some(p) => (p.id, format!("{}/{name}", p.path)),
                None => (0, name.to_string()),
            };
            SpanData {
                id: inner.trace.next_id(),
                parent: parent_id,
                path,
                kind,
                start_ms: inner.clock.now_ms(),
                fields: Mutex::new(Vec::new()),
            }
        });
        Span {
            tel: tel.clone(),
            data,
        }
    }

    /// Opens a logical child span named `name` under this span's path.
    pub fn child(&self, name: &str) -> Span {
        Span::open(&self.tel, Some(self), name, SpanKind::Logical)
    }

    /// Opens a runtime (scheduling-detail) child span.
    pub fn child_runtime(&self, name: &str) -> Span {
        Span::open(&self.tel, Some(self), name, SpanKind::Runtime)
    }

    /// Annotates the span. Values render with `Display` immediately.
    pub fn field(&self, key: &str, value: impl std::fmt::Display) {
        if let Some(data) = &self.data {
            data.fields.lock().push(SpanField {
                key: key.to_string(),
                value: value.to_string(),
            });
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(data) = self.data.take() else {
            return;
        };
        self.tel.with_inner(|inner| {
            inner.trace.record(SpanRecord {
                id: data.id,
                parent: data.parent,
                path: data.path.clone(),
                kind: data.kind,
                start_ms: data.start_ms,
                end_ms: inner.clock.now_ms(),
                fields: data.fields.lock().clone(),
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Telemetry, Verbosity};

    #[test]
    fn spans_nest_and_record_on_drop() {
        let tel = Telemetry::sim(Verbosity::Quiet);
        {
            let root = tel.span("run");
            let child = root.child("crawl");
            child.field("urls", 7);
            drop(child);
            assert_eq!(tel.trace_records().len(), 1, "root is still open");
        }
        let records = tel.trace_records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].path, "run/crawl");
        assert_eq!(records[0].fields[0].value, "7");
        assert_eq!(records[1].path, "run");
        assert_eq!(records[0].parent, records[1].id);
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let tel = Telemetry::disabled();
        {
            let root = tel.span("run");
            root.field("k", "v");
            let _child = root.child("stage");
        }
        assert!(tel.trace_records().is_empty());
        assert_eq!(tel.trace_jsonl(), "");
    }

    #[test]
    fn canonicalization_drops_runtime_spans_ids_and_order() {
        let tel = Telemetry::sim(Verbosity::Quiet);
        {
            let root = tel.span("run");
            let _chunk = root.child_runtime("chunk");
            let b = root.child("b");
            b.field("x", 1);
            drop(b);
            let _a = root.child("a");
        }
        let canon = canonicalize(&tel.trace_records());
        let paths: Vec<&str> = canon.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(
            paths,
            vec!["run", "run/a", "run/b"],
            "sorted, runtime dropped"
        );
        let jsonl = tel.trace_jsonl_canonical();
        assert!(!jsonl.contains("chunk"));
        assert!(!jsonl.contains("\"id\""));
    }

    #[test]
    fn sim_clock_timestamps_are_zero_without_sleeps() {
        let tel = Telemetry::sim(Verbosity::Quiet);
        {
            let _root = tel.span("run");
        }
        let records = tel.trace_records();
        assert_eq!((records[0].start_ms, records[0].end_ms), (0, 0));
    }

    #[test]
    fn span_records_roundtrip_through_jsonl() {
        let tel = Telemetry::sim(Verbosity::Quiet);
        {
            let root = tel.span("run");
            root.field("seed", 11);
        }
        let jsonl = tel.trace_jsonl();
        let parsed: SpanRecord = serde_json::from_str(jsonl.trim()).unwrap();
        assert_eq!(parsed, tel.trace_records()[0]);
    }
}
