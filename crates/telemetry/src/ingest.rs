//! Stage names for streaming-ingest ledger rows.
//!
//! The streaming scheduler (`borges-parallel`'s `stream_indexed`) reports
//! its observability — per-worker completion counts, the in-flight
//! high-water mark, throttle stalls, and the reassembly-buffer high-water
//! mark — as [`crate::WorkerTiming`] ledger rows rather than metrics.
//! Ledger rows are the one schedule-variant surface the determinism
//! contract already carves out (DESIGN.md §8); metrics snapshots must
//! stay byte-identical between staged and streaming runs, so streaming
//! concurrency data may never touch the metrics registry.
//!
//! These constants are the `stage` values those rows carry. They live in
//! borges-telemetry so the pipeline (writer) and the CLI / run-report
//! renderers (readers) agree on the vocabulary without string literals
//! drifting apart.

/// One row per scheduler worker: `chunk` is the worker index, `items`
/// the number of fetches that worker completed.
pub const WORKER_STAGE: &str = "ingest_worker";

/// Single row: `items` is the high-water mark of concurrently in-flight
/// fetches (bounded by `--max-in-flight`).
pub const IN_FLIGHT_STAGE: &str = "ingest_in_flight";

/// Single row: `items` counts scheduler passes in which every queued
/// host was rate-limited, `elapsed_ms` the total time slept waiting for
/// token-bucket refills.
pub const THROTTLE_STAGE: &str = "ingest_throttle";

/// Single row: `items` is the reassembly buffer's high-water mark — the
/// most out-of-order completions ever parked awaiting canonical release.
pub const REASSEMBLY_STAGE: &str = "ingest_reassembly";

/// All streaming-ingest stage names, in the order the pipeline emits them.
pub const ALL_STAGES: [&str; 4] = [
    WORKER_STAGE,
    IN_FLIGHT_STAGE,
    THROTTLE_STAGE,
    REASSEMBLY_STAGE,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_distinct_and_prefixed() {
        let mut seen = std::collections::BTreeSet::new();
        for stage in ALL_STAGES {
            assert!(stage.starts_with("ingest_"), "{stage} lacks prefix");
            assert!(seen.insert(stage), "{stage} duplicated");
        }
        assert_eq!(seen.len(), 4);
    }
}
