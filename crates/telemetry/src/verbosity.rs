//! Leveled narration, replacing ad-hoc `eprintln!`s.
//!
//! A [`Narrator`] owns a [`Verbosity`] level and writes accepted lines to
//! stderr — stdout stays reserved for the actual results, so `-q` piped
//! output is exactly the final report. Everything emitted is also kept in
//! an in-memory log the tests can assert against without capturing the
//! process's stderr.

use parking_lot::Mutex;

/// How much narration the user asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verbosity {
    /// `-q`: errors and the final report only.
    Quiet,
    /// Default: stage-level progress.
    Normal,
    /// `-v`: per-stage statistics.
    Verbose,
    /// `-vv`: everything, including per-boundary accounting.
    Debug,
}

impl Verbosity {
    /// Resolves the CLI flags (`-q` wins over any `-v`).
    pub fn from_flags(quiet: bool, verbose_count: usize) -> Verbosity {
        if quiet {
            Verbosity::Quiet
        } else {
            match verbose_count {
                0 => Verbosity::Normal,
                1 => Verbosity::Verbose,
                _ => Verbosity::Debug,
            }
        }
    }
}

/// A leveled stderr writer with an in-memory echo for tests.
#[derive(Debug)]
pub struct Narrator {
    level: Verbosity,
    emitted: Mutex<Vec<String>>,
}

impl Narrator {
    /// A narrator at `level`.
    pub fn new(level: Verbosity) -> Self {
        Narrator {
            level,
            emitted: Mutex::new(Vec::new()),
        }
    }

    /// The configured level.
    pub fn level(&self) -> Verbosity {
        self.level
    }

    /// Emits unconditionally, prefixed `error:` — failures are never
    /// silenced, even under `-q`.
    pub fn error(&self, msg: impl AsRef<str>) {
        self.emit(format!("error: {}", msg.as_ref()));
    }

    /// Emits at [`Verbosity::Normal`] and above.
    pub fn info(&self, msg: impl AsRef<str>) {
        if self.level >= Verbosity::Normal {
            self.emit(msg.as_ref().to_string());
        }
    }

    /// Emits at [`Verbosity::Verbose`] and above (`-v`).
    pub fn verbose(&self, msg: impl AsRef<str>) {
        if self.level >= Verbosity::Verbose {
            self.emit(msg.as_ref().to_string());
        }
    }

    /// Emits at [`Verbosity::Debug`] (`-vv`).
    pub fn debug(&self, msg: impl AsRef<str>) {
        if self.level >= Verbosity::Debug {
            self.emit(msg.as_ref().to_string());
        }
    }

    /// Every line actually emitted, in order.
    pub fn emitted(&self) -> Vec<String> {
        self.emitted.lock().clone()
    }

    fn emit(&self, line: String) {
        eprintln!("{line}");
        self.emitted.lock().push(line);
    }
}

impl Default for Narrator {
    fn default() -> Self {
        Narrator::new(Verbosity::Normal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(Verbosity::Quiet < Verbosity::Normal);
        assert!(Verbosity::Normal < Verbosity::Verbose);
        assert!(Verbosity::Verbose < Verbosity::Debug);
    }

    #[test]
    fn flags_resolve_with_quiet_winning() {
        assert_eq!(Verbosity::from_flags(false, 0), Verbosity::Normal);
        assert_eq!(Verbosity::from_flags(false, 1), Verbosity::Verbose);
        assert_eq!(Verbosity::from_flags(false, 2), Verbosity::Debug);
        assert_eq!(Verbosity::from_flags(false, 9), Verbosity::Debug);
        assert_eq!(Verbosity::from_flags(true, 2), Verbosity::Quiet);
    }

    #[test]
    fn quiet_silences_all_but_errors() {
        let n = Narrator::new(Verbosity::Quiet);
        n.info("progress");
        n.verbose("detail");
        n.debug("minutiae");
        n.error("boom");
        assert_eq!(n.emitted(), vec!["error: boom".to_string()]);
    }

    #[test]
    fn each_level_admits_exactly_its_band() {
        let n = Narrator::new(Verbosity::Verbose);
        n.info("a");
        n.verbose("b");
        n.debug("c");
        assert_eq!(n.emitted(), vec!["a".to_string(), "b".to_string()]);

        let n = Narrator::new(Verbosity::Debug);
        n.info("a");
        n.debug("c");
        assert_eq!(n.emitted().len(), 2);
    }
}
