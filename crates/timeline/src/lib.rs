//! # borges-timeline
//!
//! The time axis the paper's discussion (§7) asks for. A single
//! `.world` artifact is one dated snapshot of the AS-to-Organization
//! mapping; this crate chains snapshots into an append-only, verifiable
//! **timeline** so the motion between them — acquisitions, spinoffs,
//! rebrandings — becomes a first-class queryable object.
//!
//! ## Layout
//!
//! A timeline is a directory:
//!
//! ```text
//! timeline.json            append-only manifest (schema-tagged chain)
//! worlds/<digest>.world    content-addressed snapshots (store format)
//! deltas/<epoch>.delta     per-link assignment deltas (JSON)
//! ```
//!
//! Each manifest link records `{epoch, world_digest, parent_digest,
//! delta_digest}`. The genesis link has no parent and no delta; every
//! later link names its parent's content address, forming a hash chain:
//! relabel an epoch, swap a world file, or touch a delta and
//! [`Timeline::verify`] refuses with a typed [`TimelineError`].
//!
//! ## The composition invariant
//!
//! [`Timeline::diff`] does **not** load both endpoint worlds and
//! compare them; it loads `t1`, composes the per-link deltas up to
//! `t2`, and diffs against the reconstruction. Because
//! [`AsOrgMapping`](borges_core::mapping::AsOrgMapping) construction is
//! fully normalizing, the reconstruction is *equal* to the directly
//! materialized `t2` mapping — cluster ids included — so the composed
//! diff is byte-identical to a direct diff of the two worlds. Tests pin
//! this against [`Timeline::diff_direct`].

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod delta;
pub mod error;
pub mod lineage;

pub use delta::{assignments, mapping_from_assignments, AssignmentDelta, DeltaRow, DELTA_SCHEMA};
pub use error::TimelineError;
pub use lineage::{classify, render_diff_json, LineageStep, OrgLineage};

use borges_core::diff::{diff as mapping_diff, MappingDiff};
use borges_core::mapping::AsOrgMapping;
use borges_core::pipeline::Borges;
use borges_store::{load_artifact, sha256, verify_artifact, write_artifact, ARTIFACT_EXT};
use borges_types::Asn;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Schema tag of the manifest this reader writes and accepts.
pub const TIMELINE_SCHEMA: &str = "borges.timeline.v1";

/// Manifest file name inside the timeline directory.
pub const MANIFEST_FILE: &str = "timeline.json";

const WORLDS_DIR: &str = "worlds";
const DELTAS_DIR: &str = "deltas";

/// One link of the chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelineLink {
    /// Epoch number; contiguous from 0 by construction.
    pub epoch: u64,
    /// Content address of this epoch's world artifact.
    pub world_digest: String,
    /// Content address of the parent epoch's world (`None` at genesis).
    pub parent_digest: Option<String>,
    /// SHA-256 of this link's delta file (`None` at genesis).
    pub delta_digest: Option<String>,
}

#[derive(Debug, Serialize, Deserialize)]
struct Manifest {
    schema: String,
    links: Vec<TimelineLink>,
}

/// What [`Timeline::verify`] certifies when it returns `Ok`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Number of chain links checked.
    pub links: usize,
    /// World artifacts that passed store-level verification.
    pub worlds_ok: usize,
    /// Delta files whose digest and shape checked out.
    pub deltas_ok: usize,
}

/// An open timeline directory.
#[derive(Debug)]
pub struct Timeline {
    dir: PathBuf,
    links: Vec<TimelineLink>,
}

impl Timeline {
    /// Opens (creating if absent) the timeline at `dir`. The manifest,
    /// if present, must parse, carry the known schema, and form a
    /// connected chain — a tampered manifest fails here, loudly.
    pub fn open(dir: &Path) -> Result<Timeline, TimelineError> {
        std::fs::create_dir_all(dir).map_err(|e| TimelineError::from_io(dir, e))?;
        let manifest_path = dir.join(MANIFEST_FILE);
        let links = if manifest_path.exists() {
            let bytes = std::fs::read(&manifest_path)
                .map_err(|e| TimelineError::from_io(&manifest_path, e))?;
            let text = std::str::from_utf8(&bytes).map_err(|e| TimelineError::Corrupt {
                detail: format!("manifest is not utf-8: {e}"),
            })?;
            let manifest: Manifest =
                serde_json::from_str(text).map_err(|e| TimelineError::Corrupt {
                    detail: format!("unparseable manifest: {e}"),
                })?;
            if manifest.schema != TIMELINE_SCHEMA {
                return Err(TimelineError::SchemaMismatch {
                    found: manifest.schema,
                });
            }
            check_chain(&manifest.links)?;
            manifest.links
        } else {
            Vec::new()
        };
        Ok(Timeline {
            dir: dir.to_path_buf(),
            links,
        })
    }

    /// The chain, oldest first.
    pub fn links(&self) -> &[TimelineLink] {
        &self.links
    }

    /// The newest link, if any.
    pub fn tip(&self) -> Option<&TimelineLink> {
        self.links.last()
    }

    /// Path of this epoch's world artifact inside the timeline.
    pub fn world_path(&self, link: &TimelineLink) -> PathBuf {
        self.dir
            .join(WORLDS_DIR)
            .join(format!("{}.{ARTIFACT_EXT}", link.world_digest))
    }

    fn delta_path(&self, epoch: u64) -> PathBuf {
        self.dir.join(DELTAS_DIR).join(format!("{epoch}.delta"))
    }

    /// Appends the pipeline's current world as the next epoch: stamps
    /// the epoch into the world (so it participates in the content
    /// address), writes the artifact and the delta against the parent,
    /// then atomically rewrites the manifest. Returns the new link.
    pub fn append(&mut self, borges: &mut Borges) -> Result<TimelineLink, TimelineError> {
        let epoch = self.tip().map(|l| l.epoch + 1).unwrap_or(0);
        borges.set_world_epoch(epoch);
        let world = borges.to_world();

        let worlds_dir = self.dir.join(WORLDS_DIR);
        std::fs::create_dir_all(&worlds_dir).map_err(|e| TimelineError::from_io(&worlds_dir, e))?;
        // Digest is only known after encoding; write to the staging name
        // first, then the content-addressed one (write_artifact is
        // atomic per call, and the manifest flips last).
        let digest = borges_store::world_digest(&world);
        let world_path = worlds_dir.join(format!("{digest}.{ARTIFACT_EXT}"));
        let written = write_artifact(&world_path, &world)?;
        debug_assert_eq!(written, digest);

        let parent = self.tip().cloned();
        let delta_digest = match &parent {
            None => None,
            Some(parent_link) => {
                let parent_mapping = self.mapping_of_link(parent_link)?;
                let child_mapping = borges.full();
                let delta = AssignmentDelta::between(&parent_mapping, &child_mapping);
                let bytes = delta.encode();
                let deltas_dir = self.dir.join(DELTAS_DIR);
                std::fs::create_dir_all(&deltas_dir)
                    .map_err(|e| TimelineError::from_io(&deltas_dir, e))?;
                let path = self.delta_path(epoch);
                borges_store::write_atomic(&path, &bytes)
                    .map_err(|e| TimelineError::from_io(&path, e))?;
                Some(sha256::hex(&sha256::sha256(&bytes)))
            }
        };

        let link = TimelineLink {
            epoch,
            world_digest: digest,
            parent_digest: parent.map(|p| p.world_digest),
            delta_digest,
        };
        self.links.push(link.clone());
        self.write_manifest()?;
        Ok(link)
    }

    fn write_manifest(&self) -> Result<(), TimelineError> {
        let manifest = Manifest {
            schema: TIMELINE_SCHEMA.to_string(),
            links: self.links.clone(),
        };
        let bytes = serde_json::to_string_pretty(&manifest)
            .expect("manifest serializes")
            .into_bytes();
        let path = self.dir.join(MANIFEST_FILE);
        borges_store::write_atomic(&path, &bytes).map_err(|e| TimelineError::from_io(&path, e))
    }

    /// Floor resolution: the newest link with `epoch <= at`. This is
    /// what `?at=` means — "the world as of time `at`".
    pub fn resolve_at(&self, at: u64) -> Result<&TimelineLink, TimelineError> {
        if self.links.is_empty() {
            return Err(TimelineError::Empty);
        }
        self.links
            .iter()
            .rev()
            .find(|l| l.epoch <= at)
            .ok_or(TimelineError::UnknownEpoch { at })
    }

    /// The link at exactly `epoch`.
    pub fn link_at(&self, epoch: u64) -> Result<&TimelineLink, TimelineError> {
        if self.links.is_empty() {
            return Err(TimelineError::Empty);
        }
        self.links
            .iter()
            .find(|l| l.epoch == epoch)
            .ok_or(TimelineError::UnknownEpoch { at: epoch })
    }

    /// Loads the world at exactly `epoch` back into a serving-ready
    /// pipeline. The loaded artifact must still match the chained
    /// content address and carry the chained epoch.
    pub fn load_epoch(&self, epoch: u64, threads: usize) -> Result<Borges, TimelineError> {
        let link = self.link_at(epoch)?.clone();
        let path = self.world_path(&link);
        if !path.exists() {
            return Err(TimelineError::MissingWorld {
                epoch: link.epoch,
                digest: link.world_digest,
            });
        }
        let loaded = load_artifact(&path).map_err(|e| TimelineError::TamperedWorld {
            epoch: link.epoch,
            digest: link.world_digest.clone(),
            detail: e.to_string(),
        })?;
        if loaded.digest != link.world_digest {
            return Err(TimelineError::TamperedWorld {
                epoch: link.epoch,
                digest: link.world_digest,
                detail: format!("artifact digest is {}", loaded.digest),
            });
        }
        if loaded.world.epoch != link.epoch {
            return Err(TimelineError::TamperedWorld {
                epoch: link.epoch,
                digest: link.world_digest,
                detail: format!("world carries epoch {}", loaded.world.epoch),
            });
        }
        Borges::from_world(&loaded.world, threads).map_err(|detail| TimelineError::TamperedWorld {
            epoch: link.epoch,
            digest: link.world_digest,
            detail,
        })
    }

    fn mapping_of_link(&self, link: &TimelineLink) -> Result<AsOrgMapping, TimelineError> {
        Ok(self.load_epoch(link.epoch, 1)?.full())
    }

    /// Reads, digest-checks, and decodes one link's delta file.
    fn read_delta(&self, link: &TimelineLink) -> Result<AssignmentDelta, TimelineError> {
        let expected = link
            .delta_digest
            .as_ref()
            .ok_or(TimelineError::BrokenChain {
                epoch: link.epoch,
                detail: "non-genesis link has no delta digest".to_string(),
            })?;
        let path = self.delta_path(link.epoch);
        if !path.exists() {
            return Err(TimelineError::MissingDelta { epoch: link.epoch });
        }
        let bytes = std::fs::read(&path).map_err(|e| TimelineError::from_io(&path, e))?;
        let actual = sha256::hex(&sha256::sha256(&bytes));
        if &actual != expected {
            return Err(TimelineError::TamperedDelta {
                epoch: link.epoch,
                detail: format!("digest is {actual}, chain says {expected}"),
            });
        }
        AssignmentDelta::decode(&bytes).map_err(|detail| TimelineError::TamperedDelta {
            epoch: link.epoch,
            detail,
        })
    }

    /// Integrity-checks the whole chain: every world artifact
    /// re-verifies against its chained content address and epoch, and
    /// every delta file against its chained digest. Any tampering —
    /// a flipped byte, a relabeled epoch, a deleted file — surfaces as
    /// a typed error.
    pub fn verify(&self) -> Result<VerifyReport, TimelineError> {
        check_chain(&self.links)?;
        let mut worlds_ok = 0;
        let mut deltas_ok = 0;
        for link in &self.links {
            let path = self.world_path(link);
            if !path.exists() {
                return Err(TimelineError::MissingWorld {
                    epoch: link.epoch,
                    digest: link.world_digest.clone(),
                });
            }
            let info = verify_artifact(&path).map_err(|e| TimelineError::TamperedWorld {
                epoch: link.epoch,
                digest: link.world_digest.clone(),
                detail: e.to_string(),
            })?;
            if info.digest != link.world_digest {
                return Err(TimelineError::TamperedWorld {
                    epoch: link.epoch,
                    digest: link.world_digest.clone(),
                    detail: format!("artifact digest is {}", info.digest),
                });
            }
            if info.epoch != link.epoch {
                return Err(TimelineError::TamperedWorld {
                    epoch: link.epoch,
                    digest: link.world_digest.clone(),
                    detail: format!("world carries epoch {}", info.epoch),
                });
            }
            worlds_ok += 1;
            if link.parent_digest.is_some() {
                self.read_delta(link)?;
                deltas_ok += 1;
            }
        }
        Ok(VerifyReport {
            links: self.links.len(),
            worlds_ok,
            deltas_ok,
        })
    }

    /// The assignment map at exactly `epoch`, built by loading the
    /// genesis-nearest world once and composing deltas forward — the
    /// cheap path the diff/lineage queries share.
    fn composed_assignments(
        &self,
        base_epoch: u64,
        target_epoch: u64,
        base: &AsOrgMapping,
    ) -> Result<BTreeMap<u32, u32>, TimelineError> {
        let mut assign = assignments(base);
        for link in &self.links {
            if link.epoch > base_epoch && link.epoch <= target_epoch {
                self.read_delta(link)?.apply(&mut assign);
            }
        }
        Ok(assign)
    }

    /// The difference between two chain epochs, computed by composing
    /// per-link deltas from `t1` to `t2`. Byte-identical to
    /// [`Timeline::diff_direct`] — the reconstruction invariant — which
    /// tests pin.
    pub fn diff(&self, t1: u64, t2: u64) -> Result<MappingDiff, TimelineError> {
        if t1 > t2 {
            return Err(TimelineError::InvalidRange { t1, t2 });
        }
        let from = self.link_at(t1)?.clone();
        self.link_at(t2)?;
        let base = self.mapping_of_link(&from)?;
        let assign = self.composed_assignments(t1, t2, &base)?;
        let reconstructed = mapping_from_assignments(&assign);
        Ok(mapping_diff(&base, &reconstructed))
    }

    /// The same difference computed the obvious way: load both worlds,
    /// diff their mappings. The oracle the composed path is pinned to.
    pub fn diff_direct(&self, t1: u64, t2: u64) -> Result<MappingDiff, TimelineError> {
        if t1 > t2 {
            return Err(TimelineError::InvalidRange { t1, t2 });
        }
        let before_link = self.link_at(t1)?.clone();
        let after_link = self.link_at(t2)?.clone();
        let before = self.mapping_of_link(&before_link)?;
        let after = self.mapping_of_link(&after_link)?;
        Ok(mapping_diff(&before, &after))
    }

    /// Walks the whole chain and narrates what happened to `asn`'s
    /// organization at every epoch: genesis, merges (acquisitions),
    /// splits (spinoffs), membership churn, disappearance.
    pub fn org_lineage(&self, asn: Asn) -> Result<OrgLineage, TimelineError> {
        if self.links.is_empty() {
            return Err(TimelineError::Empty);
        }
        let genesis = &self.links[0];
        let mut prev = self.mapping_of_link(genesis)?;
        let mut steps = vec![lineage::classify(genesis.epoch, None, &prev, None, asn)];
        let mut assign = assignments(&prev);
        for link in &self.links[1..] {
            self.read_delta(link)?.apply(&mut assign);
            let cur = mapping_from_assignments(&assign);
            let d = mapping_diff(&prev, &cur);
            steps.push(lineage::classify(
                link.epoch,
                Some(&prev),
                &cur,
                Some(&d),
                asn,
            ));
            prev = cur;
        }
        Ok(OrgLineage {
            asn: asn.value(),
            steps,
        })
    }
}

/// Chain-shape validation: epochs strictly increase, genesis has no
/// parent/delta, and every later link names its parent's digest.
fn check_chain(links: &[TimelineLink]) -> Result<(), TimelineError> {
    for (i, link) in links.iter().enumerate() {
        if i == 0 {
            if link.parent_digest.is_some() || link.delta_digest.is_some() {
                return Err(TimelineError::BrokenChain {
                    epoch: link.epoch,
                    detail: "genesis link must have no parent or delta".to_string(),
                });
            }
            continue;
        }
        let prev = &links[i - 1];
        if link.epoch <= prev.epoch {
            return Err(TimelineError::BrokenChain {
                epoch: link.epoch,
                detail: format!("epoch does not advance past {}", prev.epoch),
            });
        }
        if link.parent_digest.as_deref() != Some(prev.world_digest.as_str()) {
            return Err(TimelineError::BrokenChain {
                epoch: link.epoch,
                detail: "parent digest does not match previous link".to_string(),
            });
        }
        if link.delta_digest.is_none() {
            return Err(TimelineError::BrokenChain {
                epoch: link.epoch,
                detail: "non-genesis link has no delta digest".to_string(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use borges_llm::SimLlm;
    use borges_synthnet::{EvolutionEvent, GeneratorConfig, SyntheticInternet};
    use borges_websim::SimWebClient;

    fn compile(world: &SyntheticInternet) -> Borges {
        let llm = SimLlm::new(77);
        Borges::run(
            &world.whois,
            &world.pdb,
            SimWebClient::browser(&world.web),
            &llm,
        )
    }

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("borges-timeline-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Three epochs: genesis, a cogent+orange acquisition, then a
    /// digicel spinoff — the scripted M&A arc.
    fn three_epoch_timeline(name: &str) -> (PathBuf, Timeline) {
        let dir = scratch(name);
        let mut timeline = Timeline::open(&dir).unwrap();
        let w0 = SyntheticInternet::generate(&GeneratorConfig::tiny(77));
        let w1 = w0
            .evolve(
                &[EvolutionEvent::Acquisition {
                    acquirer: "cogent".into(),
                    target: "orange".into(),
                }],
                78,
            )
            .unwrap();
        let w2 = w1
            .evolve(
                &[EvolutionEvent::Spinoff {
                    brand: "digicel".into(),
                    countries: vec!["KE".into(), "NG".into()],
                    new_brand: "sahelwave".into(),
                }],
                79,
            )
            .unwrap();
        for world in [&w0, &w1, &w2] {
            timeline.append(&mut compile(world)).unwrap();
        }
        (dir, timeline)
    }

    #[test]
    fn append_builds_a_contiguous_verifiable_chain() {
        let (dir, timeline) = three_epoch_timeline("chain");
        let epochs: Vec<u64> = timeline.links().iter().map(|l| l.epoch).collect();
        assert_eq!(epochs, vec![0, 1, 2]);
        assert!(timeline.links()[0].parent_digest.is_none());
        assert!(timeline.links()[0].delta_digest.is_none());
        for i in 1..3 {
            assert_eq!(
                timeline.links()[i].parent_digest.as_deref(),
                Some(timeline.links()[i - 1].world_digest.as_str())
            );
            assert!(timeline.links()[i].delta_digest.is_some());
        }
        let report = timeline.verify().unwrap();
        assert_eq!(report.links, 3);
        assert_eq!(report.worlds_ok, 3);
        assert_eq!(report.deltas_ok, 2);

        // Reopen: same chain, still verifies.
        let reopened = Timeline::open(&dir).unwrap();
        assert_eq!(reopened.links(), timeline.links());
        reopened.verify().unwrap();
    }

    #[test]
    fn worlds_carry_their_epoch_in_the_content_address() {
        let (_dir, timeline) = three_epoch_timeline("epoch-stamp");
        for link in timeline.links() {
            let borges = timeline.load_epoch(link.epoch, 1).unwrap();
            assert_eq!(borges.world_epoch(), link.epoch);
        }
        // Identical pipelines at different epochs get different
        // content addresses — the epoch is part of the address.
        let dir2 = scratch("epoch-stamp-2");
        let mut t2 = Timeline::open(&dir2).unwrap();
        let w = SyntheticInternet::generate(&GeneratorConfig::tiny(77));
        let a = t2.append(&mut compile(&w)).unwrap();
        let b = t2.append(&mut compile(&w)).unwrap();
        assert_ne!(a.world_digest, b.world_digest);
    }

    #[test]
    fn resolve_at_floors_and_rejects_prehistory() {
        let (_dir, timeline) = three_epoch_timeline("resolve");
        assert_eq!(timeline.resolve_at(0).unwrap().epoch, 0);
        assert_eq!(timeline.resolve_at(1).unwrap().epoch, 1);
        assert_eq!(timeline.resolve_at(99).unwrap().epoch, 2, "floor to tip");
        let empty = Timeline::open(&scratch("resolve-empty")).unwrap();
        assert_eq!(empty.resolve_at(0).unwrap_err().kind(), "empty");
        assert_eq!(timeline.link_at(7).unwrap_err().kind(), "unknown_epoch");
    }

    #[test]
    fn composed_diff_is_identical_to_direct_diff() {
        let (_dir, timeline) = three_epoch_timeline("compose");
        for (t1, t2) in [(0, 1), (1, 2), (0, 2), (2, 2)] {
            let composed = timeline.diff(t1, t2).unwrap();
            let direct = timeline.diff_direct(t1, t2).unwrap();
            assert_eq!(composed, direct, "({t1},{t2})");
            assert_eq!(
                lineage::render_diff_json(t1, t2, &composed),
                lineage::render_diff_json(t1, t2, &direct),
                "rendered bytes ({t1},{t2})"
            );
        }
        assert!(timeline.diff(2, 2).unwrap().is_empty());
        assert_eq!(timeline.diff(2, 0).unwrap_err().kind(), "invalid_range");
    }

    #[test]
    fn diff_shows_the_scripted_acquisition_and_spinoff() {
        let (_dir, timeline) = three_epoch_timeline("script");
        let d01 = timeline.diff(0, 1).unwrap();
        assert!(
            d01.merges.iter().any(
                |m| m.fragments.iter().flatten().any(|&a| a == Asn::new(174))
                    && m.fragments.iter().flatten().any(|&a| a == Asn::new(3215))
            ),
            "cogent+orange merge must appear between epochs 0 and 1"
        );
        let d12 = timeline.diff(1, 2).unwrap();
        assert!(
            d12.splits
                .iter()
                .any(|s| s.pieces.iter().flatten().any(|&a| a == Asn::new(36926))),
            "digicel spinoff must appear between epochs 1 and 2"
        );
    }

    #[test]
    fn lineage_narrates_the_scripted_history() {
        let (_dir, timeline) = three_epoch_timeline("lineage");
        let cogent = timeline.org_lineage(Asn::new(174)).unwrap();
        assert_eq!(cogent.steps.len(), 3);
        assert_eq!(cogent.steps[0].kind, "genesis");
        assert_eq!(cogent.steps[1].kind, "merged", "{:?}", cogent.steps[1]);
        assert!(
            cogent.steps[1].members.contains(&3215),
            "orange joined cogent's org"
        );
        let digicel = timeline.org_lineage(Asn::new(36926)).unwrap();
        assert_eq!(digicel.steps[2].kind, "split", "{:?}", digicel.steps[2]);
        assert!(
            !digicel.steps[2].members.contains(&23520),
            "the KE unit left in the spinoff"
        );
        // The JSON body is non-empty and mentions the ASN.
        assert!(cogent.to_json().starts_with("{\"asn\":\"AS174\""));
    }

    #[test]
    fn tampered_world_is_detected() {
        let (dir, timeline) = three_epoch_timeline("tamper-world");
        let path = timeline.world_path(&timeline.links()[1]);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = timeline.verify().unwrap_err();
        assert_eq!(err.kind(), "tampered_world", "{err}");
        assert!(err.to_string().contains("CORRUPT"));
        // Loading that epoch also refuses.
        let reopened = Timeline::open(&dir).unwrap();
        assert_eq!(
            reopened.load_epoch(1, 1).unwrap_err().kind(),
            "tampered_world"
        );
        // Other epochs still load.
        reopened.load_epoch(0, 1).unwrap();
    }

    #[test]
    fn missing_world_and_delta_are_detected() {
        let (_dir, timeline) = three_epoch_timeline("missing");
        std::fs::remove_file(timeline.world_path(&timeline.links()[2])).unwrap();
        assert_eq!(timeline.verify().unwrap_err().kind(), "missing_world");
    }

    #[test]
    fn tampered_delta_is_detected() {
        let (dir, timeline) = three_epoch_timeline("tamper-delta");
        let path = dir.join(DELTAS_DIR).join("1.delta");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = timeline.verify().unwrap_err();
        assert_eq!(err.kind(), "tampered_delta", "{err}");
        std::fs::remove_file(&path).unwrap();
        assert_eq!(timeline.verify().unwrap_err().kind(), "missing_delta");
    }

    #[test]
    fn manifest_tampering_fails_open() {
        let (dir, timeline) = three_epoch_timeline("tamper-manifest");
        let manifest_path = dir.join(MANIFEST_FILE);

        // Relabeled parent digest: chain no longer connects. (Forge
        // only the pointer — rewriting the digest everywhere would
        // keep the chain self-consistent and must be caught by
        // `verify`, not `open`.)
        let honest = std::fs::read_to_string(&manifest_path).unwrap();
        let forged = honest.replace(
            &format!(
                "\"parent_digest\": \"{}\"",
                timeline.links()[0].world_digest
            ),
            &format!("\"parent_digest\": \"{}\"", "0".repeat(64)),
        );
        assert_ne!(honest, forged);
        std::fs::write(&manifest_path, &forged).unwrap();
        assert_eq!(
            Timeline::open(&dir).unwrap_err().kind(),
            "broken_chain",
            "swapped digest must break the chain"
        );

        // Foreign schema.
        std::fs::write(
            &manifest_path,
            honest.replace(TIMELINE_SCHEMA, "borges.timeline.v99"),
        )
        .unwrap();
        assert_eq!(Timeline::open(&dir).unwrap_err().kind(), "schema");

        // Garbage.
        std::fs::write(&manifest_path, b"not json").unwrap();
        assert_eq!(Timeline::open(&dir).unwrap_err().kind(), "corrupt");
    }

    #[test]
    fn epoch_relabeling_is_detected() {
        // Rewrite the manifest renaming epoch 1 → 5 while keeping the
        // digests intact: the worlds still verify as artifacts, but the
        // stamped epoch no longer matches the chain.
        let (dir, timeline) = three_epoch_timeline("relabel");
        let manifest_path = dir.join(MANIFEST_FILE);
        let honest = std::fs::read_to_string(&manifest_path).unwrap();
        let forged = honest.replace("\"epoch\": 2", "\"epoch\": 5");
        assert_ne!(honest, forged);
        std::fs::write(&manifest_path, &forged).unwrap();
        // Also rename the delta file so the relabeled link finds one.
        std::fs::rename(
            dir.join(DELTAS_DIR).join("2.delta"),
            dir.join(DELTAS_DIR).join("5.delta"),
        )
        .unwrap();
        let reopened = Timeline::open(&dir).unwrap();
        let err = reopened.verify().unwrap_err();
        assert_eq!(err.kind(), "tampered_world", "{err}");
        assert!(err.to_string().contains("world carries epoch 2"), "{err}");
        drop(timeline);
    }
}
