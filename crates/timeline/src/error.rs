//! The timeline corruption/chain taxonomy.
//!
//! Mirrors the store's philosophy: every way a timeline directory can
//! be wrong — unreadable manifest, foreign schema, a chain whose links
//! do not connect, a missing or tampered world artifact, a delta file
//! whose digest moved — maps to a typed error with a stable `kind()`
//! string, and the walker never panics on hostile bytes.

use borges_store::StoreError;
use std::fmt;
use std::path::Path;

/// Why a timeline operation failed. Every variant is a *refusal with a
/// name*: `timeline verify` exits non-zero printing the kind, and the
/// serve layer maps these onto 4xx/5xx without inventing taxonomy of
/// its own.
#[derive(Debug)]
pub enum TimelineError {
    /// Filesystem failure reading or writing under the timeline dir.
    Io {
        /// The path involved.
        path: String,
        /// The OS error.
        detail: String,
    },
    /// The manifest exists but is not parseable JSON of the right shape.
    Corrupt {
        /// What failed to parse.
        detail: String,
    },
    /// The manifest parses but tags a schema this reader does not speak.
    SchemaMismatch {
        /// The schema string found.
        found: String,
    },
    /// Links do not form a connected, strictly-advancing chain.
    BrokenChain {
        /// Epoch of the offending link.
        epoch: u64,
        /// What about it is broken.
        detail: String,
    },
    /// A link names a world artifact that is not in `worlds/`.
    MissingWorld {
        /// Epoch of the link.
        epoch: u64,
        /// The content address the chain expected.
        digest: String,
    },
    /// A link's world artifact exists but fails verification or no
    /// longer matches the chained digest/epoch.
    TamperedWorld {
        /// Epoch of the link.
        epoch: u64,
        /// The content address the chain expected.
        digest: String,
        /// The store-level or chain-level mismatch.
        detail: String,
    },
    /// A link records a delta digest but the delta file is gone.
    MissingDelta {
        /// Epoch of the link.
        epoch: u64,
    },
    /// A link's delta file exists but its digest or shape moved.
    TamperedDelta {
        /// Epoch of the link.
        epoch: u64,
        /// What about it is wrong.
        detail: String,
    },
    /// No chain link exists at (or below, for floor resolution) the
    /// requested epoch.
    UnknownEpoch {
        /// The epoch asked for.
        at: u64,
    },
    /// The operation needs at least one link and the timeline has none.
    Empty,
    /// A range query ran backwards (`t1 > t2`).
    InvalidRange {
        /// Earlier bound as given.
        t1: u64,
        /// Later bound as given.
        t2: u64,
    },
    /// An underlying store operation failed outside the cases above.
    Store(StoreError),
}

impl TimelineError {
    /// Stable, grep-able error-class label.
    pub fn kind(&self) -> &'static str {
        match self {
            TimelineError::Io { .. } => "io",
            TimelineError::Corrupt { .. } => "corrupt",
            TimelineError::SchemaMismatch { .. } => "schema",
            TimelineError::BrokenChain { .. } => "broken_chain",
            TimelineError::MissingWorld { .. } => "missing_world",
            TimelineError::TamperedWorld { .. } => "tampered_world",
            TimelineError::MissingDelta { .. } => "missing_delta",
            TimelineError::TamperedDelta { .. } => "tampered_delta",
            TimelineError::UnknownEpoch { .. } => "unknown_epoch",
            TimelineError::Empty => "empty",
            TimelineError::InvalidRange { .. } => "invalid_range",
            TimelineError::Store(_) => "store",
        }
    }

    /// Wraps an IO error with the path it happened on.
    pub fn from_io(path: &Path, err: std::io::Error) -> TimelineError {
        TimelineError::Io {
            path: path.display().to_string(),
            detail: err.to_string(),
        }
    }
}

impl fmt::Display for TimelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimelineError::Io { path, detail } => write!(f, "io error at {path}: {detail}"),
            TimelineError::Corrupt { detail } => write!(f, "CORRUPT manifest: {detail}"),
            TimelineError::SchemaMismatch { found } => {
                write!(f, "CORRUPT manifest: unknown schema {found:?}")
            }
            TimelineError::BrokenChain { epoch, detail } => {
                write!(f, "CORRUPT chain at epoch {epoch}: {detail}")
            }
            TimelineError::MissingWorld { epoch, digest } => {
                write!(f, "CORRUPT chain at epoch {epoch}: world {digest} missing")
            }
            TimelineError::TamperedWorld {
                epoch,
                digest,
                detail,
            } => write!(
                f,
                "CORRUPT chain at epoch {epoch}: world {digest} tampered: {detail}"
            ),
            TimelineError::MissingDelta { epoch } => {
                write!(f, "CORRUPT chain at epoch {epoch}: delta file missing")
            }
            TimelineError::TamperedDelta { epoch, detail } => {
                write!(
                    f,
                    "CORRUPT chain at epoch {epoch}: delta tampered: {detail}"
                )
            }
            TimelineError::UnknownEpoch { at } => write!(f, "no chain link at epoch {at}"),
            TimelineError::Empty => write!(f, "timeline has no links"),
            TimelineError::InvalidRange { t1, t2 } => {
                write!(f, "invalid range: t1 {t1} > t2 {t2}")
            }
            TimelineError::Store(err) => write!(f, "store error: {err}"),
        }
    }
}

impl From<StoreError> for TimelineError {
    fn from(err: StoreError) -> Self {
        TimelineError::Store(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        let cases: Vec<(TimelineError, &str)> = vec![
            (TimelineError::Corrupt { detail: "x".into() }, "corrupt"),
            (
                TimelineError::SchemaMismatch { found: "v9".into() },
                "schema",
            ),
            (
                TimelineError::BrokenChain {
                    epoch: 1,
                    detail: "x".into(),
                },
                "broken_chain",
            ),
            (
                TimelineError::MissingWorld {
                    epoch: 1,
                    digest: "d".into(),
                },
                "missing_world",
            ),
            (TimelineError::MissingDelta { epoch: 1 }, "missing_delta"),
            (TimelineError::UnknownEpoch { at: 7 }, "unknown_epoch"),
            (TimelineError::Empty, "empty"),
            (
                TimelineError::InvalidRange { t1: 2, t2: 1 },
                "invalid_range",
            ),
        ];
        for (err, kind) in cases {
            assert_eq!(err.kind(), kind);
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn corruption_messages_shout() {
        for err in [
            TimelineError::Corrupt {
                detail: "bad json".into(),
            },
            TimelineError::BrokenChain {
                epoch: 3,
                detail: "parent mismatch".into(),
            },
            TimelineError::MissingWorld {
                epoch: 2,
                digest: "abc".into(),
            },
            TimelineError::TamperedDelta {
                epoch: 1,
                detail: "digest moved".into(),
            },
        ] {
            assert!(err.to_string().contains("CORRUPT"), "{err}");
        }
    }
}
