//! Organization lineage: one ASN's history across the chain.
//!
//! The paper's discussion (§7) regrets that single-snapshot methods
//! cannot show organizational motion — acquisitions, rebrandings,
//! spinoffs. A timeline *can*: walking the chain and classifying each
//! epoch transition with [`borges_core::diff`] yields a per-ASN
//! storyline ("absorbed two fragments at epoch 3, spun off at epoch 5")
//! that the serve layer exposes as `/v1/org/{asn}/history`.

use borges_core::diff::MappingDiff;
use borges_core::mapping::AsOrgMapping;
use borges_types::Asn;

/// What happened to the ASN's organization at one epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineageStep {
    /// The chain epoch this step describes.
    pub epoch: u64,
    /// Event kind: `genesis`, `appeared`, `disappeared`, `absent`,
    /// `merged`, `split`, `reshuffled`, `membership`, or `unchanged`.
    pub kind: &'static str,
    /// The organization's anchor (lowest member ASN) at this epoch, if
    /// the ASN is mapped.
    pub org: Option<u32>,
    /// Sorted members of the organization at this epoch (empty when
    /// the ASN is unmapped).
    pub members: Vec<u32>,
    /// For `merged`/`reshuffled`: the absorbed fragments. For `split`:
    /// the scattered pieces. Empty otherwise.
    pub detail: Vec<Vec<u32>>,
}

/// An ASN's full history across the chain, oldest epoch first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrgLineage {
    /// The ASN the lineage follows.
    pub asn: u32,
    /// One step per chain link, in epoch order.
    pub steps: Vec<LineageStep>,
}

/// Classifies what happened to `asn` at one epoch transition. `prev`
/// is `None` only for the genesis link; `d` must be `diff(prev, cur)`
/// when `prev` is present.
pub fn classify(
    epoch: u64,
    prev: Option<&AsOrgMapping>,
    cur: &AsOrgMapping,
    d: Option<&MappingDiff>,
    asn: Asn,
) -> LineageStep {
    let members: Vec<u32> = cur.siblings_of(asn).iter().map(|a| a.value()).collect();
    let org = members.first().copied();
    let in_cur = org.is_some();

    let (kind, detail) = match prev {
        None => (if in_cur { "genesis" } else { "absent" }, Vec::new()),
        Some(p) => {
            let in_prev = p.cluster_of(asn).is_some();
            match (in_prev, in_cur) {
                (false, false) => ("absent", Vec::new()),
                (false, true) => ("appeared", Vec::new()),
                (true, false) => ("disappeared", Vec::new()),
                (true, true) => {
                    let d = d.expect("diff accompanies a non-genesis step");
                    let cur_id = cur.cluster_of(asn).expect("asn is in cur");
                    let prev_id = p.cluster_of(asn).expect("asn is in prev");
                    let merged = d.merges.iter().find(|m| m.after == cur_id);
                    let split = d.splits.iter().find(|s| s.before == prev_id);
                    let flatten = |groups: &[Vec<Asn>]| {
                        groups
                            .iter()
                            .map(|g| g.iter().map(|a| a.value()).collect())
                            .collect()
                    };
                    match (merged, split) {
                        (Some(m), Some(_)) => ("reshuffled", flatten(&m.fragments)),
                        (Some(m), None) => ("merged", flatten(&m.fragments)),
                        (None, Some(s)) => ("split", flatten(&s.pieces)),
                        (None, None) => {
                            if p.siblings_of(asn) == cur.siblings_of(asn) {
                                ("unchanged", Vec::new())
                            } else {
                                ("membership", Vec::new())
                            }
                        }
                    }
                }
            }
        }
    };
    LineageStep {
        epoch,
        kind,
        org,
        members,
        detail,
    }
}

fn asn_str(n: u32) -> String {
    format!("\"AS{n}\"")
}

fn asn_list(list: &[u32]) -> String {
    let parts: Vec<String> = list.iter().map(|&n| asn_str(n)).collect();
    format!("[{}]", parts.join(","))
}

fn asn_groups(groups: &[Vec<u32>]) -> String {
    let parts: Vec<String> = groups.iter().map(|g| asn_list(g)).collect();
    format!("[{}]", parts.join(","))
}

impl OrgLineage {
    /// Deterministic JSON rendering — the `/v1/org/{asn}/history` body.
    pub fn to_json(&self) -> String {
        let steps: Vec<String> = self
            .steps
            .iter()
            .map(|s| {
                let org = match s.org {
                    Some(n) => asn_str(n),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"epoch\":{},\"kind\":\"{}\",\"org\":{},\"members\":{},\"detail\":{}}}",
                    s.epoch,
                    s.kind,
                    org,
                    asn_list(&s.members),
                    asn_groups(&s.detail)
                )
            })
            .collect();
        format!(
            "{{\"asn\":{},\"steps\":[{}]}}",
            asn_str(self.asn),
            steps.join(",")
        )
    }
}

/// Deterministic JSON rendering of a [`MappingDiff`] between two chain
/// epochs — the `/v1/diff/{t1}/{t2}` body. Organizations are labelled
/// by the lowest ASN across their fragments/pieces, so the rendering
/// is self-contained and stable.
pub fn render_diff_json(t1: u64, t2: u64, d: &MappingDiff) -> String {
    let label = |groups: &[Vec<Asn>]| {
        groups
            .iter()
            .filter_map(|g| g.first())
            .map(|a| a.value())
            .min()
            .expect("diff events have members")
    };
    let flatten = |groups: &[Vec<Asn>]| -> Vec<Vec<u32>> {
        groups
            .iter()
            .map(|g| g.iter().map(|a| a.value()).collect())
            .collect()
    };
    let merges: Vec<String> = d
        .merges
        .iter()
        .map(|m| {
            format!(
                "{{\"org\":{},\"fragments\":{}}}",
                asn_str(label(&m.fragments)),
                asn_groups(&flatten(&m.fragments))
            )
        })
        .collect();
    let splits: Vec<String> = d
        .splits
        .iter()
        .map(|s| {
            format!(
                "{{\"org\":{},\"pieces\":{}}}",
                asn_str(label(&s.pieces)),
                asn_groups(&flatten(&s.pieces))
            )
        })
        .collect();
    let appeared: Vec<u32> = d.appeared.iter().map(|a| a.value()).collect();
    let disappeared: Vec<u32> = d.disappeared.iter().map(|a| a.value()).collect();
    format!(
        "{{\"t1\":{},\"t2\":{},\"empty\":{},\"merges\":[{}],\"splits\":[{}],\"appeared\":{},\"disappeared\":{},\"unchanged_clusters\":{}}}",
        t1,
        t2,
        d.is_empty(),
        merges.join(","),
        splits.join(","),
        asn_list(&appeared),
        asn_list(&disappeared),
        d.unchanged_clusters
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use borges_core::diff::diff;

    fn m(groups: &[&[u32]]) -> AsOrgMapping {
        AsOrgMapping::from_groups(
            groups
                .iter()
                .map(|g| g.iter().map(|&x| Asn::new(x)).collect()),
        )
    }

    fn a(n: u32) -> Asn {
        Asn::new(n)
    }

    #[test]
    fn genesis_and_absent_at_first_epoch() {
        let cur = m(&[&[1, 2]]);
        let s = classify(0, None, &cur, None, a(1));
        assert_eq!(s.kind, "genesis");
        assert_eq!(s.org, Some(1));
        assert_eq!(s.members, vec![1, 2]);
        let s = classify(0, None, &cur, None, a(9));
        assert_eq!(s.kind, "absent");
        assert_eq!(s.org, None);
        assert!(s.members.is_empty());
    }

    #[test]
    fn merge_is_seen_by_every_member() {
        let prev = m(&[&[1, 2], &[3]]);
        let cur = m(&[&[1, 2, 3]]);
        let d = diff(&prev, &cur);
        for asn in [1, 3] {
            let s = classify(1, Some(&prev), &cur, Some(&d), a(asn));
            assert_eq!(s.kind, "merged", "AS{asn}");
            assert_eq!(s.detail, vec![vec![1, 2], vec![3]]);
        }
    }

    #[test]
    fn split_appear_disappear_membership_unchanged() {
        let prev = m(&[&[1, 2], &[5, 6], &[7]]);
        let cur = m(&[&[1], &[2], &[5, 6, 9], &[10]]);
        let d = diff(&prev, &cur);
        assert_eq!(classify(1, Some(&prev), &cur, Some(&d), a(1)).kind, "split");
        assert_eq!(
            classify(1, Some(&prev), &cur, Some(&d), a(9)).kind,
            "appeared"
        );
        assert_eq!(
            classify(1, Some(&prev), &cur, Some(&d), a(7)).kind,
            "disappeared"
        );
        assert_eq!(
            classify(1, Some(&prev), &cur, Some(&d), a(5)).kind,
            "membership",
            "AS9 joined AS5's org without a structural merge"
        );
        let same = diff(&prev, &prev.clone());
        assert_eq!(
            classify(1, Some(&prev), &prev, Some(&same), a(5)).kind,
            "unchanged"
        );
    }

    #[test]
    fn lineage_json_is_deterministic_and_shaped() {
        let lineage = OrgLineage {
            asn: 174,
            steps: vec![
                LineageStep {
                    epoch: 0,
                    kind: "genesis",
                    org: Some(174),
                    members: vec![174, 1239],
                    detail: vec![],
                },
                LineageStep {
                    epoch: 1,
                    kind: "absent",
                    org: None,
                    members: vec![],
                    detail: vec![],
                },
            ],
        };
        assert_eq!(
            lineage.to_json(),
            "{\"asn\":\"AS174\",\"steps\":[\
             {\"epoch\":0,\"kind\":\"genesis\",\"org\":\"AS174\",\"members\":[\"AS174\",\"AS1239\"],\"detail\":[]},\
             {\"epoch\":1,\"kind\":\"absent\",\"org\":null,\"members\":[],\"detail\":[]}]}"
        );
    }

    #[test]
    fn diff_json_is_deterministic_and_shaped() {
        let before = m(&[&[1, 2], &[3]]);
        let after = m(&[&[1, 2, 3], &[9]]);
        let d = diff(&before, &after);
        assert_eq!(
            render_diff_json(0, 1, &d),
            "{\"t1\":0,\"t2\":1,\"empty\":false,\
             \"merges\":[{\"org\":\"AS1\",\"fragments\":[[\"AS1\",\"AS2\"],[\"AS3\"]]}],\
             \"splits\":[],\"appeared\":[\"AS9\"],\"disappeared\":[],\"unchanged_clusters\":0}"
        );
    }

    #[test]
    fn empty_diff_renders_empty_true() {
        let a = m(&[&[1, 2]]);
        let d = diff(&a, &a.clone());
        let json = render_diff_json(3, 3, &d);
        assert!(json.contains("\"empty\":true"), "{json}");
    }
}
