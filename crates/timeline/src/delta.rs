//! Per-link assignment deltas.
//!
//! Each chain link past genesis carries a delta file describing how the
//! ASN→organization assignment moved between the parent world and the
//! child world. The representation is an *anchor map*: every mapped ASN
//! is assigned to the lowest member ASN of its organization. Because
//! [`AsOrgMapping::from_groups`] fully normalizes a partition (members
//! sorted, groups ordered by lowest ASN, dense cluster ids in that
//! order), regrouping an anchor map through `from_groups` reproduces the
//! original mapping *exactly*, cluster ids included — which is what lets
//! [`crate::Timeline::diff`] compose deltas and still return a diff
//! byte-identical to one computed from the two worlds directly.

use borges_core::mapping::AsOrgMapping;
use borges_types::Asn;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Schema tag written into every delta file.
pub const DELTA_SCHEMA: &str = "borges.timeline.delta.v1";

/// One reassignment: `asn` now belongs to the organization anchored at
/// `anchor` (the org's lowest member ASN in the child world).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaRow {
    /// The ASN whose assignment changed or appeared.
    pub asn: u32,
    /// Lowest member ASN of its organization in the child world.
    pub anchor: u32,
}

/// The difference between two assignment maps, minimal and sorted.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssignmentDelta {
    /// Schema tag (`borges.timeline.delta.v1`).
    pub schema: String,
    /// ASNs whose anchor changed or that appeared, ascending by ASN.
    pub set: Vec<DeltaRow>,
    /// ASNs present in the parent but absent from the child, ascending.
    pub removed: Vec<u32>,
}

/// Collapses a mapping to its anchor map: ASN → lowest member ASN of
/// its organization.
pub fn assignments(mapping: &AsOrgMapping) -> BTreeMap<u32, u32> {
    let mut out = BTreeMap::new();
    for (_, members) in mapping.clusters() {
        let anchor = members[0].value();
        for &asn in members {
            out.insert(asn.value(), anchor);
        }
    }
    out
}

/// Rebuilds the mapping an anchor map describes. Exact inverse of
/// [`assignments`] thanks to `from_groups` normalization.
pub fn mapping_from_assignments(assignments: &BTreeMap<u32, u32>) -> AsOrgMapping {
    let mut groups: BTreeMap<u32, Vec<Asn>> = BTreeMap::new();
    for (&asn, &anchor) in assignments {
        groups.entry(anchor).or_default().push(Asn::new(asn));
    }
    AsOrgMapping::from_groups(groups.into_values())
}

impl AssignmentDelta {
    /// Computes the minimal delta taking `parent`'s assignment to
    /// `child`'s.
    pub fn between(parent: &AsOrgMapping, child: &AsOrgMapping) -> AssignmentDelta {
        let before = assignments(parent);
        let after = assignments(child);
        let mut set = Vec::new();
        for (&asn, &anchor) in &after {
            if before.get(&asn) != Some(&anchor) {
                set.push(DeltaRow { asn, anchor });
            }
        }
        let removed = before
            .keys()
            .filter(|asn| !after.contains_key(asn))
            .copied()
            .collect();
        AssignmentDelta {
            schema: DELTA_SCHEMA.to_string(),
            set,
            removed,
        }
    }

    /// Applies this delta to an assignment map in place.
    pub fn apply(&self, assignments: &mut BTreeMap<u32, u32>) {
        for asn in &self.removed {
            assignments.remove(asn);
        }
        for row in &self.set {
            assignments.insert(row.asn, row.anchor);
        }
    }

    /// `true` when the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty() && self.removed.is_empty()
    }

    /// Serializes to the canonical on-disk bytes.
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_string_pretty(self)
            .expect("delta serializes")
            .into_bytes()
    }

    /// Parses on-disk bytes, rejecting foreign schemas.
    pub fn decode(bytes: &[u8]) -> Result<AssignmentDelta, String> {
        let text = std::str::from_utf8(bytes).map_err(|e| format!("delta is not utf-8: {e}"))?;
        let delta: AssignmentDelta =
            serde_json::from_str(text).map_err(|e| format!("unparseable delta: {e}"))?;
        if delta.schema != DELTA_SCHEMA {
            return Err(format!("unknown delta schema {:?}", delta.schema));
        }
        Ok(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(groups: &[&[u32]]) -> AsOrgMapping {
        AsOrgMapping::from_groups(
            groups
                .iter()
                .map(|g| g.iter().map(|&x| Asn::new(x)).collect()),
        )
    }

    #[test]
    fn assignments_round_trip_exactly() {
        let mapping = m(&[&[3356, 209, 3549], &[174], &[7018, 2386]]);
        let rebuilt = mapping_from_assignments(&assignments(&mapping));
        assert_eq!(rebuilt, mapping, "from_groups normalization is total");
    }

    #[test]
    fn delta_between_and_apply_compose() {
        let parent = m(&[&[1, 2], &[3, 4], &[5]]);
        let child = m(&[&[1, 2, 3, 4], &[6]]);
        let delta = AssignmentDelta::between(&parent, &child);
        let mut assign = assignments(&parent);
        delta.apply(&mut assign);
        assert_eq!(assign, assignments(&child));
        assert_eq!(mapping_from_assignments(&assign), child);
    }

    #[test]
    fn identity_delta_is_empty() {
        let mapping = m(&[&[1, 2], &[9]]);
        let delta = AssignmentDelta::between(&mapping, &mapping.clone());
        assert!(delta.is_empty());
    }

    #[test]
    fn delta_is_minimal() {
        // Only AS3's move is recorded; AS1/AS2 stay anchored at AS1.
        let parent = m(&[&[1, 2], &[3]]);
        let child = m(&[&[1, 2], &[3, 7]]);
        let delta = AssignmentDelta::between(&parent, &child);
        assert_eq!(
            delta.set,
            vec![DeltaRow { asn: 7, anchor: 3 }],
            "unmoved assignments are not re-stated"
        );
        assert!(delta.removed.is_empty());
    }

    #[test]
    fn encode_decode_round_trips() {
        let parent = m(&[&[1, 2, 3]]);
        let child = m(&[&[1], &[2, 3]]);
        let delta = AssignmentDelta::between(&parent, &child);
        let decoded = AssignmentDelta::decode(&delta.encode()).unwrap();
        assert_eq!(decoded, delta);
    }

    #[test]
    fn decode_rejects_foreign_schema() {
        let err = AssignmentDelta::decode(
            br#"{"schema":"borges.timeline.delta.v99","set":[],"removed":[]}"#,
        )
        .unwrap_err();
        assert!(err.contains("unknown delta schema"), "{err}");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(AssignmentDelta::decode(b"not json").is_err());
    }
}
