//! The paper's anecdote entities, scripted with their real ASNs.
//!
//! Every running example in the paper — the Lumen/CenturyLink WHOIS split
//! (Fig. 3), the Edgecast/Limelight merger behind `www.edg.io` (§4.3.2),
//! the Clearwire→Sprint→T-Mobile redirect chain (Fig. 5b), Deutsche
//! Telekom's multilingual subsidiary notes (Fig. 4), the Claro favicon
//! family (Table 1/2), Digicel's 25-market footprint (Table 9), the DE-CIX
//! classifier miss (§5.3), and the 16 hypergiants of §6.1 — exists as a
//! concrete organization in the synthetic world, so the evaluation
//! binaries, examples and tests can point at the same cases the paper
//! discusses.

use crate::naming::COUNTRIES;
use crate::orgmodel::{FaviconKind, OrgKind, TextPlan, TruthOrg, TruthOrgId, TruthUnit, WebPlan};
use borges_types::Asn;

/// Index of a country code in [`COUNTRIES`].
fn ci(code: &str) -> usize {
    COUNTRIES
        .iter()
        .position(|c| c.code == code)
        .unwrap_or_else(|| panic!("country {code} not in table"))
}

/// A default-shaped unit: registered in PeeringDB under its own PDB org,
/// own WHOIS org, no text, no website.
fn unit(asn: u32, country: &str, name: &str) -> TruthUnit {
    TruthUnit {
        asn: Asn::new(asn),
        country: ci(country),
        legal_name: name.to_string(),
        users: 0,
        whois_own_org: true,
        in_pdb: true,
        pdb_own_org: true,
        text: TextPlan::None,
        web: WebPlan::None,
    }
}

fn own_site(host: &str, favicon: FaviconKind) -> WebPlan {
    WebPlan::Own {
        host: host.to_string(),
        canonical_path: None,
        favicon,
    }
}

/// The paper's 16 hypergiants with their headline ASNs (§6.1).
pub fn hypergiant_roster() -> Vec<(&'static str, Asn)> {
    vec![
        ("Akamai", Asn::new(20940)),
        ("Amazon", Asn::new(16509)),
        ("Apple", Asn::new(714)),
        ("Facebook", Asn::new(32934)),
        ("Google", Asn::new(15169)),
        ("Netflix", Asn::new(2906)),
        ("Yahoo!", Asn::new(10310)),
        ("OVH", Asn::new(16276)),
        ("Limelight", Asn::new(22822)),
        ("Microsoft", Asn::new(8075)),
        ("Twitter", Asn::new(13414)),
        ("Twitch", Asn::new(46489)),
        ("Cloudflare", Asn::new(13335)),
        ("EdgeCast", Asn::new(15133)),
        ("Booking.com", Asn::new(43996)),
        ("Spotify", Asn::new(8403)),
    ]
}

/// Builds all scripted organizations. `next_id` supplies truth-org ids and
/// is advanced past the ones consumed.
pub fn scripted_orgs(next_id: &mut usize) -> Vec<TruthOrg> {
    let mut orgs = Vec::new();
    let mut mk = |brand: &str, name: &str, kind: OrgKind, hq: &str, units: Vec<TruthUnit>| {
        let org = TruthOrg {
            id: TruthOrgId(*next_id),
            brand: brand.to_string(),
            display_name: name.to_string(),
            kind,
            hq_country: ci(hq),
            units,
        };
        *next_id += 1;
        orgs.push(org);
    };

    // ---- Lumen / CenturyLink (Fig. 3) ---------------------------------
    // WHOIS still splits AS209 and AS3356; PeeringDB consolidates them.
    {
        let mut level3 = unit(3356, "US", "Level 3 Parent, LLC");
        level3.whois_own_org = false; // shares the Level3/Lumen WHOIS org (with GBLX)
        level3.pdb_own_org = false; // consolidated under the Lumen PDB org
        level3.web = own_site("www.lumen.com", FaviconKind::Brand("lumen".into()));
        level3.text = TextPlan::AkaSibling {
            style: 0,
            former: "Level 3".into(),
            asn: Asn::new(3549),
        };
        let mut centurylink = unit(209, "US", "CenturyLink Communications");
        centurylink.pdb_own_org = false;
        centurylink.web = WebPlan::RedirectToHost {
            reported_host: "www.centurylink.com".into(),
            target_host: "www.lumen.com".into(),
            via: None,
            js: false,
        };
        let mut gblx = unit(3549, "US", "Global Crossing");
        gblx.whois_own_org = false; // folded into Level3's WHOIS org long ago
        gblx.in_pdb = false;
        mk(
            "lumen",
            "Lumen Technologies",
            OrgKind::Conglomerate,
            "US",
            vec![level3, centurylink, gblx],
        );
    }

    // ---- Edgio: Limelight + Edgecast (§4.3.2, Fig. 9) ------------------
    // Both PDB records still sit under different orgs but their websites
    // land on www.edg.io. Limelight brings 9 additional delivery ASNs.
    {
        let mut limelight = unit(22822, "US", "Limelight Networks (LLNW)");
        limelight.pdb_own_org = false; // anchors the consolidated Limelight PDB org
        limelight.web = WebPlan::RedirectToHost {
            reported_host: "www.limelight.com".into(),
            target_host: "www.edg.io".into(),
            via: None,
            js: false,
        };
        let mut edgecast = unit(15133, "US", "Edgecast");
        edgecast.web = WebPlan::RedirectToHost {
            reported_host: "www.edgecast.com".into(),
            target_host: "www.edg.io".into(),
            via: None,
            js: true,
        };
        let mut units = vec![limelight, edgecast];
        // Limelight's regional delivery ASNs, consolidated in PDB under
        // the Limelight org (so AS2Org misses them but OID_P finds them).
        for (i, asn) in [
            23059u32, 23135, 25804, 26506, 37277, 38622, 45396, 55429, 60261,
        ]
        .into_iter()
        .enumerate()
        {
            let mut u = unit(asn, "US", &format!("Limelight Delivery {}", i + 1));
            u.whois_own_org = true;
            u.pdb_own_org = false;
            units.push(u);
        }
        mk(
            "edgio",
            "Edgio (Limelight + Edgecast)",
            OrgKind::Hypergiant,
            "US",
            units,
        );
    }

    // ---- Cogent + the former Sprint backbone (§1, §4.3.2) --------------
    {
        let mut cogent = unit(174, "US", "Cogent Communications");
        cogent.web = own_site("www.cogentco.com", FaviconKind::Brand("cogent".into()));
        let mut sprint = unit(1239, "US", "Sprint (fiber backbone, now Cogent)");
        sprint.web = WebPlan::RedirectToHost {
            reported_host: "www.sprint.com".into(),
            target_host: "www.cogentco.com".into(),
            via: None,
            js: true,
        };
        let mut sprint_intl = unit(6461, "US", "Sprint International (now Cogent)");
        sprint_intl.in_pdb = false;
        mk(
            "cogent",
            "Cogent Communications",
            OrgKind::Transit,
            "US",
            vec![cogent, sprint, sprint_intl],
        );
    }

    // ---- Deutsche Telekom (Fig. 4, Tables 8 & 9) ------------------------
    {
        let mut dt = unit(3320, "DE", "Deutsche Telekom AG");
        dt.users = 24_779_378;
        dt.web = own_site("www.telekom.de", FaviconKind::Brand("telekom".into()));
        dt.text = TextPlan::SiblingReport {
            style: 0,
            siblings: vec![
                ("Magyar Telekom".into(), Asn::new(5483)),
                ("Slovak Telekom".into(), Asn::new(6855)),
                ("Hrvatski Telekom".into(), Asn::new(5391)),
                ("T-Mobile USA".into(), Asn::new(21928)),
            ],
        };
        let mut magyar = unit(5483, "HU", "Magyar Telekom");
        magyar.users = 3_101_220;
        magyar.web = own_site("www.telekom.hu", FaviconKind::Brand("telekom".into()));
        let mut slovak = unit(6855, "SK", "Slovak Telekom");
        slovak.users = 2_050_332;
        // The §2.2 example: an unrelated domain that defeats domain-name
        // similarity (telekom.sk still matches the telekom brand, so use
        // the real-world odd one out here).
        slovak.web = own_site("www.telekom.sk", FaviconKind::Brand("telekom".into()));
        let mut hrvatski = unit(5391, "HR", "Hrvatski Telekom");
        hrvatski.users = 2_633_417;
        hrvatski.web = own_site("www.t.ht.hr", FaviconKind::UnitSpecific("ht-hr".into()));
        let mut tmobile_us = unit(21928, "US", "T-Mobile USA");
        tmobile_us.users = 13_204_551;
        tmobile_us.web = own_site("www.t-mobile.com", FaviconKind::Brand("telekom".into()));
        let mut clearwire = unit(16586, "US", "Clearwire (now T-Mobile)");
        clearwire.users = 651_545;
        clearwire.web = WebPlan::RedirectToHost {
            reported_host: "www.clearwire.com".into(),
            target_host: "www.t-mobile.com".into(),
            via: Some("legacy.sprintpcs.example".into()),
            js: false,
        };
        mk(
            "telekom",
            "Deutsche Telekom",
            OrgKind::Conglomerate,
            "DE",
            vec![dt, magyar, slovak, hrvatski, tmobile_us, clearwire],
        );
    }

    // ---- Claro (Tables 1/2, §4.3.3, Table 8) ----------------------------
    // Fused-country domains with a shared favicon: step 1 of the decision
    // tree cannot merge clarochile/claropr (different brand labels); the
    // LLM reclassification (step 2) can.
    {
        let mk_claro = |asn: u32, cc: &str, host: &str, users: u64| {
            let mut u = unit(asn, cc, &format!("Claro {}", cc));
            u.users = users;
            u.web = WebPlan::Own {
                host: host.to_string(),
                canonical_path: Some("/personas/".into()),
                favicon: FaviconKind::Brand("claro".into()),
            };
            u
        };
        mk(
            "claro",
            "Claro (América Móvil)",
            OrgKind::Conglomerate,
            "MX",
            vec![
                mk_claro(27651, "CL", "www.clarochile.cl", 6_274_692),
                mk_claro(10396, "PR", "www.claropr.com", 1_265_003),
                mk_claro(6400, "DO", "www.claro.com.do", 4_410_991),
                mk_claro(12252, "PE", "www.claro.com.pe", 4_122_208),
                mk_claro(14080, "CO", "www.claro.com.co", 2_184_705),
            ],
        );
    }

    // ---- Claro Brasil (separate in Table 8; América Móvil's deep
    // structure is intentionally NOT recoverable — §7) --------------------
    {
        let mut br = unit(4230, "BR", "Claro Brasil (Embratel)");
        br.users = 16_912_676;
        br.web = own_site(
            "www.claro.com.br",
            FaviconKind::UnitSpecific("claro-br".into()),
        );
        let mut net = unit(28573, "BR", "Claro NET Virtua");
        net.users = 4_004_674;
        net.whois_own_org = true;
        net.pdb_own_org = false;
        net.web = own_site(
            "www.netcombo.com.br",
            FaviconKind::UnitSpecific("claro-br".into()),
        );
        mk(
            "clarobrasil",
            "Claro Brasil",
            OrgKind::Conglomerate,
            "BR",
            vec![br, net],
        );
    }

    // ---- Digicel (Table 1, Table 9's biggest footprint jump) -----------
    {
        let markets: &[(&str, u32, u64)] = &[
            ("JM", 23520, 812_331),
            ("TT", 27665, 530_114),
            ("HT", 27759, 1_911_230),
            ("PA", 52423, 391_225),
            ("GT", 52467, 204_118),
            ("SV", 27773, 150_009),
            ("HN", 52262, 171_556),
            ("NI", 14754, 122_007),
            ("BO", 26611, 98_431),
            ("PY", 23201, 310_887),
            ("UY", 28000, 87_334),
            ("EC", 27668, 71_090),
            ("VE", 21826, 64_118),
            ("CO", 10299, 58_003),
            ("PE", 21575, 51_440),
            ("CL", 27986, 44_812),
            ("AR", 22927, 41_366),
            ("DO", 64_126, 612_450),
            ("PR", 14638, 122_384),
            ("MX", 13999, 93_441),
            ("BR", 53135, 80_221),
            ("KE", 36926, 401_282),
            ("NG", 37148, 388_190),
            ("ZA", 37457, 91_338),
            ("SG", 45494, 17_665),
        ];
        let units = markets
            .iter()
            .enumerate()
            .map(|(i, &(cc, asn, users))| {
                let mut u = unit(asn, cc, &format!("Digicel {}", cc));
                u.users = users;
                // Same brand label everywhere: www.digicel<tld variants>.
                let cctld = COUNTRIES[ci(cc)].cctld;
                u.web = WebPlan::Own {
                    host: format!("www.digicel.{cctld}"),
                    canonical_path: None,
                    favicon: FaviconKind::Brand("digicel".into()),
                };
                // Only 4 markets consolidated in WHOIS/AS2Org (Table 9:
                // AS2Org sees 4 countries, Borges 25).
                u.whois_own_org = i >= 4;
                u
            })
            .collect();
        mk(
            "digicel",
            "Digicel Group",
            OrgKind::Conglomerate,
            "JM",
            units,
        );
    }

    // ---- Orange / Open Transit (§2.2, Table 9) --------------------------
    {
        let mut fr = unit(3215, "FR", "Orange France");
        fr.users = 8_983_260;
        fr.web = own_site("www.orange.fr", FaviconKind::Brand("orange".into()));
        let mut es = unit(12479, "ES", "Orange España");
        es.users = 5_113_233;
        es.web = own_site("www.orange.es", FaviconKind::Brand("orange".into()));
        let mut pl = unit(5617, "PL", "Orange Polska");
        pl.users = 4_615_055;
        pl.web = own_site("www.orange.pl", FaviconKind::Brand("orange".into()));
        let mut transit = unit(5511, "FR", "Open Transit International");
        transit.web = own_site(
            "www.opentransit.net",
            FaviconKind::UnitSpecific("opentransit".into()),
        );
        transit.text = TextPlan::SiblingReport {
            style: 1,
            siblings: vec![("Orange S.A.".into(), Asn::new(3215))],
        };
        mk(
            "orange",
            "Orange",
            OrgKind::Conglomerate,
            "FR",
            vec![fr, es, pl, transit],
        );
    }

    // ---- DE-CIX and subsidiaries (§5.3's reported classifier miss) ------
    {
        let mut decix = unit(6695, "DE", "DE-CIX Management GmbH");
        decix.web = own_site("www.de-cix.net", FaviconKind::Brand("decix".into()));
        let mut aqaba = unit(61374, "EG", "AQABA-IX");
        aqaba.web = own_site("www.aqaba-ix.net", FaviconKind::Brand("decix".into()));
        let mut ruhr = unit(215693, "DE", "Ruhr-CIX");
        ruhr.web = own_site("www.ruhr-cix.net", FaviconKind::Brand("decix".into()));
        mk(
            "decix",
            "DE-CIX Group",
            OrgKind::Ixp,
            "DE",
            vec![decix, aqaba, ruhr],
        );
    }

    // ---- The remaining hypergiants (§6.1, Fig. 9) -----------------------
    // Edgio is already above; each of the rest gets its headline ASN plus
    // the business-unit ASNs Fig. 9 credits Borges with recovering
    // (Google +3, Microsoft +1, Amazon +1).
    {
        let mut google = unit(15169, "US", "Google LLC");
        google.pdb_own_org = false; // anchors the consolidated Google PDB org
        google.web = own_site("www.google.com", FaviconKind::Brand("google".into()));
        let mut gcloud = unit(396982, "US", "Google Cloud");
        gcloud.pdb_own_org = false;
        gcloud.whois_own_org = true;
        let mut youtube = unit(43515, "US", "YouTube");
        youtube.pdb_own_org = false;
        youtube.whois_own_org = true;
        let mut gfiber = unit(16591, "US", "Google Fiber");
        gfiber.whois_own_org = true;
        gfiber.web = WebPlan::RedirectToHost {
            reported_host: "fiber.google.example".into(),
            target_host: "www.google.com".into(),
            via: None,
            js: false,
        };
        mk(
            "google",
            "Google",
            OrgKind::Hypergiant,
            "US",
            vec![google, gcloud, youtube, gfiber],
        );

        let mut msft = unit(8075, "US", "Microsoft Corporation");
        msft.web = own_site("www.microsoft.com", FaviconKind::Brand("microsoft".into()));
        let mut linkedin_net = unit(14413, "US", "LinkedIn (Microsoft)");
        linkedin_net.whois_own_org = true;
        linkedin_net.web = WebPlan::RedirectToHost {
            reported_host: "network.linkedin.example".into(),
            target_host: "www.microsoft.com".into(),
            via: None,
            js: false,
        };
        mk(
            "microsoft",
            "Microsoft",
            OrgKind::Hypergiant,
            "US",
            vec![msft, linkedin_net],
        );

        let mut amazon = unit(16509, "US", "Amazon.com");
        amazon.web = own_site("www.amazon.com", FaviconKind::Brand("amazon".into()));
        let mut aws_legacy = unit(14618, "US", "Amazon AES (EC2 legacy)");
        aws_legacy.whois_own_org = true;
        aws_legacy.web = WebPlan::RedirectToHost {
            reported_host: "aws.amazon.example".into(),
            target_host: "www.amazon.com".into(),
            via: None,
            js: true,
        };
        mk(
            "amazon",
            "Amazon",
            OrgKind::Hypergiant,
            "US",
            vec![amazon, aws_legacy],
        );

        // Single-ASN hypergiants: their Fig. 9 bars don't move.
        for (name, asn, host) in [
            ("Akamai", 20940u32, "www.akamai.com"),
            ("Apple", 714, "www.apple.com"),
            ("Facebook", 32934, "www.facebook-engineering.example"),
            ("Netflix", 2906, "www.netflix.com"),
            ("Yahoo!", 10310, "www.yahoo.com"),
            ("OVH", 16276, "www.ovh.com"),
            ("Twitter", 13414, "www.x.example"),
            ("Twitch", 46489, "www.twitch.tv"),
            ("Cloudflare", 13335, "www.cloudflare.com"),
            ("Booking.com", 43996, "www.booking.com"),
            ("Spotify", 8403, "www.spotify.com"),
        ] {
            let brand = name
                .chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                .to_ascii_lowercase();
            let mut u = unit(asn, "US", name);
            u.web = own_site(host, FaviconKind::Brand(brand.clone()));
            mk(&brand, name, OrgKind::Hypergiant, "US", vec![u]);
        }
    }

    // ---- TIGO / Millicom (Table 8) --------------------------------------
    {
        let mk_tigo = |asn: u32, cc: &str, users: u64| {
            let mut u = unit(asn, cc, &format!("TIGO {}", cc));
            u.users = users;
            let cctld = COUNTRIES[ci(cc)].cctld;
            u.web = WebPlan::Own {
                host: format!("www.tigo.{cctld}"),
                canonical_path: None,
                favicon: FaviconKind::Brand("tigo".into()),
            };
            u
        };
        mk(
            "tigo",
            "TIGO (Millicom)",
            OrgKind::Conglomerate,
            "CO",
            vec![
                mk_tigo(26611, "GT", 2_792_759).clone_with_asn(52468),
                mk_tigo(27884, "CO", 4_113_441),
                mk_tigo(23243, "PY", 3_014_887),
                mk_tigo(52233, "HN", 1_811_221),
                mk_tigo(26617, "BO", 1_432_990),
                mk_tigo(21599, "SV", 1_240_551),
                mk_tigo(27887, "PA", 1_039_660),
            ],
        );
    }

    // ---- Telkom Indonesia (Table 8 row 2) --------------------------------
    {
        let mut flagship = unit(7713, "ID", "Telkom Indonesia");
        flagship.users = 33_996_157;
        flagship.web = own_site("www.telkom.co.id", FaviconKind::Brand("telkom-id".into()));
        flagship.text = TextPlan::SiblingReport {
            style: 0,
            siblings: vec![
                ("Telkomsel".into(), Asn::new(23693)),
                ("Telin".into(), Asn::new(7714)),
            ],
        };
        let mut telkomsel = unit(23693, "ID", "Telkomsel");
        telkomsel.users = 18_220_101;
        telkomsel.web = own_site(
            "www.telkomsel.co.id",
            FaviconKind::Brand("telkom-id".into()),
        );
        let mut telin = unit(7714, "ID", "Telin (Telekomunikasi Indonesia International)");
        telin.users = 2_324_182;
        mk(
            "telkomindonesia",
            "Telkom Indonesia",
            OrgKind::Conglomerate,
            "ID",
            vec![flagship, telkomsel, telin],
        );
    }

    // ---- The remaining Table 9 entrants ----------------------------------
    // Cloud/security/transit multinationals whose footprints §6.2 expands:
    // Zscaler, NTT, Cable & Wireless, Columbus Networks, MainOne, Leaseweb,
    // Contabo, SoftLayer, UNINETT, xTom, and Latitude.sh (whose notes are
    // the paper's Appendix B upstream-listing example).
    {
        let mut spread = |brand: &str,
                          name: &str,
                          kind: OrgKind,
                          markets: &[(&str, u32, u64)],
                          whois_consolidated: usize| {
            let units: Vec<TruthUnit> = markets
                .iter()
                .enumerate()
                .map(|(i, &(cc, asn, users))| {
                    let mut u = unit(asn, cc, &format!("{name} {cc}"));
                    u.users = users;
                    u.whois_own_org = i >= whois_consolidated;
                    let cctld = COUNTRIES[ci(cc)].cctld;
                    u.web = WebPlan::Own {
                        host: format!("www.{brand}.{cctld}"),
                        canonical_path: None,
                        favicon: FaviconKind::Brand(brand.to_string()),
                    };
                    u
                })
                .collect();
            let hq = markets[0].0;
            mk(brand, name, kind, hq, units);
        };

        spread(
            "zscaler",
            "Zscaler",
            OrgKind::Conglomerate,
            &[
                ("US", 22616, 0),
                ("GB", 394089, 0),
                ("DE", 394090, 0),
                ("FR", 394091, 0),
                ("NL", 394092, 0),
                ("JP", 394093, 0),
                ("AU", 394094, 0),
                ("IN", 394095, 0),
                ("BR", 394096, 0),
                ("SG", 394097, 0),
                ("HK", 394098, 0),
                ("ZA", 394099, 0),
            ],
            5,
        );
        spread(
            "ntt",
            "NTT Global IP Network",
            OrgKind::Transit,
            &[
                ("JP", 2914, 2_204_118),
                ("US", 398680, 110_221),
                ("GB", 398681, 90_332),
                ("DE", 398682, 81_008),
                ("SG", 398683, 72_114),
                ("AU", 398684, 31_337),
                ("IN", 398685, 120_772),
                ("BR", 398686, 55_431),
                ("HK", 398687, 20_118),
                ("FR", 398688, 44_023),
                ("NL", 398689, 38_950),
            ],
            2,
        );
        spread(
            "cwnetworks",
            "Cable & Wireless Communications",
            OrgKind::Conglomerate,
            &[
                ("PA", 1273, 871_223),
                ("JM", 398690, 402_115),
                ("TT", 398691, 318_400),
                ("BO", 398692, 92_138),
                ("DO", 398693, 301_254),
                ("CO", 398694, 150_087),
                ("PE", 398695, 88_932),
                ("CL", 398696, 61_740),
                ("EC", 398697, 72_309),
                ("GT", 398698, 58_221),
                ("HN", 398699, 40_812),
                ("NI", 398700, 31_209),
                ("SV", 398701, 28_441),
                ("CR", 398702, 94_310),
            ],
            7,
        );
        spread(
            "columbusnet",
            "Columbus Networks",
            OrgKind::Transit,
            &[
                ("TT", 27866, 104_221),
                ("JM", 398703, 81_337),
                ("DO", 398704, 72_015),
                ("CO", 398705, 66_902),
                ("PA", 398706, 31_224),
                ("VE", 398707, 28_540),
                ("HN", 398708, 14_202),
                ("NI", 398709, 11_871),
                ("GT", 398710, 9_322),
                ("SV", 398711, 8_100),
                ("EC", 398712, 7_204),
                ("PE", 398713, 6_118),
                ("CL", 398714, 5_530),
            ],
            5,
        );
        spread(
            "mainone",
            "MainOne (Equinix West Africa)",
            OrgKind::Transit,
            &[
                ("NG", 37282, 304_118),
                ("KE", 398715, 41_225),
                ("ZA", 398716, 38_114),
                ("EG", 398717, 21_037),
                ("PT", 398718, 11_240),
                ("FR", 398719, 8_033),
                ("GB", 398720, 7_441),
                ("US", 398721, 6_209),
                ("BR", 398722, 4_118),
            ],
            3,
        );
        spread(
            "leaseweb",
            "Leaseweb",
            OrgKind::Conglomerate,
            &[
                ("NL", 60781, 41_227),
                ("US", 398723, 30_081),
                ("DE", 398724, 24_332),
                ("GB", 398725, 18_004),
                ("SG", 398726, 12_117),
                ("AU", 398727, 9_338),
                ("JP", 398728, 8_221),
                ("HK", 398729, 6_030),
                ("CA", 398730, 5_114),
            ],
            3,
        );
        spread(
            "contabo",
            "Contabo",
            OrgKind::Conglomerate,
            &[
                ("DE", 51167, 28_114),
                ("US", 398731, 17_002),
                ("GB", 398732, 11_338),
                ("SG", 398733, 8_221),
                ("JP", 398734, 6_114),
                ("AU", 398735, 5_023),
                ("IN", 398736, 4_338),
                ("BR", 398737, 3_902),
                ("FR", 398738, 3_114),
                ("NL", 398739, 2_889),
                ("PL", 398740, 2_204),
                ("ES", 398741, 1_998),
                ("IT", 398742, 1_787),
                ("SE", 398743, 1_204),
                ("PT", 398744, 1_008),
                ("MX", 398745, 981),
                ("CL", 398746, 874),
                ("CO", 398747, 733),
                ("TR", 398748, 692),
                ("ZA", 398749, 607),
            ],
            15,
        );
        spread(
            "softlayer",
            "SoftLayer (IBM Cloud)",
            OrgKind::Conglomerate,
            &[
                ("US", 36351, 51_227),
                ("NL", 398750, 14_031),
                ("SG", 398751, 11_224),
                ("JP", 398752, 9_338),
                ("AU", 398753, 7_114),
                ("GB", 398754, 6_204),
                ("DE", 398755, 5_338),
                ("BR", 398756, 4_774),
                ("IN", 398757, 3_908),
                ("HK", 398758, 3_114),
                ("CA", 398759, 2_889),
            ],
            7,
        );
        spread(
            "uninett",
            "UNINETT (Sikt)",
            OrgKind::Transit,
            &[
                ("NO", 224, 182_114),
                ("SE", 398760, 21_337),
                ("DE", 398761, 11_204),
                ("NL", 398762, 8_338),
                ("GB", 398763, 6_114),
            ],
            1,
        );
        spread(
            "xtom",
            "xTom GmbH",
            OrgKind::Conglomerate,
            &[
                ("DE", 3214, 9_338),
                ("US", 398764, 5_204),
                ("JP", 398765, 4_114),
                ("HK", 398766, 3_338),
                ("AU", 398767, 2_204),
                ("NL", 398768, 1_998),
                ("GB", 398769, 1_787),
                ("SG", 398770, 1_338),
                ("TW", 398771, 1_104),
            ],
            4,
        );

        // Latitude.sh (formerly Maxihost): Appendix B's running example —
        // its notes list upstream providers, which the LLM must NOT read
        // as siblings; its true siblings are recovered via OID_P and web.
        let mut latitude_units: Vec<TruthUnit> = [
            ("BR", 262287u32, 18_114u64),
            ("US", 398772, 9_204),
            ("MX", 398773, 5_338),
            ("CL", 398774, 3_204),
            ("AR", 398775, 2_889),
            ("CO", 398776, 2_204),
            ("GB", 398777, 1_998),
            ("DE", 398778, 1_787),
            ("JP", 398779, 1_338),
            ("AU", 398780, 1_104),
            ("SG", 398781, 981),
            ("IN", 398782, 874),
            ("FR", 398783, 733),
            ("NL", 398784, 692),
            ("ES", 398785, 607),
            ("IT", 398786, 554),
            ("CA", 398787, 501),
            ("ZA", 398788, 441),
            ("TR", 398789, 392),
            ("PE", 398790, 338),
            ("UY", 398791, 287),
        ]
        .iter()
        .enumerate()
        .map(|(i, &(cc, asn, users))| {
            let mut u = unit(asn, cc, &format!("Latitude.sh {cc}"));
            u.users = users;
            u.whois_own_org = i >= 16;
            u.pdb_own_org = false; // consolidated under one PDB org
            let cctld = COUNTRIES[ci(cc)].cctld;
            u.web = WebPlan::Own {
                host: format!("www.latitudesh.{cctld}"),
                canonical_path: None,
                favicon: FaviconKind::Brand("latitudesh".into()),
            };
            u
        })
        .collect();
        latitude_units[0].text = TextPlan::Decoys {
            style: 0, // the Maxihost upstream-listing shape (Listing 1)
            asns: vec![Asn::new(16735), Asn::new(6762), Asn::new(3223)],
        };
        mk(
            "latitudesh",
            "Latitude.sh (formerly Maxihost)",
            OrgKind::Conglomerate,
            "BR",
            latitude_units,
        );
    }

    orgs
}

trait CloneWithAsn {
    fn clone_with_asn(self, asn: u32) -> Self;
}

impl CloneWithAsn for TruthUnit {
    fn clone_with_asn(mut self, asn: u32) -> Self {
        self.asn = Asn::new(asn);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn scripted_asns_are_unique() {
        let mut id = 0;
        let orgs = scripted_orgs(&mut id);
        let mut seen = BTreeSet::new();
        for org in &orgs {
            for u in &org.units {
                assert!(seen.insert(u.asn), "duplicate scripted {}", u.asn);
            }
        }
        assert!(orgs.len() >= 20);
        assert_eq!(id, orgs.len());
    }

    #[test]
    fn hypergiant_roster_is_the_papers_16() {
        let r = hypergiant_roster();
        assert_eq!(r.len(), 16);
        assert!(r
            .iter()
            .any(|(n, a)| *n == "Google" && *a == Asn::new(15169)));
        assert!(r
            .iter()
            .any(|(n, a)| *n == "EdgeCast" && *a == Asn::new(15133)));
    }

    #[test]
    fn lumen_case_is_split_in_whois_merged_in_pdb() {
        let mut id = 0;
        let orgs = scripted_orgs(&mut id);
        let lumen = orgs.iter().find(|o| o.brand == "lumen").unwrap();
        let level3 = lumen
            .units
            .iter()
            .find(|u| u.asn == Asn::new(3356))
            .unwrap();
        let ctl = lumen.units.iter().find(|u| u.asn == Asn::new(209)).unwrap();
        // Level3 shares the parent WHOIS org (with Global Crossing) while
        // CenturyLink has its own — so WHOIS still splits 3356 from 209.
        assert!(
            !level3.whois_own_org && ctl.whois_own_org,
            "WHOIS splits them"
        );
        assert!(
            !level3.pdb_own_org && !ctl.pdb_own_org,
            "PDB consolidates them"
        );
    }

    #[test]
    fn edgio_units_converge_on_the_same_final_host() {
        let mut id = 0;
        let orgs = scripted_orgs(&mut id);
        let edgio = orgs.iter().find(|o| o.brand == "edgio").unwrap();
        let targets: BTreeSet<&str> = edgio
            .units
            .iter()
            .filter_map(|u| match &u.web {
                WebPlan::RedirectToHost { target_host, .. } => Some(target_host.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(targets.into_iter().collect::<Vec<_>>(), vec!["www.edg.io"]);
        assert_eq!(
            edgio.units.len(),
            11,
            "Limelight + Edgecast + 9 delivery ASNs"
        );
    }

    #[test]
    fn digicel_spans_25_markets() {
        let mut id = 0;
        let orgs = scripted_orgs(&mut id);
        let digicel = orgs.iter().find(|o| o.brand == "digicel").unwrap();
        assert_eq!(digicel.countries().len(), 25);
        // Only 4 markets consolidated in WHOIS (AS2Org's view in Table 9).
        let consolidated = digicel.units.iter().filter(|u| !u.whois_own_org).count();
        assert_eq!(consolidated, 4);
    }

    #[test]
    fn decix_units_share_favicon_but_not_brand_labels() {
        let mut id = 0;
        let orgs = scripted_orgs(&mut id);
        let decix = orgs.iter().find(|o| o.brand == "decix").unwrap();
        let icons: BTreeSet<_> = decix
            .units
            .iter()
            .filter_map(|u| match &u.web {
                WebPlan::Own { favicon, .. } => favicon.hash(),
                _ => None,
            })
            .collect();
        assert_eq!(icons.len(), 1, "same favicon everywhere");
    }
}
