//! Free-text synthesis for `notes` and `aka` fields.
//!
//! PeeringDB free text is messy, multilingual, and mostly *not* about
//! siblings — that is the entire reason the paper replaces regexes with an
//! LLM. This module writes that mess on purpose:
//!
//! * [`sibling_notes`] — genuine sibling reports in six languages and
//!   several shapes (header + bullet list, inline sentence, mixed with
//!   upstream noise);
//! * [`sibling_aka`] — alternative-identity `aka` strings carrying ASNs;
//! * [`decoy_notes`] — numeric text with **no** sibling information:
//!   upstream lists (the Maxihost/Listing 1 shape), peering policies with
//!   prefix limits, NOC contacts with phone numbers, founding years,
//!   route-server IPs;
//! * [`boilerplate_notes`] — prose without digits (filtered out by the
//!   input dropout filter before any LLM call).
//!
//! Every function is pure in `(inputs, style index)` so the generator is
//! reproducible.

use crate::naming::{capitalize, Language};
use borges_types::Asn;

/// A named sibling to mention in text.
#[derive(Debug, Clone)]
pub struct SiblingMention {
    /// Display name of the sibling unit.
    pub name: String,
    /// Its ASN.
    pub asn: Asn,
}

/// Renders a `notes` field that genuinely reports `siblings` as
/// co-owned networks, in `language`, using one of several shapes selected
/// by `style`.
pub fn sibling_notes(
    language: Language,
    brand: &str,
    siblings: &[SiblingMention],
    style: usize,
) -> String {
    let cap = capitalize(brand);
    let bullet_list = || {
        siblings
            .iter()
            .map(|s| format!("- {} (AS{})", s.name, s.asn.value()))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let inline_asns = || {
        siblings
            .iter()
            .map(|s| format!("AS{}", s.asn.value()))
            .collect::<Vec<_>>()
            .join(", ")
    };
    match (language, style % 3) {
        (Language::En, 0) => format!(
            "{cap} global backbone.\nOur subsidiaries:\n{}",
            bullet_list()
        ),
        (Language::En, 1) => format!(
            "{cap} operates several networks under the same organization: {}.",
            inline_asns()
        ),
        (Language::En, _) => format!(
            "Part of the {cap} group. Sister networks: {}.\n\nPeering is open at all locations.",
            inline_asns()
        ),
        (Language::Es, 0) => format!(
            "Red troncal de {cap}.\nNuestras filiales:\n{}",
            bullet_list()
        ),
        (Language::Es, _) => format!(
            "Somos parte de {cap}. Redes del mismo grupo: {}.",
            inline_asns()
        ),
        (Language::Pt, 0) => format!(
            "Backbone da {cap}.\nNossas subsidiárias:\n{}",
            bullet_list()
        ),
        (Language::Pt, _) => format!(
            "Esta rede pertence a {cap}. Mesmo grupo que {}.",
            inline_asns()
        ),
        (Language::De, 0) => format!(
            "{cap} Konzernnetz.\nUnsere Tochtergesellschaften:\n{}",
            bullet_list()
        ),
        (Language::De, _) => format!("Teil der {cap} Gruppe, gehört zu {}.", inline_asns()),
        (Language::Fr, 0) => format!("Réseau {cap}.\nNos filiales:\n{}", bullet_list()),
        (Language::Fr, _) => format!(
            "Cette entité fait partie de {cap}, même groupe que {}.",
            inline_asns()
        ),
        (Language::It, _) => format!(
            "Rete {cap}. Fa parte di {cap}, stesso gruppo di {}.",
            inline_asns()
        ),
        (Language::Id, _) => format!(
            "Jaringan {cap}. Anak perusahaan dari {cap}, bagian dari {}.",
            inline_asns()
        ),
    }
}

/// Renders an `aka` field listing a former/alternative identity with its
/// ASN (the Edgecast/Limelight shape).
pub fn sibling_aka(former_name: &str, asn: Asn, style: usize) -> String {
    match style % 3 {
        0 => format!("{former_name}, AS{}", asn.value()),
        1 => format!("formerly {former_name} (AS{})", asn.value()),
        _ => format!("{former_name} / AS{}", asn.value()),
    }
}

/// Renders a `notes` field containing numeric *decoys* and no sibling
/// information. The style bank covers every false-positive family the
/// paper lists: upstream lists, phone numbers, years, addresses, prefix
/// limits, IPs, BGP communities.
pub fn decoy_notes(language: Language, brand: &str, decoy_asns: &[Asn], style: usize) -> String {
    let cap = capitalize(brand);
    let upstream_list = || {
        decoy_asns
            .iter()
            .enumerate()
            .map(|(i, a)| format!("- Carrier{} (AS{})", i + 1, a.value()))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let first = decoy_asns.first().map(|a| a.value()).unwrap_or(174);
    match style % 7 {
        0 => match language {
            Language::Es => format!(
                "{cap} despliega servidores en varias regiones.\n\nConectamos con los siguientes proveedores,\n{}",
                upstream_list()
            ),
            Language::Pt => format!(
                "{cap} opera data centers próprios.\n\nConectamos com os seguintes fornecedores,\n{}",
                upstream_list()
            ),
            _ => format!(
                "{cap} deploys high-performance servers in multiple regions.\n\nWe connect directly with the following ISPs,\n{}",
                upstream_list()
            ),
        },
        1 => format!(
            "Peering policy: open. Max prefixes: {}. MTU 9000.",
            1000 + (style * 37) % 4000
        ),
        2 => format!(
            "{cap} NOC: phone +1 555 {:04}, available 24x7. Contact noc@{brand}.example.",
            (style * 97) % 10_000
        ),
        3 => format!("Operating since {}. {cap} serves business customers.", 1995 + style % 25),
        4 => format!(
            "Offices: 100 Main Street, Suite {}, building B.",
            200 + style % 700
        ),
        5 => format!(
            "Route servers at 192.0.2.{} and 198.51.100.{}. Communities: {first}:100 for customers.",
            1 + style % 250,
            1 + (style * 3) % 250
        ),
        _ => format!(
            "Upstream transit by AS{first}. Blackhole community {first}:666. 100G ports available.",
        ),
    }
}

/// Renders digit-free boilerplate (dropped by the input filter).
pub fn boilerplate_notes(language: Language, brand: &str, style: usize) -> String {
    let cap = capitalize(brand);
    match (language, style % 4) {
        (Language::Es, _) => format!("{cap} — proveedor regional de conectividad y servicios."),
        (Language::Pt, _) => format!("{cap} — provedor de acesso e trânsito."),
        (Language::De, _) => format!("{cap} — regionaler Netzbetreiber."),
        (_, 0) => format!("{cap} is a regional provider of connectivity services."),
        (_, 1) => "Peering policy: selective. Please contact our NOC via email.".to_string(),
        (_, 2) => format!("{cap} operates a carrier-grade national backbone."),
        (_, _) => "Open peering at all mutual locations. IXP presence listed below.".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mentions() -> Vec<SiblingMention> {
        vec![
            SiblingMention {
                name: "Acme Chile".into(),
                asn: Asn::new(27651),
            },
            SiblingMention {
                name: "Acme Peru".into(),
                asn: Asn::new(12252),
            },
        ]
    }

    #[test]
    fn sibling_notes_contain_all_asns_in_every_language_and_style() {
        for lang in [
            Language::En,
            Language::Es,
            Language::Pt,
            Language::De,
            Language::Fr,
            Language::It,
            Language::Id,
        ] {
            for style in 0..3 {
                let text = sibling_notes(lang, "acme", &mentions(), style);
                assert!(
                    text.contains("27651") && text.contains("12252"),
                    "{lang:?}/{style}: {text}"
                );
            }
        }
    }

    #[test]
    fn decoy_notes_always_contain_digits() {
        for style in 0..14 {
            let text = decoy_notes(Language::En, "acme", &[Asn::new(174)], style);
            assert!(
                text.bytes().any(|b| b.is_ascii_digit()),
                "style {style} produced digit-free decoys: {text}"
            );
        }
    }

    #[test]
    fn boilerplate_never_contains_digits() {
        for lang in [Language::En, Language::Es, Language::Pt, Language::De] {
            for style in 0..4 {
                let text = boilerplate_notes(lang, "acme", style);
                assert!(
                    !text.bytes().any(|b| b.is_ascii_digit()),
                    "{lang:?}/{style} leaked digits: {text}"
                );
            }
        }
    }

    #[test]
    fn aka_styles_carry_the_asn() {
        for style in 0..3 {
            let text = sibling_aka("Edgecast", Asn::new(15133), style);
            assert!(text.contains("15133"));
            assert!(text.contains("Edgecast"));
        }
    }

    #[test]
    fn extraction_agrees_with_labels_on_sibling_text() {
        // The generated sibling text must actually be extractable by the
        // simulated LLM — this is the contract between textgen and llmsim.
        use borges_llm::ner::extract_siblings;
        for lang in [
            Language::En,
            Language::Es,
            Language::Pt,
            Language::De,
            Language::Fr,
            Language::It,
            Language::Id,
        ] {
            for style in 0..3 {
                let text = sibling_notes(lang, "acme", &mentions(), style);
                let out = extract_siblings(Asn::new(1), &text, "");
                let mut got: Vec<u32> = out.iter().map(|e| e.asn.value()).collect();
                got.sort_unstable();
                assert_eq!(got, vec![12252, 27651], "{lang:?}/{style}: {text}");
            }
        }
    }

    #[test]
    fn extraction_rejects_decoy_text() {
        use borges_llm::ner::extract_siblings;
        for style in 0..14 {
            for lang in [Language::En, Language::Es, Language::Pt] {
                let text = decoy_notes(lang, "acme", &[Asn::new(174), Asn::new(3356)], style);
                let out = extract_siblings(Asn::new(1), &text, "");
                assert!(
                    out.is_empty(),
                    "{lang:?}/{style} decoys extracted as siblings: {text} -> {out:?}"
                );
            }
        }
    }
}
