//! Dataset persistence: a generated world as a directory of files.
//!
//! [`save`] writes every view in its native interchange format so the
//! bundle is consumable by external tooling (and by the `borges` CLI):
//!
//! | file | format |
//! |---|---|
//! | `as2org.txt` | CAIDA AS2Org flat file |
//! | `peeringdb.json` | PeeringDB dump-shaped JSON |
//! | `web.json` | web snapshot (hosts + behaviours) |
//! | `as-rel.txt` | CAIDA serial-1 AS-relationship file |
//! | `populations.psv` | `asn\|users\|country` |
//! | `asrank.txt` | one ASN per line, rank order |
//! | `hypergiants.psv` | `name\|asn` |
//! | `truth.psv` | `asn\|org_id\|org_name` (the oracle; optional on load) |
//! | `labels.psv` | `asn\|sib1 sib2 …` (IE ground truth; optional on load) |
//! | `config.json` | the generator configuration |
//!
//! [`DatasetBundle::load`] reads a bundle back; the oracle files are
//! optional, so bundles built from *real* snapshots (CAIDA + PeeringDB
//! dumps + an archived crawl) load the same way — just without
//! truth-based scoring.

use crate::config::GeneratorConfig;
use crate::generate::PopulationRecord;
use crate::SyntheticInternet;
use borges_peeringdb::PdbSnapshot;
use borges_topology::{serial1, AsGraph};
use borges_types::{Asn, CountryCode};
use borges_websim::{snapshot as websnap, SimWeb};
use borges_whois::{as2org_format, WhoisRegistry};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::path::Path;

/// A persistence failure.
#[derive(Debug)]
pub enum IoError {
    /// Filesystem error, with the file involved.
    Fs(String, std::io::Error),
    /// A file exists but does not parse.
    Format(String, Box<dyn Error + Send + Sync>),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Fs(file, e) => write!(f, "{file}: {e}"),
            IoError::Format(file, e) => write!(f, "{file}: {e}"),
        }
    }
}

impl Error for IoError {}

fn write(dir: &Path, name: &str, contents: &str) -> Result<(), IoError> {
    std::fs::write(dir.join(name), contents).map_err(|e| IoError::Fs(name.to_string(), e))
}

fn read(dir: &Path, name: &str) -> Result<String, IoError> {
    std::fs::read_to_string(dir.join(name)).map_err(|e| IoError::Fs(name.to_string(), e))
}

fn read_optional(dir: &Path, name: &str) -> Result<Option<String>, IoError> {
    match std::fs::read_to_string(dir.join(name)) {
        Ok(text) => Ok(Some(text)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(IoError::Fs(name.to_string(), e)),
    }
}

/// Saves a world into `dir` (created if missing).
pub fn save(world: &SyntheticInternet, dir: &Path) -> Result<(), IoError> {
    std::fs::create_dir_all(dir).map_err(|e| IoError::Fs(dir.display().to_string(), e))?;

    write(dir, "as2org.txt", &as2org_format::serialize(&world.whois))?;
    write(dir, "peeringdb.json", &world.pdb.to_json())?;
    write(dir, "web.json", &websnap::to_json(&world.web))?;
    write(dir, "as-rel.txt", &serial1::serialize(&world.topology))?;

    let mut populations = String::from("# asn|users|country\n");
    for (asn, rec) in &world.populations {
        populations.push_str(&format!("{}|{}|{}\n", asn.value(), rec.users, rec.country));
    }
    write(dir, "populations.psv", &populations)?;

    let mut asrank = String::new();
    for asn in &world.asrank {
        asrank.push_str(&format!("{}\n", asn.value()));
    }
    write(dir, "asrank.txt", &asrank)?;

    let mut hypergiants = String::from("# name|asn\n");
    for (name, asn) in &world.hypergiants {
        hypergiants.push_str(&format!("{}|{}\n", name, asn.value()));
    }
    write(dir, "hypergiants.psv", &hypergiants)?;

    let mut truth = String::from("# asn|org_id|org_name\n");
    for (asn, org_id) in world.truth.assignments() {
        truth.push_str(&format!(
            "{}|{}|{}\n",
            asn.value(),
            org_id.0,
            world.truth.org(org_id).display_name
        ));
    }
    write(dir, "truth.psv", &truth)?;

    let mut labels = String::from("# asn|siblings\n");
    for (asn, siblings) in &world.text_labels {
        let list: Vec<String> = siblings.iter().map(|a| a.value().to_string()).collect();
        labels.push_str(&format!("{}|{}\n", asn.value(), list.join(" ")));
    }
    write(dir, "labels.psv", &labels)?;

    let config =
        serde_json::to_string_pretty(&world.config).expect("config serialization cannot fail");
    write(dir, "config.json", &config)
}

/// A loaded dataset bundle — the pipeline's inputs, plus optional oracle
/// files for scoring.
#[derive(Debug, Clone)]
pub struct DatasetBundle {
    /// WHOIS registry.
    pub whois: WhoisRegistry,
    /// PeeringDB snapshot.
    pub pdb: PdbSnapshot,
    /// Web snapshot.
    pub web: SimWeb,
    /// AS-relationship graph (CAIDA serial-1 format on disk).
    pub topology: AsGraph,
    /// APNIC-like population table.
    pub populations: BTreeMap<Asn, PopulationRecord>,
    /// AS-Rank ordering.
    pub asrank: Vec<Asn>,
    /// Hypergiant roster.
    pub hypergiants: Vec<(String, Asn)>,
    /// Oracle: ASN → (truth org id, org name), when `truth.psv` exists.
    pub truth: Option<BTreeMap<Asn, (usize, String)>>,
    /// Oracle: embedded sibling labels, when `labels.psv` exists.
    pub labels: Option<BTreeMap<Asn, Vec<Asn>>>,
    /// The generator configuration, when `config.json` exists.
    pub config: Option<GeneratorConfig>,
}

impl DatasetBundle {
    /// Loads a bundle from `dir`.
    pub fn load(dir: &Path) -> Result<Self, IoError> {
        let whois = as2org_format::parse(&read(dir, "as2org.txt")?)
            .map_err(|e| IoError::Format("as2org.txt".into(), Box::new(e)))?;
        let pdb = PdbSnapshot::from_json(&read(dir, "peeringdb.json")?)
            .map_err(|e| IoError::Format("peeringdb.json".into(), Box::new(e)))?;
        let web = websnap::from_json(&read(dir, "web.json")?)
            .map_err(|e| IoError::Format("web.json".into(), Box::new(e)))?;
        let topology = serial1::parse_with_nodes(&read(dir, "as-rel.txt")?)
            .map_err(|e| IoError::Format("as-rel.txt".into(), Box::new(e)))?;

        let mut populations = BTreeMap::new();
        for (asn, fields) in parse_psv(&read(dir, "populations.psv")?, 3, "populations.psv")? {
            let users: u64 = fields[1]
                .parse()
                .map_err(|_| bad("populations.psv", "invalid user count"))?;
            let country: CountryCode = fields[2]
                .parse()
                .map_err(|_| bad("populations.psv", "invalid country"))?;
            populations.insert(asn, PopulationRecord { users, country });
        }

        let mut asrank = Vec::new();
        for line in read(dir, "asrank.txt")?.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            asrank.push(
                line.parse::<Asn>()
                    .map_err(|_| bad("asrank.txt", "invalid asn"))?,
            );
        }

        let mut hypergiants = Vec::new();
        for line in read(dir, "hypergiants.psv")?.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (name, asn) = line
                .split_once('|')
                .ok_or_else(|| bad("hypergiants.psv", "expected name|asn"))?;
            hypergiants.push((
                name.to_string(),
                asn.parse::<Asn>()
                    .map_err(|_| bad("hypergiants.psv", "invalid asn"))?,
            ));
        }

        let truth = match read_optional(dir, "truth.psv")? {
            Some(text) => {
                let mut map = BTreeMap::new();
                for (asn, fields) in parse_psv(&text, 3, "truth.psv")? {
                    let org_id: usize = fields[1]
                        .parse()
                        .map_err(|_| bad("truth.psv", "invalid org id"))?;
                    map.insert(asn, (org_id, fields[2].to_string()));
                }
                Some(map)
            }
            None => None,
        };

        let labels = match read_optional(dir, "labels.psv")? {
            Some(text) => {
                let mut map = BTreeMap::new();
                for (asn, fields) in parse_psv(&text, 2, "labels.psv")? {
                    let mut siblings = Vec::new();
                    for token in fields[1].split_whitespace() {
                        siblings.push(
                            token
                                .parse::<Asn>()
                                .map_err(|_| bad("labels.psv", "invalid sibling asn"))?,
                        );
                    }
                    map.insert(asn, siblings);
                }
                Some(map)
            }
            None => None,
        };

        let config = match read_optional(dir, "config.json")? {
            Some(text) => Some(
                serde_json::from_str(&text)
                    .map_err(|e| IoError::Format("config.json".into(), Box::new(e)))?,
            ),
            None => None,
        };

        Ok(DatasetBundle {
            whois,
            pdb,
            web,
            topology,
            populations,
            asrank,
            hypergiants,
            truth,
            labels,
            config,
        })
    }

    /// Are two ASNs siblings according to the bundled oracle? `None`
    /// when the bundle has no oracle.
    pub fn are_siblings(&self, a: Asn, b: Asn) -> Option<bool> {
        let truth = self.truth.as_ref()?;
        match (truth.get(&a), truth.get(&b)) {
            (Some((x, _)), Some((y, _))) => Some(x == y),
            _ => Some(false),
        }
    }
}

fn bad(file: &str, reason: &'static str) -> IoError {
    IoError::Format(
        file.to_string(),
        Box::new(borges_types::ParseError::new("field", "", reason)),
    )
}

/// Parses `asn|field|field…` lines (first field always an ASN).
fn parse_psv<'a>(
    text: &'a str,
    arity: usize,
    file: &str,
) -> Result<Vec<(Asn, Vec<&'a str>)>, IoError> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim_end_matches('\r');
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.splitn(arity, '|').collect();
        if fields.len() != arity {
            return Err(bad(file, "wrong field count"));
        }
        let asn: Asn = fields[0].parse().map_err(|_| bad(file, "invalid asn"))?;
        out.push((asn, fields));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GeneratorConfig;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("borges-io-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_roundtrip() {
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(12));
        let dir = tmpdir("roundtrip");
        save(&world, &dir).unwrap();
        let bundle = DatasetBundle::load(&dir).unwrap();

        assert_eq!(bundle.whois.asn_count(), world.whois.asn_count());
        assert_eq!(bundle.pdb.net_count(), world.pdb.net_count());
        assert_eq!(bundle.web.host_count(), world.web.host_count());
        assert_eq!(bundle.topology.node_count(), world.topology.node_count());
        assert_eq!(bundle.topology.p2c_count(), world.topology.p2c_count());
        assert_eq!(bundle.topology.p2p_count(), world.topology.p2p_count());
        assert_eq!(bundle.populations.len(), world.populations.len());
        assert_eq!(bundle.asrank, world.asrank);
        assert_eq!(bundle.hypergiants.len(), 16);
        assert_eq!(bundle.config.as_ref(), Some(&world.config));

        // The oracle survives.
        let truth = bundle.truth.as_ref().unwrap();
        assert_eq!(truth.len(), world.truth.asn_count());
        assert_eq!(
            bundle.are_siblings(Asn::new(3356), Asn::new(209)),
            Some(true)
        );
        assert_eq!(
            bundle.are_siblings(Asn::new(3356), Asn::new(174)),
            Some(false)
        );
        let labels = bundle.labels.as_ref().unwrap();
        assert_eq!(labels, &world.text_labels);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oracle_files_are_optional() {
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(12));
        let dir = tmpdir("no-oracle");
        save(&world, &dir).unwrap();
        std::fs::remove_file(dir.join("truth.psv")).unwrap();
        std::fs::remove_file(dir.join("labels.psv")).unwrap();
        std::fs::remove_file(dir.join("config.json")).unwrap();
        let bundle = DatasetBundle::load(&dir).unwrap();
        assert!(bundle.truth.is_none());
        assert!(bundle.labels.is_none());
        assert!(bundle.config.is_none());
        assert!(bundle.are_siblings(Asn::new(1), Asn::new(2)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_required_file_is_an_error() {
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(12));
        let dir = tmpdir("missing");
        save(&world, &dir).unwrap();
        std::fs::remove_file(dir.join("peeringdb.json")).unwrap();
        assert!(matches!(
            DatasetBundle::load(&dir),
            Err(IoError::Fs(file, _)) if file == "peeringdb.json"
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_file_is_a_format_error() {
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(12));
        let dir = tmpdir("corrupt");
        save(&world, &dir).unwrap();
        std::fs::write(dir.join("web.json"), "{not json").unwrap();
        assert!(matches!(
            DatasetBundle::load(&dir),
            Err(IoError::Format(file, _)) if file == "web.json"
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
