//! # borges-synthnet
//!
//! A generative model of the Internet's organizational structure — the
//! ground-truth substrate the Borges reproduction is evaluated against.
//!
//! The paper (§5.4) stresses that *no ground truth exists* for
//! AS-to-Organization mappings: the real ownership graph is private,
//! fragmentary and constantly reshaped by mergers. The authors therefore
//! validate with manual inspection plus an aggregate metric. This crate
//! turns that weakness into a strength for reproduction purposes: it
//! generates a plausible Internet **whose true ownership is known**, then
//! derives the same imperfect views the paper's pipeline consumes:
//!
//! * a WHOIS registry that fragments conglomerates into per-subsidiary
//!   org records (the Lumen/CenturyLink split of Fig. 3),
//! * a PeeringDB snapshot with operator-written, multilingual, noisy
//!   `notes`/`aka` text and self-reported websites,
//! * a simulated web where acquired brands redirect to their parents,
//!   regional subsidiaries share favicons, small operators serve framework
//!   default icons or point at Facebook pages,
//! * APNIC-like per-ASN user populations and an AS-Rank ordering for the
//!   §6 impact analyses.
//!
//! Every anecdote the paper tells — Edgecast/Limelight behind
//! `www.edg.io`, the Clearwire→Sprint→T-Mobile redirect chain, Deutsche
//! Telekom's subsidiary notes, the Claro favicon family, Digicel's
//! 25-market footprint, the DE-CIX classifier miss — is scripted into the
//! world with its real ASNs (see [`scripted`]).
//!
//! ## Quick start
//!
//! ```
//! use borges_synthnet::{GeneratorConfig, SyntheticInternet};
//!
//! let world = SyntheticInternet::generate(&GeneratorConfig::tiny(42));
//! assert!(world.whois.asn_count() > 300);
//! assert!(world.pdb.net_count() > 50);
//! // The oracle knows the truth the pipeline must recover:
//! use borges_types::Asn;
//! assert!(world.truth.are_siblings(Asn::new(3356), Asn::new(209)));
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod churn;
pub mod config;
pub mod dist;
pub mod evolve;
pub mod generate;
pub mod io;
pub mod naming;
pub mod orgmodel;
pub mod scripted;
pub mod stream;
pub mod textgen;
pub mod topogen;

pub use churn::{churn, ChurnReport};
pub use config::GeneratorConfig;
pub use evolve::{EvolutionEvent, EvolveError};
pub use generate::{PopulationRecord, SyntheticInternet};
pub use stream::{generate_to_dir, StreamReport};

pub use orgmodel::{
    level3_timeline, FaviconKind, GroundTruth, MnaEvent, MnaEventKind, OrgKind, TextPlan, TruthOrg,
    TruthOrgId, TruthUnit, WebPlan,
};
