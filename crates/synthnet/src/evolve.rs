//! World evolution: mergers, rebrandings and spinoffs over time.
//!
//! §7 of the paper points out that organizational structure is a moving
//! target and that no longitudinal archive exists to track it. The
//! simulator can do what the live Internet cannot: take a world, apply a
//! dated batch of corporate events, and emit the *successor snapshot* —
//! with exactly the registry lag the paper documents (WHOIS keeps the old
//! org split, PeeringDB keeps the old records, but the acquired brand's
//! website starts redirecting to its new owner).
//!
//! Two snapshots of the same world can then be mapped independently and
//! compared with `borges_core::diff`-style tooling downstream.

use crate::generate::{collect_populations, compute_asrank, emit_pdb, emit_web, emit_whois};
use crate::naming::COUNTRIES;
use crate::orgmodel::{GroundTruth, OrgKind, TruthOrg, TruthOrgId, WebPlan};
use crate::SyntheticInternet;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::fmt;

/// A corporate event to apply to a world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvolutionEvent {
    /// `acquirer` (by brand) absorbs `target` (by brand): all of the
    /// target's networks become the acquirer's. Registries lag — only the
    /// target flagship's website changes, redirecting to the acquirer.
    Acquisition {
        /// Brand of the buying organization.
        acquirer: String,
        /// Brand of the bought organization.
        target: String,
    },
    /// The organization renames itself: new brand, new website; the old
    /// site redirects to the new one (the CenturyLink → Lumen shape).
    Rebrand {
        /// Current brand.
        brand: String,
        /// New brand (must be a valid lower-case host label).
        new_brand: String,
    },
    /// The organization sells its operations in the listed markets
    /// (ISO country codes) to a newly created company (the Lumen →
    /// Cirion shape).
    Spinoff {
        /// Parent brand.
        brand: String,
        /// Markets divested.
        countries: Vec<String>,
        /// Brand of the new owner.
        new_brand: String,
    },
}

/// Why an event could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvolveError {
    /// No organization carries the named brand.
    UnknownBrand(String),
    /// The new brand is already taken.
    BrandTaken(String),
    /// A spinoff listed a market the parent does not operate in.
    NotPresent {
        /// Parent brand.
        brand: String,
        /// The missing market.
        country: String,
    },
}

impl fmt::Display for EvolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvolveError::UnknownBrand(b) => write!(f, "no organization branded {b:?}"),
            EvolveError::BrandTaken(b) => write!(f, "brand {b:?} already exists"),
            EvolveError::NotPresent { brand, country } => {
                write!(f, "{brand:?} has no unit in {country}")
            }
        }
    }
}

impl Error for EvolveError {}

fn find_org(orgs: &[TruthOrg], brand: &str) -> Result<usize, EvolveError> {
    orgs.iter()
        .position(|o| o.brand == brand)
        .ok_or_else(|| EvolveError::UnknownBrand(brand.to_string()))
}

/// The host an organization's flagship currently answers on (used as the
/// redirect anchor for acquisitions/rebrands).
fn flagship_host(org: &TruthOrg) -> String {
    for unit in &org.units {
        match &unit.web {
            WebPlan::Own { host, .. } => return host.clone(),
            WebPlan::RedirectToHost { target_host, .. } => return target_host.clone(),
            _ => {}
        }
    }
    format!("www.{}.{}", org.brand, COUNTRIES[org.hq_country].cctld)
}

/// Applies events to a set of organizations, in order.
pub fn apply_events(
    mut orgs: Vec<TruthOrg>,
    events: &[EvolutionEvent],
) -> Result<Vec<TruthOrg>, EvolveError> {
    for event in events {
        match event {
            EvolutionEvent::Acquisition { acquirer, target } => {
                let acquirer_idx = find_org(&orgs, acquirer)?;
                let target_idx = find_org(&orgs, target)?;
                let new_home = flagship_host(&orgs[acquirer_idx]);
                let mut absorbed = orgs.remove(target_idx);
                // The acquired flagship's site starts redirecting to the
                // new owner; everything else lags.
                if let Some(flagship) = absorbed.units.first_mut() {
                    let reported = match &flagship.web {
                        WebPlan::Own { host, .. } => host.clone(),
                        WebPlan::RedirectToHost { reported_host, .. } => reported_host.clone(),
                        _ => format!(
                            "www.{}.{}",
                            absorbed.brand, COUNTRIES[absorbed.hq_country].cctld
                        ),
                    };
                    flagship.web = WebPlan::RedirectToHost {
                        reported_host: reported,
                        target_host: new_home.clone(),
                        via: None,
                        js: false,
                    };
                }
                let acquirer_idx = find_org(&orgs, acquirer)?; // index may have shifted
                orgs[acquirer_idx].units.append(&mut absorbed.units);
            }
            EvolutionEvent::Rebrand { brand, new_brand } => {
                if orgs.iter().any(|o| o.brand == *new_brand) {
                    return Err(EvolveError::BrandTaken(new_brand.clone()));
                }
                let idx = find_org(&orgs, brand)?;
                let old_host = flagship_host(&orgs[idx]);
                let new_host = format!(
                    "www.{}.{}",
                    new_brand, COUNTRIES[orgs[idx].hq_country].cctld
                );
                orgs[idx].brand = new_brand.clone();
                orgs[idx].display_name = crate::naming::capitalize(new_brand);
                if let Some(flagship) = orgs[idx].units.first_mut() {
                    // The old address (still in PeeringDB) redirects to
                    // the new brand's site.
                    flagship.web = WebPlan::RedirectToHost {
                        reported_host: old_host,
                        target_host: new_host,
                        via: None,
                        js: false,
                    };
                }
            }
            EvolutionEvent::Spinoff {
                brand,
                countries,
                new_brand,
            } => {
                if orgs.iter().any(|o| o.brand == *new_brand) {
                    return Err(EvolveError::BrandTaken(new_brand.clone()));
                }
                let idx = find_org(&orgs, brand)?;
                let mut moved = Vec::new();
                for country in countries {
                    let pos = COUNTRIES
                        .iter()
                        .position(|c| c.code == country)
                        .ok_or_else(|| EvolveError::NotPresent {
                            brand: brand.clone(),
                            country: country.clone(),
                        })?;
                    let unit_idx = orgs[idx]
                        .units
                        .iter()
                        .position(|u| u.country == pos)
                        .ok_or_else(|| EvolveError::NotPresent {
                            brand: brand.clone(),
                            country: country.clone(),
                        })?;
                    let mut unit = orgs[idx].units.remove(unit_idx);
                    // Divested units get their own registrations back, and
                    // the buyer rebrands their web presence (otherwise the
                    // old branding would — correctly! — keep tying them to
                    // the seller).
                    unit.whois_own_org = true;
                    unit.pdb_own_org = true;
                    unit.web = WebPlan::Own {
                        host: format!("www.{}.{}", new_brand, COUNTRIES[unit.country].cctld),
                        canonical_path: None,
                        favicon: crate::orgmodel::FaviconKind::Brand(new_brand.clone()),
                    };
                    moved.push(unit);
                }
                let hq = moved.first().map(|u| u.country).unwrap_or(0);
                let max_id = orgs.iter().map(|o| o.id.0).max().unwrap_or(0);
                orgs.push(TruthOrg {
                    id: TruthOrgId(max_id + 1),
                    brand: new_brand.clone(),
                    display_name: crate::naming::capitalize(new_brand),
                    kind: OrgKind::Conglomerate,
                    hq_country: hq,
                    units: moved,
                });
            }
        }
    }
    // Re-number ids densely (GroundTruth indexes by id).
    for (i, org) in orgs.iter_mut().enumerate() {
        org.id = TruthOrgId(i);
    }
    Ok(orgs)
}

impl SyntheticInternet {
    /// Produces the successor snapshot after `events`, re-emitting every
    /// dataset view with `seed` (registry churn like `changed` dates and
    /// website-string decoration re-randomizes; the structural lag
    /// semantics are deterministic).
    pub fn evolve(
        &self,
        events: &[EvolutionEvent],
        seed: u64,
    ) -> Result<SyntheticInternet, EvolveError> {
        let orgs = apply_events(self.truth.to_orgs(), events)?;
        let truth = GroundTruth::new(orgs);
        let mut rng = StdRng::seed_from_u64(seed);
        let whois = emit_whois(&truth, &mut rng);
        let (pdb, text_labels) = emit_pdb(&truth, &mut rng);
        let web = emit_web(&truth);
        let populations = collect_populations(&truth);
        let topology = crate::topogen::emit_topology(&truth, &mut rng);
        let asrank = compute_asrank(&topology);
        Ok(SyntheticInternet {
            config: self.config.clone(),
            truth,
            whois,
            pdb,
            web,
            topology,
            populations,
            asrank,
            hypergiants: self.hypergiants.clone(),
            text_labels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GeneratorConfig, SyntheticInternet};
    use borges_types::Asn;

    fn world() -> SyntheticInternet {
        SyntheticInternet::generate(&GeneratorConfig::tiny(17))
    }

    #[test]
    fn acquisition_moves_truth_and_web_but_lags_registries() {
        let before = world();
        assert!(!before.truth.are_siblings(Asn::new(174), Asn::new(3320)));
        let after = before
            .evolve(
                &[EvolutionEvent::Acquisition {
                    acquirer: "telekom".into(),
                    target: "cogent".into(),
                }],
                18,
            )
            .unwrap();
        // Truth updates instantly…
        assert!(after.truth.are_siblings(Asn::new(174), Asn::new(3320)));
        // …but WHOIS still splits them (registry lag).
        let w_cogent = after.whois.org_of(Asn::new(174)).unwrap();
        let w_dt = after.whois.org_of(Asn::new(3320)).unwrap();
        assert_ne!(w_cogent.id, w_dt.id);
        // And the acquired flagship's site now redirects to the acquirer.
        use borges_websim::{SimWebClient, WebClient};
        let client = SimWebClient::browser(&after.web);
        let r = client
            .fetch(&"http://www.cogentco.com".parse().unwrap())
            .unwrap();
        assert_eq!(
            r.final_url.unwrap().host().as_str(),
            "www.telekom.de",
            "acquisition must surface as a redirect"
        );
    }

    #[test]
    fn rebrand_redirects_old_site_to_new() {
        let before = world();
        let after = before
            .evolve(
                &[EvolutionEvent::Rebrand {
                    brand: "cogent".into(),
                    new_brand: "zentransit".into(),
                }],
                18,
            )
            .unwrap();
        use borges_websim::{SimWebClient, WebClient};
        let client = SimWebClient::browser(&after.web);
        let r = client
            .fetch(&"http://www.cogentco.com".parse().unwrap())
            .unwrap();
        assert_eq!(r.final_url.unwrap().host().as_str(), "www.zentransit.com");
        // Truth organization survives the rename.
        assert!(after.truth.are_siblings(Asn::new(174), Asn::new(1239)));
    }

    #[test]
    fn spinoff_creates_a_new_organization() {
        let before = world();
        // Digicel sells its Kenya operation.
        assert!(before.truth.are_siblings(Asn::new(36926), Asn::new(23520)));
        let after = before
            .evolve(
                &[EvolutionEvent::Spinoff {
                    brand: "digicel".into(),
                    countries: vec!["KE".into()],
                    new_brand: "savannanet".into(),
                }],
                18,
            )
            .unwrap();
        assert!(!after.truth.are_siblings(Asn::new(36926), Asn::new(23520)));
        assert_eq!(after.truth.org_count(), before.truth.org_count() + 1);
        assert_eq!(after.truth.asn_count(), before.truth.asn_count());
    }

    #[test]
    fn unknown_brands_are_rejected() {
        let before = world();
        let err = before
            .evolve(
                &[EvolutionEvent::Acquisition {
                    acquirer: "telekom".into(),
                    target: "no-such-brand".into(),
                }],
                18,
            )
            .unwrap_err();
        assert_eq!(err, EvolveError::UnknownBrand("no-such-brand".into()));
    }

    #[test]
    fn brand_collisions_are_rejected() {
        let before = world();
        let err = before
            .evolve(
                &[EvolutionEvent::Rebrand {
                    brand: "cogent".into(),
                    new_brand: "digicel".into(),
                }],
                18,
            )
            .unwrap_err();
        assert_eq!(err, EvolveError::BrandTaken("digicel".into()));
    }

    #[test]
    fn evolution_preserves_asn_universe() {
        let before = world();
        let after = before
            .evolve(
                &[
                    EvolutionEvent::Acquisition {
                        acquirer: "lumen".into(),
                        target: "orange".into(),
                    },
                    EvolutionEvent::Rebrand {
                        brand: "claro".into(),
                        new_brand: "clarowave".into(),
                    },
                ],
                18,
            )
            .unwrap();
        assert_eq!(after.truth.asn_count(), before.truth.asn_count());
        assert_eq!(after.whois.asn_count(), before.whois.asn_count());
    }

    #[test]
    fn chained_events_apply_in_order() {
        let before = world();
        let after = before
            .evolve(
                &[
                    EvolutionEvent::Acquisition {
                        acquirer: "telekom".into(),
                        target: "cogent".into(),
                    },
                    EvolutionEvent::Rebrand {
                        brand: "telekom".into(),
                        new_brand: "magentanet".into(),
                    },
                ],
                18,
            )
            .unwrap();
        assert!(after.truth.are_siblings(Asn::new(174), Asn::new(3320)));
        let org = after.truth.org(after.truth.org_of(Asn::new(3320)).unwrap());
        assert_eq!(org.brand, "magentanet");
    }
}
