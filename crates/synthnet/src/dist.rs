//! Small statistical helpers over `rand` (the workspace avoids pulling in
//! `rand_distr` for two distributions).

use rand::Rng;

/// Log-normal sample: `exp(mu + sigma * z)` with `z` standard normal via
/// Box–Muller.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mu + sigma * z).exp()
}

/// Samples an index proportionally to `weights`.
pub fn weighted_idx<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum positive");
    let mut x = rng.random::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Samples `n` distinct values from `0..universe` (Floyd's algorithm).
pub fn sample_distinct<R: Rng + ?Sized>(rng: &mut R, universe: usize, n: usize) -> Vec<usize> {
    let n = n.min(universe);
    let mut chosen = std::collections::BTreeSet::new();
    for j in universe - n..universe {
        let t = rng.random_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    let mut v: Vec<usize> = chosen.into_iter().collect();
    // Shuffle so position carries no bias (Fisher–Yates).
    for i in (1..v.len()).rev() {
        let j = rng.random_range(0..=i);
        v.swap(i, j);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lognormal_is_positive_and_centered() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..10_000).map(|_| lognormal(&mut rng, 0.0, 0.5)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        // E[lognormal(0, 0.5)] = exp(0.125) ≈ 1.133
        assert!((0.9..1.4).contains(&mean), "mean {mean}");
    }

    #[test]
    fn weighted_idx_respects_weights() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[weighted_idx(&mut rng, &[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let f2 = counts[2] as f64 / 30_000.0;
        assert!((0.65..0.75).contains(&f2), "{counts:?}");
    }

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let v = sample_distinct(&mut rng, 60, 25);
            assert_eq!(v.len(), 25);
            let set: std::collections::BTreeSet<_> = v.iter().collect();
            assert_eq!(set.len(), 25);
            assert!(v.iter().all(|&x| x < 60));
        }
    }

    #[test]
    fn sample_distinct_caps_at_universe() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = sample_distinct(&mut rng, 5, 10);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50)
                .map(|_| weighted_idx(&mut rng, &[1.0, 1.0, 1.0]))
                .collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50)
                .map(|_| weighted_idx(&mut rng, &[1.0, 1.0, 1.0]))
                .collect()
        };
        assert_eq!(a, b);
    }
}
