//! Ground-truth organizational structures.
//!
//! The paper has no ground truth — the real Internet's ownership graph is
//! unknown, which is why §5.4 leans on the Organization Factor plus manual
//! accuracy checks. The simulator's advantage is that it *generates* the
//! truth first ([`TruthOrg`]) and then derives the imperfect WHOIS /
//! PeeringDB / web views from it, so every inference the pipeline makes can
//! be scored exactly.
//!
//! [`MnaEvent`] models the merger/acquisition/rebrand timelines that make
//! mappings drift (Figure 1's Level3 saga ships as
//! [`level3_timeline`]).

use borges_types::{Asn, FaviconHash};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a ground-truth organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TruthOrgId(pub usize);

impl fmt::Display for TruthOrgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "truth_org:{}", self.0)
    }
}

/// The category an organization was generated as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrgKind {
    /// One ASN, one country — most of the world.
    Singleton,
    /// 2–4 ASNs in one country.
    SmallMulti,
    /// International conglomerate with regional subsidiaries.
    Conglomerate,
    /// Transit provider.
    Transit,
    /// Government mega-org (the DoD shape).
    GovMega,
    /// Content hypergiant.
    Hypergiant,
    /// Internet exchange operator (the DE-CIX shape).
    Ixp,
}

/// What a unit writes in its PeeringDB free-text fields.
#[derive(Debug, Clone, PartialEq)]
pub enum TextPlan {
    /// Fields left empty.
    None,
    /// Digit-free prose (filtered by the input dropout filter).
    Boilerplate {
        /// Style-bank index.
        style: usize,
    },
    /// Numeric decoys, no sibling info (upstreams, phones, years…).
    Decoys {
        /// Style-bank index.
        style: usize,
        /// Unrelated ASNs mentioned (upstream providers etc.).
        asns: Vec<Asn>,
    },
    /// A genuine sibling report in `notes`.
    SiblingReport {
        /// Style-bank index.
        style: usize,
        /// `(display name, asn)` of each reported sibling.
        siblings: Vec<(String, Asn)>,
    },
    /// A genuine alternative identity in `aka`.
    AkaSibling {
        /// Style-bank index.
        style: usize,
        /// Former/alternative name.
        former: String,
        /// Its ASN.
        asn: Asn,
    },
}

/// The favicon a unit's site serves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaviconKind {
    /// The parent brand's icon (shared across the conglomerate):
    /// hash of `brand:<brand>`.
    Brand(String),
    /// A unit-specific icon nobody else shares.
    UnitSpecific(String),
    /// A web technology's default icon: hash of `framework:<name>` — the
    /// byte convention shared with the LLM simulator's pretraining table.
    Framework(&'static str),
    /// No favicon at all.
    None,
}

impl FaviconKind {
    /// The content hash this favicon kind produces on the wire.
    pub fn hash(&self) -> Option<FaviconHash> {
        match self {
            FaviconKind::Brand(b) => Some(FaviconHash::of_bytes(format!("brand:{b}").as_bytes())),
            FaviconKind::UnitSpecific(u) => {
                Some(FaviconHash::of_bytes(format!("unit:{u}").as_bytes()))
            }
            FaviconKind::Framework(name) => Some(FaviconHash::of_bytes(
                format!("framework:{name}").as_bytes(),
            )),
            FaviconKind::None => None,
        }
    }
}

/// What a unit's PeeringDB `website` field leads to.
#[derive(Debug, Clone, PartialEq)]
pub enum WebPlan {
    /// No website reported.
    None,
    /// The unit's own site.
    Own {
        /// Host serving the site.
        host: String,
        /// Canonical path the site settles on (e.g. `/personas/`).
        canonical_path: Option<String>,
        /// Favicon served.
        favicon: FaviconKind,
    },
    /// The reported host redirects to another unit's site (acquisition
    /// not yet rebranded).
    RedirectToHost {
        /// The host written in PeeringDB.
        reported_host: String,
        /// The redirect target host (must carry an `Own` plan somewhere).
        target_host: String,
        /// Optional intermediate hop (the Clearwire→Sprint→T-Mobile
        /// shape).
        via: Option<String>,
        /// Is the final hop implemented in JavaScript?
        js: bool,
    },
    /// The reported site is dead.
    Dead {
        /// The host written in PeeringDB.
        host: String,
    },
    /// A mainstream platform page (facebook/github/…) — the blocklist
    /// cases of Appendix D.
    Social {
        /// Platform host, e.g. `facebook.com`.
        platform: &'static str,
    },
}

/// One ASN of a ground-truth organization, with its dataset plans.
#[derive(Debug, Clone, PartialEq)]
pub struct TruthUnit {
    /// The ASN.
    pub asn: Asn,
    /// Market index into [`crate::naming::COUNTRIES`].
    pub country: usize,
    /// Legal/display name of the unit.
    pub legal_name: String,
    /// Eyeball user population served (0 for non-access units).
    pub users: u64,
    /// Does the unit have its own WHOIS org record (fragmented), or does
    /// it share its parent's?
    pub whois_own_org: bool,
    /// Is the unit registered in PeeringDB?
    pub in_pdb: bool,
    /// If registered: does it sit under its own PeeringDB org (split), or
    /// the parent's (consolidated)?
    pub pdb_own_org: bool,
    /// Free-text plan.
    pub text: TextPlan,
    /// Website plan.
    pub web: WebPlan,
}

/// A ground-truth organization: the real ownership unit.
#[derive(Debug, Clone, PartialEq)]
pub struct TruthOrg {
    /// Identifier.
    pub id: TruthOrgId,
    /// Brand token (lower-case, host-label-safe).
    pub brand: String,
    /// Display name.
    pub display_name: String,
    /// Category.
    pub kind: OrgKind,
    /// Headquarters market index.
    pub hq_country: usize,
    /// All ASNs and their plans.
    pub units: Vec<TruthUnit>,
}

impl TruthOrg {
    /// Total eyeball users across units.
    pub fn total_users(&self) -> u64 {
        self.units.iter().map(|u| u.users).sum()
    }

    /// Distinct markets the org serves users in.
    pub fn countries(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.units.iter().map(|u| u.country).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// The oracle: ASN → true organization.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    orgs: Vec<TruthOrg>,
    org_of: BTreeMap<Asn, TruthOrgId>,
}

impl GroundTruth {
    /// Builds the oracle from generated orgs, checking ASN uniqueness.
    pub fn new(orgs: Vec<TruthOrg>) -> Self {
        let mut org_of = BTreeMap::new();
        for org in &orgs {
            for unit in &org.units {
                let prev = org_of.insert(unit.asn, org.id);
                assert!(
                    prev.is_none(),
                    "generator bug: {} allocated twice",
                    unit.asn
                );
            }
        }
        GroundTruth { orgs, org_of }
    }

    /// The true organization of an ASN.
    pub fn org_of(&self, asn: Asn) -> Option<TruthOrgId> {
        self.org_of.get(&asn).copied()
    }

    /// The organization record.
    pub fn org(&self, id: TruthOrgId) -> &TruthOrg {
        &self.orgs[id.0]
    }

    /// Are two ASNs truly under the same organization?
    pub fn are_siblings(&self, a: Asn, b: Asn) -> bool {
        match (self.org_of(a), self.org_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Iterates all organizations.
    pub fn orgs(&self) -> impl Iterator<Item = &TruthOrg> {
        self.orgs.iter()
    }

    /// Iterates all `(asn, org)` pairs in ASN order.
    pub fn assignments(&self) -> impl Iterator<Item = (Asn, TruthOrgId)> + '_ {
        self.org_of.iter().map(|(a, o)| (*a, *o))
    }

    /// Total ASN count.
    pub fn asn_count(&self) -> usize {
        self.org_of.len()
    }

    /// Total organization count.
    pub fn org_count(&self) -> usize {
        self.orgs.len()
    }

    /// Clones the organizations out (for building an evolved successor
    /// world — see [`crate::evolve`]).
    pub fn to_orgs(&self) -> Vec<TruthOrg> {
        self.orgs.clone()
    }
}

/// A corporate-history event (for the motivational timeline analyses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MnaEventKind {
    /// `acquirer` buys `target`.
    Acquisition {
        /// Buying company.
        acquirer: String,
        /// Bought company.
        target: String,
    },
    /// Two peers merge into one.
    Merger {
        /// First party.
        a: String,
        /// Second party.
        b: String,
        /// Name of the merged entity.
        merged: String,
    },
    /// A company renames itself.
    Rebrand {
        /// Old name.
        from: String,
        /// New name.
        to: String,
    },
    /// `parent` sells a region/division to `buyer`.
    Spinoff {
        /// Selling company.
        parent: String,
        /// The divested asset.
        asset: String,
        /// Receiving company.
        buyer: String,
    },
}

/// One dated corporate event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MnaEvent {
    /// Calendar year.
    pub year: u32,
    /// What happened.
    pub kind: MnaEventKind,
}

impl fmt::Display for MnaEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            MnaEventKind::Acquisition { acquirer, target } => {
                write!(f, "{}: {} acquires {}", self.year, acquirer, target)
            }
            MnaEventKind::Merger { a, b, merged } => {
                write!(f, "{}: {} and {} merge into {}", self.year, a, b, merged)
            }
            MnaEventKind::Rebrand { from, to } => {
                write!(f, "{}: {} rebrands as {}", self.year, from, to)
            }
            MnaEventKind::Spinoff {
                parent,
                asset,
                buyer,
            } => {
                write!(
                    f,
                    "{}: {} spins off {} to {}",
                    self.year, parent, asset, buyer
                )
            }
        }
    }
}

/// Figure 1's Level3 timeline, scripted: the mergers, demergers,
/// acquisitions and rebrandings that make the Lumen/CenturyLink case the
/// paper's running example.
pub fn level3_timeline() -> Vec<MnaEvent> {
    vec![
        MnaEvent {
            year: 2009,
            kind: MnaEventKind::Merger {
                a: "CenturyTel".into(),
                b: "EMBARQ".into(),
                merged: "CenturyLink".into(),
            },
        },
        MnaEvent {
            year: 2010,
            kind: MnaEventKind::Acquisition {
                acquirer: "CenturyLink".into(),
                target: "Qwest".into(),
            },
        },
        MnaEvent {
            year: 2011,
            kind: MnaEventKind::Acquisition {
                acquirer: "CenturyLink".into(),
                target: "Savvis".into(),
            },
        },
        MnaEvent {
            year: 2011,
            kind: MnaEventKind::Acquisition {
                acquirer: "Level 3".into(),
                target: "Global Crossing".into(),
            },
        },
        MnaEvent {
            year: 2016,
            kind: MnaEventKind::Acquisition {
                acquirer: "CenturyLink".into(),
                target: "Level 3".into(),
            },
        },
        MnaEvent {
            year: 2020,
            kind: MnaEventKind::Rebrand {
                from: "CenturyLink".into(),
                to: "Lumen".into(),
            },
        },
        MnaEvent {
            year: 2022,
            kind: MnaEventKind::Spinoff {
                parent: "Lumen".into(),
                asset: "Latin American business".into(),
                buyer: "Cirion".into(),
            },
        },
        MnaEvent {
            year: 2022,
            kind: MnaEventKind::Spinoff {
                parent: "Lumen".into(),
                asset: "EMEA business".into(),
                buyer: "Colt".into(),
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(asn: u32) -> TruthUnit {
        TruthUnit {
            asn: Asn::new(asn),
            country: 0,
            legal_name: format!("Unit {asn}"),
            users: 0,
            whois_own_org: false,
            in_pdb: false,
            pdb_own_org: false,
            text: TextPlan::None,
            web: WebPlan::None,
        }
    }

    fn org(id: usize, asns: &[u32]) -> TruthOrg {
        TruthOrg {
            id: TruthOrgId(id),
            brand: format!("brand{id}"),
            display_name: format!("Org {id}"),
            kind: OrgKind::SmallMulti,
            hq_country: 0,
            units: asns.iter().map(|&a| unit(a)).collect(),
        }
    }

    #[test]
    fn ground_truth_oracle() {
        let gt = GroundTruth::new(vec![org(0, &[1, 2]), org(1, &[3])]);
        assert!(gt.are_siblings(Asn::new(1), Asn::new(2)));
        assert!(!gt.are_siblings(Asn::new(1), Asn::new(3)));
        assert!(!gt.are_siblings(Asn::new(1), Asn::new(99)));
        assert_eq!(gt.asn_count(), 3);
        assert_eq!(gt.org_count(), 2);
        assert_eq!(gt.org_of(Asn::new(3)), Some(TruthOrgId(1)));
    }

    #[test]
    #[should_panic(expected = "allocated twice")]
    fn duplicate_asn_is_a_generator_bug() {
        GroundTruth::new(vec![org(0, &[1]), org(1, &[1])]);
    }

    #[test]
    fn favicon_kinds_hash_consistently() {
        let a = FaviconKind::Brand("claro".into()).hash().unwrap();
        let b = FaviconKind::Brand("claro".into()).hash().unwrap();
        let c = FaviconKind::Brand("orange".into()).hash().unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(FaviconKind::None.hash().is_none());
        // Framework bytes follow the shared `framework:<name>` convention.
        assert_eq!(
            FaviconKind::Framework("bootstrap").hash().unwrap(),
            FaviconHash::of_bytes(b"framework:bootstrap"),
        );
    }

    #[test]
    fn level3_timeline_matches_figure_1() {
        let t = level3_timeline();
        assert_eq!(t.len(), 8);
        assert!(
            t.windows(2).all(|w| w[0].year <= w[1].year),
            "chronological"
        );
        let text: Vec<String> = t.iter().map(|e| e.to_string()).collect();
        assert!(text
            .iter()
            .any(|s| s.contains("Level 3") && s.contains("Global Crossing")));
        assert!(text.iter().any(|s| s.contains("rebrands as Lumen")));
        assert!(text.iter().any(|s| s.contains("Cirion")));
    }

    #[test]
    fn org_aggregates() {
        let mut o = org(0, &[1, 2, 3]);
        o.units[0].users = 10;
        o.units[1].users = 20;
        o.units[2].country = 5;
        assert_eq!(o.total_users(), 30);
        assert_eq!(o.countries(), vec![0, 5]);
    }
}
