//! Deterministic name/brand/domain synthesis.
//!
//! Brands are generated collision-free from an index (syllable encoding),
//! so the generator never needs a uniqueness check. Countries carry the
//! ccTLD, a lower-case name token (for fused domains like
//! `clarochile.cl`), and the language used by that market's PeeringDB
//! free text.

use borges_types::CountryCode;

/// Languages the free-text generator writes in (matching the cue lexicons
/// of the simulated LLM — and of real multilingual PeeringDB text).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Language {
    /// English.
    En,
    /// Spanish.
    Es,
    /// Portuguese.
    Pt,
    /// German.
    De,
    /// French.
    Fr,
    /// Italian.
    It,
    /// Indonesian.
    Id,
}

/// Static facts about a market the generator can place networks in.
#[derive(Debug, Clone, Copy)]
pub struct CountryInfo {
    /// ISO alpha-2 code.
    pub code: &'static str,
    /// The ccTLD (without dot).
    pub cctld: &'static str,
    /// Lower-case name token for fused domains (`clarochile`).
    pub token: &'static str,
    /// Language of operator-written free text in this market.
    pub language: Language,
}

/// The markets of the synthetic world. Ordered; generators index into this
/// table deterministically.
pub const COUNTRIES: &[CountryInfo] = &[
    CountryInfo {
        code: "US",
        cctld: "com",
        token: "usa",
        language: Language::En,
    },
    CountryInfo {
        code: "DE",
        cctld: "de",
        token: "deutschland",
        language: Language::De,
    },
    CountryInfo {
        code: "GB",
        cctld: "co.uk",
        token: "uk",
        language: Language::En,
    },
    CountryInfo {
        code: "FR",
        cctld: "fr",
        token: "france",
        language: Language::Fr,
    },
    CountryInfo {
        code: "ES",
        cctld: "es",
        token: "espana",
        language: Language::Es,
    },
    CountryInfo {
        code: "IT",
        cctld: "it",
        token: "italia",
        language: Language::It,
    },
    CountryInfo {
        code: "PL",
        cctld: "pl",
        token: "polska",
        language: Language::En,
    },
    CountryInfo {
        code: "BR",
        cctld: "com.br",
        token: "brasil",
        language: Language::Pt,
    },
    CountryInfo {
        code: "AR",
        cctld: "com.ar",
        token: "argentina",
        language: Language::Es,
    },
    CountryInfo {
        code: "CL",
        cctld: "cl",
        token: "chile",
        language: Language::Es,
    },
    CountryInfo {
        code: "PE",
        cctld: "com.pe",
        token: "peru",
        language: Language::Es,
    },
    CountryInfo {
        code: "CO",
        cctld: "com.co",
        token: "colombia",
        language: Language::Es,
    },
    CountryInfo {
        code: "MX",
        cctld: "com.mx",
        token: "mexico",
        language: Language::Es,
    },
    CountryInfo {
        code: "PR",
        cctld: "com",
        token: "pr",
        language: Language::Es,
    },
    CountryInfo {
        code: "DO",
        cctld: "com.do",
        token: "rd",
        language: Language::Es,
    },
    CountryInfo {
        code: "JM",
        cctld: "com",
        token: "jamaica",
        language: Language::En,
    },
    CountryInfo {
        code: "TT",
        cctld: "com",
        token: "tt",
        language: Language::En,
    },
    CountryInfo {
        code: "HT",
        cctld: "com",
        token: "haiti",
        language: Language::Fr,
    },
    CountryInfo {
        code: "PA",
        cctld: "com.pa",
        token: "panama",
        language: Language::Es,
    },
    CountryInfo {
        code: "CR",
        cctld: "com",
        token: "costarica",
        language: Language::Es,
    },
    CountryInfo {
        code: "GT",
        cctld: "com.gt",
        token: "guatemala",
        language: Language::Es,
    },
    CountryInfo {
        code: "SV",
        cctld: "com.sv",
        token: "elsalvador",
        language: Language::Es,
    },
    CountryInfo {
        code: "HN",
        cctld: "com.hn",
        token: "honduras",
        language: Language::Es,
    },
    CountryInfo {
        code: "NI",
        cctld: "com.ni",
        token: "nicaragua",
        language: Language::Es,
    },
    CountryInfo {
        code: "BO",
        cctld: "com.bo",
        token: "bolivia",
        language: Language::Es,
    },
    CountryInfo {
        code: "PY",
        cctld: "com.py",
        token: "paraguay",
        language: Language::Es,
    },
    CountryInfo {
        code: "UY",
        cctld: "com.uy",
        token: "uruguay",
        language: Language::Es,
    },
    CountryInfo {
        code: "EC",
        cctld: "com.ec",
        token: "ecuador",
        language: Language::Es,
    },
    CountryInfo {
        code: "VE",
        cctld: "com.ve",
        token: "venezuela",
        language: Language::Es,
    },
    CountryInfo {
        code: "ID",
        cctld: "co.id",
        token: "indonesia",
        language: Language::Id,
    },
    CountryInfo {
        code: "MY",
        cctld: "com.my",
        token: "malaysia",
        language: Language::En,
    },
    CountryInfo {
        code: "SG",
        cctld: "com.sg",
        token: "sg",
        language: Language::En,
    },
    CountryInfo {
        code: "TH",
        cctld: "co.th",
        token: "thai",
        language: Language::En,
    },
    CountryInfo {
        code: "VN",
        cctld: "com.vn",
        token: "vietnam",
        language: Language::En,
    },
    CountryInfo {
        code: "PH",
        cctld: "com.ph",
        token: "ph",
        language: Language::En,
    },
    CountryInfo {
        code: "IN",
        cctld: "co.in",
        token: "india",
        language: Language::En,
    },
    CountryInfo {
        code: "PK",
        cctld: "com.pk",
        token: "pk",
        language: Language::En,
    },
    CountryInfo {
        code: "BD",
        cctld: "com.bd",
        token: "bd",
        language: Language::En,
    },
    CountryInfo {
        code: "JP",
        cctld: "co.jp",
        token: "japan",
        language: Language::En,
    },
    CountryInfo {
        code: "KR",
        cctld: "co.kr",
        token: "korea",
        language: Language::En,
    },
    CountryInfo {
        code: "TW",
        cctld: "com.tw",
        token: "taiwan",
        language: Language::En,
    },
    CountryInfo {
        code: "HK",
        cctld: "com.hk",
        token: "hk",
        language: Language::En,
    },
    CountryInfo {
        code: "AU",
        cctld: "com.au",
        token: "au",
        language: Language::En,
    },
    CountryInfo {
        code: "NZ",
        cctld: "co.nz",
        token: "nz",
        language: Language::En,
    },
    CountryInfo {
        code: "ZA",
        cctld: "co.za",
        token: "za",
        language: Language::En,
    },
    CountryInfo {
        code: "NG",
        cctld: "com.ng",
        token: "naija",
        language: Language::En,
    },
    CountryInfo {
        code: "KE",
        cctld: "co.ke",
        token: "kenya",
        language: Language::En,
    },
    CountryInfo {
        code: "EG",
        cctld: "com.eg",
        token: "misr",
        language: Language::En,
    },
    CountryInfo {
        code: "TR",
        cctld: "com.tr",
        token: "turk",
        language: Language::En,
    },
    CountryInfo {
        code: "NL",
        cctld: "nl",
        token: "nederland",
        language: Language::En,
    },
    CountryInfo {
        code: "SE",
        cctld: "se",
        token: "sverige",
        language: Language::En,
    },
    CountryInfo {
        code: "NO",
        cctld: "no",
        token: "norge",
        language: Language::En,
    },
    CountryInfo {
        code: "AT",
        cctld: "at",
        token: "austria",
        language: Language::De,
    },
    CountryInfo {
        code: "CH",
        cctld: "ch",
        token: "swiss",
        language: Language::De,
    },
    CountryInfo {
        code: "SK",
        cctld: "sk",
        token: "slovensko",
        language: Language::En,
    },
    CountryInfo {
        code: "HR",
        cctld: "hr",
        token: "hrvatska",
        language: Language::En,
    },
    CountryInfo {
        code: "CZ",
        cctld: "cz",
        token: "cesko",
        language: Language::En,
    },
    CountryInfo {
        code: "HU",
        cctld: "hu",
        token: "magyar",
        language: Language::En,
    },
    CountryInfo {
        code: "RO",
        cctld: "ro",
        token: "romania",
        language: Language::En,
    },
    CountryInfo {
        code: "PT",
        cctld: "pt",
        token: "portugal",
        language: Language::Pt,
    },
    CountryInfo {
        code: "GR",
        cctld: "gr",
        token: "hellas",
        language: Language::En,
    },
    CountryInfo {
        code: "CA",
        cctld: "ca",
        token: "canada",
        language: Language::En,
    },
];

impl CountryInfo {
    /// The parsed country code.
    pub fn country_code(&self) -> CountryCode {
        self.code.parse().expect("table codes are valid")
    }
}

const SYLLABLES: &[&str] = &[
    "ba", "ce", "di", "fo", "gu", "ha", "ki", "lo", "mu", "na", "pe", "qui", "ro", "sa", "te",
    "vu", "wa", "xi", "yo", "zu",
];

const SUFFIXES: &[&str] = &[
    "", "net", "com", "tel", "link", "wave", "fiber", "connect", "line", "data", "sys", "ix",
];

/// Generates the `idx`-th brand token.
///
/// Injective: the syllable encoding of `idx + 8000` is a bijection onto
/// syllable strings of ≥4 syllables (3 syllables cover 0..8000), every
/// syllable ends in a vowel, and no suffix in the suffix table can be a tail
/// of a syllable string (each either ends in a consonant or contains a
/// non-syllable bigram) — so `encoding + suffix` collides only when both
/// parts collide, and both are functions of `idx`.
pub fn brand(idx: usize) -> String {
    let mut n = idx + 8000; // force ≥4 syllables → ≥8 chars
    let mut syl = String::new();
    loop {
        syl.push_str(SYLLABLES[n % SYLLABLES.len()]);
        n /= SYLLABLES.len();
        if n == 0 {
            break;
        }
    }
    let suffix = SUFFIXES[(idx / 7) % SUFFIXES.len()];
    format!("{syl}{suffix}")
}

/// Legal-name variants so the same brand appears differently across
/// registries (`Acme Communications, Inc.` vs `ACME COMMUNICATIONS LLC`).
pub fn legal_name(brand: &str, variant: usize) -> String {
    let cap = capitalize(brand);
    match variant % 5 {
        0 => format!("{cap} Communications, Inc."),
        1 => format!("{cap} Networks LLC"),
        2 => format!("{} TELECOM", brand.to_uppercase()),
        3 => format!("{cap} Holdings"),
        _ => format!("{cap} S.A."),
    }
}

/// The legal name of a conglomerate's unit in a market
/// (`Acme Chile S.A.`).
pub fn unit_legal_name(brand: &str, country: &CountryInfo) -> String {
    format!("{} {}", capitalize(brand), capitalize(country.token))
}

/// A WHOIS handle like `ACME-141-ARIN`.
pub fn whois_handle(brand: &str, serial: usize, rir: &str) -> String {
    let head: String = brand
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .take(8)
        .collect::<String>()
        .to_uppercase();
    format!("{head}-{serial}-{rir}")
}

/// Capitalizes the first character.
pub fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn brands_are_unique_and_long_enough() {
        let mut seen = BTreeSet::new();
        for i in 0..50_000 {
            let b = brand(i);
            assert!(b.len() >= 4, "brand {b} too short for classifier prefixes");
            assert!(seen.insert(b.clone()), "brand collision at {i}: {b}");
        }
    }

    #[test]
    fn brands_are_valid_host_labels() {
        for i in 0..5_000 {
            let b = brand(i);
            assert!(b.chars().all(|c| c.is_ascii_lowercase()), "bad brand {b}");
        }
    }

    #[test]
    fn country_table_is_well_formed() {
        let mut seen = BTreeSet::new();
        for c in COUNTRIES {
            assert!(seen.insert(c.code), "duplicate country {}", c.code);
            c.country_code(); // must parse
            assert!(!c.token.is_empty());
            assert!(c.token.chars().all(|ch| ch.is_ascii_lowercase()));
        }
        assert!(COUNTRIES.len() >= 50, "need a broad market pool");
    }

    #[test]
    fn legal_names_vary_by_variant() {
        let names: BTreeSet<String> = (0..5).map(|v| legal_name("acme", v)).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn whois_handles_look_right() {
        assert_eq!(whois_handle("acmenet", 141, "ARIN"), "ACMENET-141-ARIN");
        let h = whois_handle("verylongbrandname", 1, "RIPE");
        assert!(h.starts_with("VERYLONG-1-"));
    }

    #[test]
    fn unit_names_fuse_brand_and_market() {
        let cl = COUNTRIES.iter().find(|c| c.code == "CL").unwrap();
        assert_eq!(unit_legal_name("claro", cl), "Claro Chile");
    }
}
