//! Generator calibration.
//!
//! Every knob of the synthetic Internet lives here. The presets are
//! calibrated so that the emitted datasets land near the paper's §5
//! statistics:
//!
//! * [`GeneratorConfig::paper`] — full scale (≈117k WHOIS ASNs, ≈31k
//!   PeeringDB networks), used by the evaluation binaries;
//! * [`GeneratorConfig::medium`] — ~10% scale for integration tests and
//!   benches;
//! * [`GeneratorConfig::tiny`] — a few hundred ASNs for unit tests.

use serde::{Deserialize, Serialize};

/// All generator knobs. Counts are *organization* counts per category;
/// ASN counts follow from the per-category size distributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// RNG seed; two runs with the same config are byte-identical.
    pub seed: u64,

    // ----- world composition -------------------------------------------
    /// Single-ASN organizations (the overwhelming majority of the world).
    pub singleton_orgs: usize,
    /// Small multi-ASN organizations (2–4 ASNs, one country).
    pub small_multi_orgs: usize,
    /// International conglomerates (regional subsidiaries in many
    /// countries — the Deutsche Telekom / Claro / Digicel shape).
    pub conglomerates: usize,
    /// Transit providers (ASN count correlated with AS-Rank).
    pub transit_orgs: usize,
    /// Government mega-orgs (the DNIC/DoD shape: hundreds of ASNs under
    /// one WHOIS org).
    pub gov_mega_orgs: usize,
    /// ASNs per government mega-org.
    pub gov_mega_asns: usize,

    // ----- PeeringDB registration --------------------------------------
    /// Probability that a singleton org registers in PeeringDB.
    pub pdb_rate_singleton: f64,
    /// Probability that a small-multi org's ASN registers.
    pub pdb_rate_small_multi: f64,
    /// Probability that a conglomerate unit registers.
    pub pdb_rate_conglomerate: f64,
    /// Probability that a transit ASN registers.
    pub pdb_rate_transit: f64,
    /// Probability that a registered conglomerate is consolidated under a
    /// single PeeringDB org (the CenturyLink+Level3 shape) rather than
    /// split per unit.
    pub pdb_consolidation_rate: f64,

    // ----- WHOIS fragmentation ------------------------------------------
    /// Probability that a conglomerate unit gets its own WHOIS org record
    /// (vs. sharing the parent's).
    pub whois_fragmentation_rate: f64,

    // ----- free-text behaviour ------------------------------------------
    /// Probability that a registered network fills in notes/aka at all.
    pub text_rate: f64,
    /// Probability that a conglomerate flagship's notes report sibling
    /// ASNs.
    pub sibling_report_rate: f64,
    /// Probability that a registered network's text contains numeric decoys
    /// (upstream lists, phones, years, prefix limits) without siblings.
    pub decoy_rate: f64,

    // ----- web behaviour -------------------------------------------------
    /// Probability that a registered network fills in a website.
    pub website_rate: f64,
    /// Probability that a site referenced in PeeringDB is dead.
    pub dead_site_rate: f64,
    /// Probability that an acquired-but-unrebranded unit's site redirects
    /// to the parent (the R&R signal).
    pub redirect_rate: f64,
    /// Probability that a redirect chain has an extra intermediate hop
    /// (the Clearwire → Sprint → T-Mobile shape).
    pub chained_redirect_rate: f64,
    /// Probability that a redirect is implemented in JavaScript (needs a
    /// headless browser to follow).
    pub js_redirect_rate: f64,
    /// Probability that a singleton's site uses a framework default
    /// favicon instead of its own.
    pub framework_favicon_rate: f64,
    /// Probability that a singleton reports a social-platform URL
    /// (facebook/github/…) as its website — the blocklist cases.
    pub social_website_rate: f64,

    // ----- population ----------------------------------------------------
    /// Total Internet user population to distribute (the paper works
    /// against ≈4.21 B).
    pub total_users: u64,
}

impl GeneratorConfig {
    /// Full paper scale (§5.1-§5.2 statistics).
    pub fn paper(seed: u64) -> Self {
        GeneratorConfig {
            seed,
            singleton_orgs: 84_000,
            small_multi_orgs: 7_000,
            conglomerates: 420,
            transit_orgs: 700,
            gov_mega_orgs: 10,
            gov_mega_asns: 650,
            ..Self::rates(seed)
        }
    }

    /// ~10% scale for integration tests and benches.
    pub fn medium(seed: u64) -> Self {
        GeneratorConfig {
            seed,
            singleton_orgs: 8_400,
            small_multi_orgs: 700,
            conglomerates: 42,
            transit_orgs: 70,
            gov_mega_orgs: 1,
            gov_mega_asns: 97,
            ..Self::rates(seed)
        }
    }

    /// Larger-than-paper scale (~130k ASNs) for the streaming generator
    /// and the compile-sharding benches. Worlds this size should be
    /// generated with [`crate::stream::generate_to_dir`], which never
    /// materializes them in memory.
    pub fn large(seed: u64) -> Self {
        GeneratorConfig {
            seed,
            singleton_orgs: 100_000,
            small_multi_orgs: 8_000,
            conglomerates: 500,
            transit_orgs: 800,
            gov_mega_orgs: 10,
            gov_mega_asns: 700,
            ..Self::rates(seed)
        }
    }

    /// The ROADMAP's north-star scale: ~1M ASNs. Streaming-only in
    /// practice; materializing a world this size multiplies every record
    /// several times over in RAM.
    pub fn million(seed: u64) -> Self {
        GeneratorConfig {
            seed,
            singleton_orgs: 780_000,
            small_multi_orgs: 60_000,
            conglomerates: 4_000,
            transit_orgs: 6_000,
            gov_mega_orgs: 20,
            gov_mega_asns: 1_000,
            ..Self::rates(seed)
        }
    }

    /// A few hundred ASNs for unit tests.
    pub fn tiny(seed: u64) -> Self {
        GeneratorConfig {
            seed,
            singleton_orgs: 300,
            small_multi_orgs: 30,
            conglomerates: 8,
            transit_orgs: 6,
            gov_mega_orgs: 1,
            gov_mega_asns: 12,
            ..Self::rates(seed)
        }
    }

    /// The behavioural rates shared by all presets (calibrated once
    /// against §5.2's funnel).
    fn rates(seed: u64) -> Self {
        GeneratorConfig {
            seed,
            singleton_orgs: 0,
            small_multi_orgs: 0,
            conglomerates: 0,
            transit_orgs: 0,
            gov_mega_orgs: 0,
            gov_mega_asns: 0,
            pdb_rate_singleton: 0.22,
            pdb_rate_small_multi: 0.45,
            pdb_rate_conglomerate: 0.72,
            pdb_rate_transit: 0.85,
            pdb_consolidation_rate: 0.60,
            whois_fragmentation_rate: 0.55,
            text_rate: 0.57,
            sibling_report_rate: 0.30,
            decoy_rate: 0.075,
            website_rate: 0.85,
            dead_site_rate: 0.14,
            redirect_rate: 0.55,
            chained_redirect_rate: 0.25,
            js_redirect_rate: 0.30,
            framework_favicon_rate: 0.16,
            social_website_rate: 0.015,
            total_users: 4_210_000_000,
        }
    }

    /// The *expected* ASN total for this config — exact in expectation,
    /// not a guess: each term is the category count times the mean of
    /// its per-org size distribution in the generator (gov mega-orgs
    /// and scripted anecdotes are deterministic, so those terms are
    /// exact, full stop). Bench labels and CI sizing use this; actual
    /// generated counts land within a few percent because the random
    /// categories (small-multi, conglomerate, transit) concentrate
    /// tightly around their means at any realistic org count.
    pub fn approx_asn_count(&self) -> usize {
        // Uniform 2..=4 units per small-multi org.
        let small_multi = self.small_multi_orgs * 3;
        // Conglomerate size classes [0.45, 0.30, 0.18, 0.07] over
        // uniform 2..=4, 5..=8, 9..=15, 14..=22 ⇒ mean 6.72 units.
        let conglomerate = (self.conglomerates as f64 * 6.72).round() as usize;
        // Transit size classes [0.40, 0.25, 0.20, 0.10, 0.05] over
        // 1, 2, 3..=4, 5..=8, 9..=14 ⇒ mean 2.825 units.
        let transit = (self.transit_orgs as f64 * 2.825).round() as usize;
        // Deterministic: max(gov_mega_asns / (i+1), 10) units for org i.
        let gov: usize = (0..self.gov_mega_orgs)
            .map(|i| (self.gov_mega_asns / (i + 1)).max(10))
            .sum();
        scripted_asn_count() + self.singleton_orgs + small_multi + conglomerate + transit + gov
    }
}

/// ASNs contributed by the scripted paper anecdotes, present in every
/// world regardless of scale.
fn scripted_asn_count() -> usize {
    let mut next_id = 0;
    crate::scripted::scripted_orgs(&mut next_id)
        .iter()
        .map(|o| o.units.len())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_is_in_the_whois_ballpark() {
        let c = GeneratorConfig::paper(1);
        let n = c.approx_asn_count();
        assert!(
            (100_000..140_000).contains(&n),
            "approx ASN count {n} far from the paper's 117k"
        );
    }

    #[test]
    fn presets_differ_only_in_scale() {
        let p = GeneratorConfig::paper(1);
        let t = GeneratorConfig::tiny(1);
        assert_eq!(p.text_rate, t.text_rate);
        assert_eq!(p.website_rate, t.website_rate);
        assert!(p.singleton_orgs > t.singleton_orgs);
    }

    #[test]
    fn large_preset_clears_the_scale_floor() {
        assert!(GeneratorConfig::large(1).approx_asn_count() >= 100_000);
    }

    #[test]
    fn million_preset_is_million_scale() {
        let n = GeneratorConfig::million(1).approx_asn_count();
        assert!(
            (950_000..1_100_000).contains(&n),
            "million preset expects {n} ASNs"
        );
    }

    #[test]
    fn expected_count_is_exact_for_deterministic_categories() {
        // A config with only deterministic categories (gov + scripted)
        // must predict the generated world's size *exactly*.
        let config = GeneratorConfig {
            singleton_orgs: 0,
            small_multi_orgs: 0,
            conglomerates: 0,
            transit_orgs: 0,
            gov_mega_orgs: 3,
            gov_mega_asns: 40,
            ..GeneratorConfig::tiny(9)
        };
        let world = crate::SyntheticInternet::generate(&config);
        assert_eq!(world.truth.asn_count(), config.approx_asn_count());
    }

    #[test]
    fn expected_count_tracks_generated_worlds_closely() {
        for seed in [3, 17] {
            let config = GeneratorConfig::tiny(seed);
            let world = crate::SyntheticInternet::generate(&config);
            let expected = config.approx_asn_count();
            let actual = world.truth.asn_count();
            let err = (actual as f64 - expected as f64).abs() / expected as f64;
            assert!(
                err < 0.10,
                "seed {seed}: expected {expected}, generated {actual} ({:.1}% off)",
                err * 100.0
            );
        }
    }

    #[test]
    fn config_serializes() {
        let c = GeneratorConfig::tiny(7);
        let j = serde_json::to_string(&c).unwrap();
        let back: GeneratorConfig = serde_json::from_str(&j).unwrap();
        assert_eq!(back, c);
    }
}
