//! Streaming world generation: Internet-scale datasets in bounded memory.
//!
//! [`SyntheticInternet::generate`](crate::SyntheticInternet::generate)
//! materializes every [`TruthOrg`] — and every WHOIS/PeeringDB/web record
//! derived from it — before writing anything, which caps world size at
//! whatever fits in RAM several times over. [`generate_to_dir`] instead
//! drives the *same* truth pass (same RNG, same draw sequence, so
//! `truth.psv`, `labels.psv` and `populations.psv` are byte-identical to
//! the materialized path) into a sink that emits each organization's
//! records straight to disk and drops the organization.
//!
//! What stays in memory is bounded and small per ASN:
//!
//! * the ASN allocator's used-set and the web host dedup set,
//! * deferred web redirect/dead plans (a few strings per *redirecting*
//!   unit, not per unit),
//! * per-org topology summaries (`OrgKind` + the unit ASNs) for the
//!   relationship-graph pass, and the graph itself,
//! * compact truth/population rows (asn + org id + users) sorted once at
//!   the end,
//! * the org display-name table for `truth.psv`.
//!
//! No full-world `Vec<TruthOrg>`, registry, snapshot or web is ever
//! built. Two-section files (`as2org.txt`, `peeringdb.json`) are written
//! as main-file + temporary second section, stitched at the end.
//!
//! The emission RNGs are per-dataset (derived from the config seed), so
//! the WHOIS `changed` dates, PeeringDB website decorations and topology
//! wiring *differ* from the materialized path's interleaved draws — the
//! streamed bundle is its own deterministic world, loadable through
//! [`DatasetBundle::load`](crate::io::DatasetBundle::load) like any
//! other.

use crate::config::GeneratorConfig;
use crate::generate::{
    compute_asrank, gen_conglomerates, gen_gov_mega, gen_singletons, gen_small_multi, gen_transit,
    scale_users, singleton_scale, AsnAllocator, OrgSink, PdbEmitter, WebEmitter, WhoisEmitter,
};
use crate::io::IoError;
use crate::naming::COUNTRIES;
use crate::orgmodel::{OrgKind, TruthOrg};
use crate::scripted;
use crate::topogen::{emit_topology_from, OrgTopo};
use borges_peeringdb::{PdbNetwork, PdbOrganization};
use borges_topology::serial1;
use borges_types::Asn;
use borges_websim::SnapshotWriter;
use borges_whois::as2org_format::{AUT_HEADER, ORG_HEADER};
use borges_whois::{AutNum, WhoisOrg};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Counts from a completed streaming generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamReport {
    /// Organizations generated (scripted + configured categories).
    pub orgs: usize,
    /// ASNs generated (each belongs to exactly one organization).
    pub asns: usize,
    /// WHOIS organization records emitted.
    pub whois_orgs: usize,
    /// PeeringDB organization records emitted.
    pub pdb_orgs: usize,
    /// PeeringDB network records emitted.
    pub pdb_nets: usize,
    /// Hosts in the web snapshot.
    pub web_hosts: usize,
    /// Users across the population table (after singleton scaling).
    pub total_users: u64,
}

// Per-dataset RNG streams. The truth pass uses the raw seed (shared with
// the materialized path); each emission stream gets its own salt so
// record draws in one dataset can never perturb another.
const WHOIS_SALT: u64 = 0x0077_686f_6973; // "whois"
const PDB_SALT: u64 = 0x0070_6462; // "pdb"
const TOPO_SALT: u64 = 0x746f_706f; // "topo"

/// Generates the world described by `config` directly into `dir` (created
/// if missing), one organization at a time. Returns the record counts.
///
/// Deterministic in `config`; the ground-truth files are byte-identical
/// to what [`crate::io::save`] writes for the same config.
pub fn generate_to_dir(config: &GeneratorConfig, dir: &Path) -> Result<StreamReport, IoError> {
    std::fs::create_dir_all(dir).map_err(|e| IoError::Fs(dir.display().to_string(), e))?;

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut next_id = 0usize;
    let scripted_orgs = scripted::scripted_orgs(&mut next_id);
    let mut alloc = AsnAllocator::new(
        scripted_orgs
            .iter()
            .flat_map(|o| o.units.iter().map(|u| u.asn)),
    );

    let mut sink = StreamSink::new(config, dir)?;
    for org in scripted_orgs {
        sink.accept(org);
    }
    gen_gov_mega(config, &mut rng, &mut alloc, &mut next_id, &mut sink);
    gen_conglomerates(config, &mut rng, &mut alloc, &mut next_id, &mut sink);
    gen_transit(config, &mut rng, &mut alloc, &mut next_id, &mut sink);
    gen_small_multi(config, &mut rng, &mut alloc, &mut next_id, &mut sink);
    gen_singletons(config, &mut rng, &mut alloc, &mut next_id, &mut sink);

    sink.seal(config)
}

/// One compact population row: everything needed to write
/// `populations.psv` after the singleton scaling pass.
struct PopRow {
    asn: u32,
    users: u64,
    country: u16,
    singleton: bool,
}

/// The streaming sink: open writers plus the bounded accumulators.
struct StreamSink {
    dir: PathBuf,

    // WHOIS: org section in the main file, aut section in a tmp file,
    // stitched at seal (the CAIDA format is two-sectioned).
    whois_rng: StdRng,
    whois: WhoisEmitter,
    whois_org_buf: Vec<WhoisOrg>,
    whois_aut_buf: Vec<AutNum>,
    as2org: BufWriter<File>,
    as2org_aut: BufWriter<File>,
    whois_org_count: usize,

    // PeeringDB: same two-section treatment for the org/net tables.
    pdb_rng: StdRng,
    pdb: PdbEmitter,
    pdb_org_buf: Vec<PdbOrganization>,
    pdb_net_buf: Vec<PdbNetwork>,
    pdb_orgs_w: BufWriter<File>,
    pdb_nets_w: BufWriter<File>,
    pdb_org_count: usize,
    pdb_net_count: usize,
    labels: BTreeMap<Asn, Vec<Asn>>,

    // Web: own pages stream; redirect/dead plans defer inside the emitter.
    web: WebEmitter,
    web_writer: SnapshotWriter<BufWriter<File>>,
    web_err: Option<std::io::Error>,

    // Ground truth + population accumulators (compact rows).
    org_names: Vec<String>,
    truth_rows: Vec<(u32, u32)>,
    pop_rows: Vec<PopRow>,

    // Topology summaries for the relationship-graph pass at seal.
    topo: Vec<OrgTopo>,

    orgs: usize,
    asns: usize,
    error: Option<IoError>,
}

fn create(dir: &Path, name: &str) -> Result<BufWriter<File>, IoError> {
    File::create(dir.join(name))
        .map(BufWriter::new)
        .map_err(|e| IoError::Fs(name.to_string(), e))
}

fn fs_err(name: &str) -> impl Fn(std::io::Error) -> IoError + '_ {
    move |e| IoError::Fs(name.to_string(), e)
}

impl StreamSink {
    fn new(config: &GeneratorConfig, dir: &Path) -> Result<Self, IoError> {
        let mut as2org = create(dir, "as2org.txt")?;
        writeln!(as2org, "{ORG_HEADER}").map_err(fs_err("as2org.txt"))?;
        let as2org_aut = create(dir, "as2org.txt.aut.tmp")?;

        let mut pdb_orgs_w = create(dir, "peeringdb.json")?;
        pdb_orgs_w
            .write_all(b"{\"org\":{\"data\":[")
            .map_err(fs_err("peeringdb.json"))?;
        let pdb_nets_w = create(dir, "peeringdb.json.net.tmp")?;

        let mut web_writer =
            SnapshotWriter::new(create(dir, "web.json")?).map_err(fs_err("web.json"))?;
        let mut web_err = None;
        let web = WebEmitter::new(&mut |host, node| {
            if web_err.is_none() {
                web_err = web_writer.node(host, &node).err();
            }
        });
        if let Some(e) = web_err {
            return Err(IoError::Fs("web.json".to_string(), e));
        }

        Ok(StreamSink {
            dir: dir.to_path_buf(),
            whois_rng: StdRng::seed_from_u64(config.seed ^ WHOIS_SALT),
            whois: WhoisEmitter::new(),
            whois_org_buf: Vec::new(),
            whois_aut_buf: Vec::new(),
            as2org,
            as2org_aut,
            whois_org_count: 0,
            pdb_rng: StdRng::seed_from_u64(config.seed ^ PDB_SALT),
            pdb: PdbEmitter::new(),
            pdb_org_buf: Vec::new(),
            pdb_net_buf: Vec::new(),
            pdb_orgs_w,
            pdb_nets_w,
            pdb_org_count: 0,
            pdb_net_count: 0,
            labels: BTreeMap::new(),
            web,
            web_writer,
            web_err: None,
            org_names: Vec::new(),
            truth_rows: Vec::new(),
            pop_rows: Vec::new(),
            topo: Vec::new(),
            orgs: 0,
            asns: 0,
            error: None,
        })
    }

    /// Emits every record derived from one organization, then lets the
    /// organization drop.
    fn consume(&mut self, org: &TruthOrg) -> Result<(), IoError> {
        self.orgs += 1;
        self.asns += org.units.len();
        debug_assert_eq!(org.id.0, self.org_names.len(), "org ids must be dense");
        self.org_names.push(org.display_name.clone());
        for unit in &org.units {
            self.truth_rows.push((unit.asn.value(), org.id.0 as u32));
            if unit.users > 0 {
                self.pop_rows.push(PopRow {
                    asn: unit.asn.value(),
                    users: unit.users,
                    country: unit.country as u16,
                    singleton: org.kind == OrgKind::Singleton,
                });
            }
        }

        // WHOIS records.
        self.whois_org_buf.clear();
        self.whois_aut_buf.clear();
        self.whois.org_records(
            org,
            &mut self.whois_rng,
            &mut self.whois_org_buf,
            &mut self.whois_aut_buf,
        );
        for o in &self.whois_org_buf {
            writeln!(
                self.as2org,
                "{}|{}|{}|{}|{}",
                o.id, o.changed, o.name, o.country, o.source
            )
            .map_err(fs_err("as2org.txt"))?;
        }
        self.whois_org_count += self.whois_org_buf.len();
        for a in &self.whois_aut_buf {
            writeln!(
                self.as2org_aut,
                "{}|{}|{}|{}||{}",
                a.asn.value(),
                a.changed,
                a.name,
                a.org,
                a.source
            )
            .map_err(fs_err("as2org.txt"))?;
        }

        // PeeringDB records.
        self.pdb_org_buf.clear();
        self.pdb_net_buf.clear();
        self.pdb.org_records(
            org,
            &mut self.pdb_rng,
            &mut self.pdb_org_buf,
            &mut self.pdb_net_buf,
            &mut self.labels,
        );
        for o in &self.pdb_org_buf {
            if self.pdb_org_count > 0 {
                self.pdb_orgs_w
                    .write_all(b",")
                    .map_err(fs_err("peeringdb.json"))?;
            }
            let json = serde_json::to_string(o).expect("pdb org serialization cannot fail");
            self.pdb_orgs_w
                .write_all(json.as_bytes())
                .map_err(fs_err("peeringdb.json"))?;
            self.pdb_org_count += 1;
        }
        for n in &self.pdb_net_buf {
            if self.pdb_net_count > 0 {
                self.pdb_nets_w
                    .write_all(b",")
                    .map_err(fs_err("peeringdb.json"))?;
            }
            let json = serde_json::to_string(n).expect("pdb net serialization cannot fail");
            self.pdb_nets_w
                .write_all(json.as_bytes())
                .map_err(fs_err("peeringdb.json"))?;
            self.pdb_net_count += 1;
        }

        // Web pages (Own pages now; redirects/dead defer to seal).
        {
            let StreamSink {
                web,
                web_writer,
                web_err,
                ..
            } = self;
            web.accept(org, &mut |host, node| {
                if web_err.is_none() {
                    *web_err = web_writer.node(host, &node).err();
                }
            });
        }
        if let Some(e) = self.web_err.take() {
            return Err(IoError::Fs("web.json".to_string(), e));
        }

        // Topology summary.
        self.topo.push(OrgTopo::of(org));
        Ok(())
    }

    /// Finishes every file: stitches the two-section formats, replays the
    /// deferred web passes, scales and writes populations, emits the
    /// topology and ranking, and writes the oracle files.
    fn seal(mut self, config: &GeneratorConfig) -> Result<StreamReport, IoError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let StreamSink {
            dir,
            mut as2org,
            as2org_aut,
            mut pdb_orgs_w,
            pdb_nets_w,
            web,
            mut web_writer,
            mut web_err,
            mut truth_rows,
            org_names,
            labels: label_map,
            mut pop_rows,
            topo,
            orgs,
            asns,
            whois_org_count,
            pdb_org_count,
            pdb_net_count,
            ..
        } = self;

        // as2org.txt: append the aut section after its header.
        writeln!(as2org, "{AUT_HEADER}").map_err(fs_err("as2org.txt"))?;
        stitch(as2org, as2org_aut, &dir, "as2org.txt", "as2org.txt.aut.tmp")?;

        // peeringdb.json: close the org table, append the net table.
        pdb_orgs_w
            .write_all(b"]},\"net\":{\"data\":[")
            .map_err(fs_err("peeringdb.json"))?;
        let mut pdb_main = stitch_open(
            pdb_orgs_w,
            pdb_nets_w,
            &dir,
            "peeringdb.json",
            "peeringdb.json.net.tmp",
        )?;
        pdb_main
            .write_all(b"]}}\n")
            .map_err(fs_err("peeringdb.json"))?;
        pdb_main.flush().map_err(fs_err("peeringdb.json"))?;

        // web.json: deferred redirect/dead/orphan passes, then close.
        web.seal(&mut |host, node| {
            if web_err.is_none() {
                web_err = web_writer.node(host, &node).err();
            }
        });
        if let Some(e) = web_err {
            return Err(IoError::Fs("web.json".to_string(), e));
        }
        let web_hosts = web_writer.finish().map_err(fs_err("web.json"))?;

        // truth.psv: rows sorted by ASN, names from the org table.
        truth_rows.sort_unstable();
        let mut truth = create(&dir, "truth.psv")?;
        writeln!(truth, "# asn|org_id|org_name").map_err(fs_err("truth.psv"))?;
        for &(asn, org_id) in &truth_rows {
            writeln!(truth, "{asn}|{org_id}|{}", org_names[org_id as usize])
                .map_err(fs_err("truth.psv"))?;
        }
        truth.flush().map_err(fs_err("truth.psv"))?;

        // labels.psv.
        let mut labels = create(&dir, "labels.psv")?;
        writeln!(labels, "# asn|siblings").map_err(fs_err("labels.psv"))?;
        for (asn, siblings) in &label_map {
            let list: Vec<String> = siblings.iter().map(|a| a.value().to_string()).collect();
            writeln!(labels, "{}|{}", asn.value(), list.join(" ")).map_err(fs_err("labels.psv"))?;
        }
        labels.flush().map_err(fs_err("labels.psv"))?;

        // populations.psv: apply the singleton scaling, then write by ASN.
        let fixed: u64 = pop_rows
            .iter()
            .filter(|r| !r.singleton)
            .map(|r| r.users)
            .sum();
        let placeholder: u64 = pop_rows
            .iter()
            .filter(|r| r.singleton)
            .map(|r| r.users)
            .sum();
        let scale = singleton_scale(config.total_users, fixed, placeholder);
        pop_rows.sort_unstable_by_key(|r| r.asn);
        let mut total_users = 0u64;
        let mut pops = create(&dir, "populations.psv")?;
        writeln!(pops, "# asn|users|country").map_err(fs_err("populations.psv"))?;
        for row in &pop_rows {
            let users = match scale {
                Some(s) if row.singleton => scale_users(row.users, s),
                _ => row.users,
            };
            total_users += users;
            writeln!(
                pops,
                "{}|{}|{}",
                row.asn,
                users,
                COUNTRIES[row.country as usize].country_code()
            )
            .map_err(fs_err("populations.psv"))?;
        }
        pops.flush().map_err(fs_err("populations.psv"))?;

        // Topology + AS-Rank from the per-org summaries.
        let mut topo_rng = StdRng::seed_from_u64(config.seed ^ TOPO_SALT);
        let topology = emit_topology_from(&topo, &mut topo_rng);
        let mut rel = create(&dir, "as-rel.txt")?;
        rel.write_all(serial1::serialize(&topology).as_bytes())
            .map_err(fs_err("as-rel.txt"))?;
        rel.flush().map_err(fs_err("as-rel.txt"))?;
        let mut rank = create(&dir, "asrank.txt")?;
        for asn in compute_asrank(&topology) {
            writeln!(rank, "{}", asn.value()).map_err(fs_err("asrank.txt"))?;
        }
        rank.flush().map_err(fs_err("asrank.txt"))?;

        // hypergiants.psv + config.json.
        let mut hg = create(&dir, "hypergiants.psv")?;
        writeln!(hg, "# name|asn").map_err(fs_err("hypergiants.psv"))?;
        for (name, asn) in scripted::hypergiant_roster() {
            writeln!(hg, "{}|{}", name, asn.value()).map_err(fs_err("hypergiants.psv"))?;
        }
        hg.flush().map_err(fs_err("hypergiants.psv"))?;
        let mut cfg = create(&dir, "config.json")?;
        let json = serde_json::to_string_pretty(config).expect("config serialization cannot fail");
        cfg.write_all(json.as_bytes())
            .map_err(fs_err("config.json"))?;
        cfg.flush().map_err(fs_err("config.json"))?;

        Ok(StreamReport {
            orgs,
            asns,
            whois_orgs: whois_org_count,
            pdb_orgs: pdb_org_count,
            pdb_nets: pdb_net_count,
            web_hosts,
            total_users,
        })
    }
}

impl OrgSink for StreamSink {
    fn accept(&mut self, org: TruthOrg) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.consume(&org) {
            self.error = Some(e);
        }
    }
}

/// Appends the flushed `section` tmp file to `main` and deletes it,
/// returning the still-open main writer.
fn stitch_open(
    mut main: BufWriter<File>,
    section: BufWriter<File>,
    dir: &Path,
    main_name: &str,
    tmp_name: &str,
) -> Result<BufWriter<File>, IoError> {
    section
        .into_inner()
        .map_err(|e| IoError::Fs(tmp_name.to_string(), e.into_error()))?
        .sync_all()
        .ok();
    let mut tmp = File::open(dir.join(tmp_name)).map_err(fs_err(tmp_name))?;
    std::io::copy(&mut tmp, &mut main).map_err(fs_err(main_name))?;
    std::fs::remove_file(dir.join(tmp_name)).map_err(fs_err(tmp_name))?;
    Ok(main)
}

/// [`stitch_open`], then flush and close the main file.
fn stitch(
    main: BufWriter<File>,
    section: BufWriter<File>,
    dir: &Path,
    main_name: &str,
    tmp_name: &str,
) -> Result<(), IoError> {
    let mut main = stitch_open(main, section, dir, main_name, tmp_name)?;
    main.flush().map_err(fs_err(main_name))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{save, DatasetBundle};
    use crate::SyntheticInternet;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("borges-stream-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn streamed_bundle_loads_and_matches_report() {
        let config = GeneratorConfig::tiny(11);
        let dir = tmpdir("loads");
        let report = generate_to_dir(&config, &dir).unwrap();
        let bundle = DatasetBundle::load(&dir).unwrap();

        assert_eq!(bundle.whois.asn_count(), report.asns);
        assert_eq!(bundle.whois.org_count(), report.whois_orgs);
        assert_eq!(bundle.pdb.org_count(), report.pdb_orgs);
        assert_eq!(bundle.pdb.net_count(), report.pdb_nets);
        assert_eq!(bundle.web.host_count(), report.web_hosts);
        assert_eq!(bundle.topology.node_count(), report.asns);
        assert_eq!(bundle.asrank.len(), report.asns);
        assert_eq!(bundle.config.as_ref(), Some(&config));
        let users: u64 = bundle.populations.values().map(|p| p.users).sum();
        assert_eq!(users, report.total_users);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streaming_is_deterministic() {
        let config = GeneratorConfig::tiny(5);
        let (a, b) = (tmpdir("det-a"), tmpdir("det-b"));
        let ra = generate_to_dir(&config, &a).unwrap();
        let rb = generate_to_dir(&config, &b).unwrap();
        assert_eq!(ra, rb);
        for name in [
            "as2org.txt",
            "peeringdb.json",
            "web.json",
            "as-rel.txt",
            "asrank.txt",
            "populations.psv",
            "truth.psv",
            "labels.psv",
            "hypergiants.psv",
            "config.json",
        ] {
            let fa = std::fs::read(a.join(name)).unwrap();
            let fb = std::fs::read(b.join(name)).unwrap();
            assert_eq!(fa, fb, "{name} diverged between identical runs");
        }
        let _ = std::fs::remove_dir_all(&a);
        let _ = std::fs::remove_dir_all(&b);
    }

    #[test]
    fn ground_truth_is_byte_identical_to_the_materialized_path() {
        let config = GeneratorConfig::tiny(23);
        let streamed = tmpdir("truth-s");
        let materialized = tmpdir("truth-m");
        generate_to_dir(&config, &streamed).unwrap();
        let world = SyntheticInternet::generate(&config);
        save(&world, &materialized).unwrap();
        // The truth pass shares the RNG stream with the materialized
        // path, so the oracle files (and the population table, which is
        // pure truth) must agree to the byte.
        for name in [
            "truth.psv",
            "labels.psv",
            "populations.psv",
            "hypergiants.psv",
        ] {
            let s = std::fs::read(streamed.join(name)).unwrap();
            let m = std::fs::read(materialized.join(name)).unwrap();
            assert_eq!(s, m, "{name} diverged between streaming and materialized");
        }
        let _ = std::fs::remove_dir_all(&streamed);
        let _ = std::fs::remove_dir_all(&materialized);
    }

    #[test]
    fn streamed_world_has_the_materialized_shape() {
        let config = GeneratorConfig::tiny(23);
        let dir = tmpdir("shape");
        let report = generate_to_dir(&config, &dir).unwrap();
        let world = SyntheticInternet::generate(&config);
        // Truth-pass structure is identical; emission counts must match
        // exactly (registration decisions are truth-pass state).
        assert_eq!(report.asns, world.truth.asn_count());
        assert_eq!(report.orgs, world.truth.org_count());
        assert_eq!(report.whois_orgs, world.whois.org_count());
        assert_eq!(report.pdb_nets, world.pdb.net_count());
        assert_eq!(report.pdb_orgs, world.pdb.org_count());
        assert_eq!(report.web_hosts, world.web.host_count());
        assert_eq!(report.total_users, world.total_users());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scripted_anecdotes_survive_streaming() {
        use borges_websim::{SimWebClient, WebClient};
        let dir = tmpdir("anecdotes");
        generate_to_dir(&GeneratorConfig::tiny(7), &dir).unwrap();
        let bundle = DatasetBundle::load(&dir).unwrap();
        // Fig. 3: WHOIS splits Level3/CenturyLink, PeeringDB merges them.
        let l3 = bundle.whois.org_of(Asn::new(3356)).unwrap();
        let ctl = bundle.whois.org_of(Asn::new(209)).unwrap();
        assert_ne!(l3.id, ctl.id);
        let l3p = bundle.pdb.org_of_asn(Asn::new(3356)).unwrap();
        let ctlp = bundle.pdb.org_of_asn(Asn::new(209)).unwrap();
        assert_eq!(l3p.id, ctlp.id);
        // Fig. 5b: the Clearwire chain still lands on www.t-mobile.com.
        let client = SimWebClient::browser(&bundle.web);
        let r = client
            .fetch(&"http://www.clearwire.com".parse().unwrap())
            .unwrap();
        assert_eq!(r.final_url.unwrap().host().as_str(), "www.t-mobile.com");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
