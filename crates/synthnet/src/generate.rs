//! The generator: ground truth first, imperfect views second.
//!
//! [`SyntheticInternet::generate`] builds the whole world in two passes:
//!
//! 1. **Truth pass** — creates [`TruthOrg`]s for every category (scripted
//!    paper anecdotes, government mega-orgs, conglomerates, transit
//!    providers, small multi-AS orgs, singletons), deciding for each ASN
//!    how it will *appear* in each dataset (WHOIS fragmentation, PeeringDB
//!    registration/consolidation, free-text behaviour, website behaviour).
//! 2. **Emission pass** — derives the WHOIS registry, the PeeringDB
//!    snapshot, the simulated web, the APNIC-like population table and the
//!    AS-Rank ordering from those plans.
//!
//! Everything is driven by one seeded RNG; the same
//! [`GeneratorConfig`] always yields the same world.

use crate::config::GeneratorConfig;
use crate::dist::{lognormal, sample_distinct, weighted_idx};
use crate::naming::{self, CountryInfo, Language, COUNTRIES};
use crate::orgmodel::{
    FaviconKind, GroundTruth, OrgKind, TextPlan, TruthOrg, TruthOrgId, TruthUnit, WebPlan,
};
use crate::scripted;
use crate::textgen::{self, SiblingMention};
use borges_peeringdb::{PdbNetwork, PdbOrganization, PdbSnapshot};
use borges_topology::AsGraph;
use borges_types::{Asn, CountryCode, PdbOrgId, WhoisOrgId};
use borges_websim::{RedirectKind, SimWeb, SiteNode};
use borges_whois::{AutNum, Rir, WhoisOrg, WhoisRegistry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// APNIC-style population record for one eyeball ASN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PopulationRecord {
    /// Estimated users behind the ASN.
    pub users: u64,
    /// The market they are in.
    pub country: CountryCode,
}

/// The generated world: ground truth plus every dataset the pipeline
/// consumes.
#[derive(Debug, Clone)]
pub struct SyntheticInternet {
    /// The configuration that produced this world.
    pub config: GeneratorConfig,
    /// The oracle.
    pub truth: GroundTruth,
    /// The WHOIS view (feeds `OID_W` and the AS2Org baseline).
    pub whois: WhoisRegistry,
    /// The PeeringDB view (feeds `OID_P`, notes/aka, websites).
    pub pdb: PdbSnapshot,
    /// The hosted web (feeds the scraper).
    pub web: SimWeb,
    /// The AS-relationship graph (provider/customer/peer links) the
    /// AS-Rank ordering is computed from.
    pub topology: AsGraph,
    /// APNIC-like per-ASN user estimates.
    pub populations: BTreeMap<Asn, PopulationRecord>,
    /// ASNs in AS-Rank order (index 0 = rank 1).
    pub asrank: Vec<Asn>,
    /// The §6.1 hypergiant roster: `(display name, headline ASN)`.
    pub hypergiants: Vec<(String, Asn)>,
    /// Oracle for the IE evaluation (Table 4): for each PeeringDB-registered
    /// ASN, the sibling ASNs genuinely embedded in its notes/aka text.
    pub text_labels: BTreeMap<Asn, Vec<Asn>>,
}

impl SyntheticInternet {
    /// Generates a world from `config`. Deterministic in `config`
    /// (including its seed).
    pub fn generate(config: &GeneratorConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut next_id = 0usize;
        let mut orgs = scripted::scripted_orgs(&mut next_id);
        let mut alloc = AsnAllocator::new(orgs.iter().flat_map(|o| o.units.iter().map(|u| u.asn)));

        gen_gov_mega(config, &mut rng, &mut alloc, &mut next_id, &mut orgs);
        gen_conglomerates(config, &mut rng, &mut alloc, &mut next_id, &mut orgs);
        gen_transit(config, &mut rng, &mut alloc, &mut next_id, &mut orgs);
        gen_small_multi(config, &mut rng, &mut alloc, &mut next_id, &mut orgs);
        gen_singletons(config, &mut rng, &mut alloc, &mut next_id, &mut orgs);

        distribute_remaining_population(config, &mut rng, &mut orgs);

        let truth = GroundTruth::new(orgs);
        let whois = emit_whois(&truth, &mut rng);
        let (pdb, text_labels) = emit_pdb(&truth, &mut rng);
        let web = emit_web(&truth);
        let populations = collect_populations(&truth);
        let topology = crate::topogen::emit_topology(&truth, &mut rng);
        let asrank = compute_asrank(&topology);
        let hypergiants = scripted::hypergiant_roster()
            .into_iter()
            .map(|(n, a)| (n.to_string(), a))
            .collect();

        SyntheticInternet {
            config: config.clone(),
            truth,
            whois,
            pdb,
            web,
            topology,
            populations,
            asrank,
            hypergiants,
            text_labels,
        }
    }

    /// Total users across the population table.
    pub fn total_users(&self) -> u64 {
        self.populations.values().map(|p| p.users).sum()
    }
}

// ---------------------------------------------------------------------
// Org sink: where the truth pass delivers organizations
// ---------------------------------------------------------------------

/// Receives [`TruthOrg`]s one at a time as the truth pass produces them.
///
/// [`SyntheticInternet::generate`] materializes them into a `Vec`; the
/// streaming path ([`crate::stream::generate_to_dir`]) writes each
/// organization's records straight to disk and drops it, so a
/// million-ASN world never exists in memory at once. Both paths drive
/// the *same* truth-pass code with the same RNG draws, so the ground
/// truth is identical regardless of the sink.
pub(crate) trait OrgSink {
    /// Accepts the next organization, in generation order.
    fn accept(&mut self, org: TruthOrg);
}

impl OrgSink for Vec<TruthOrg> {
    fn accept(&mut self, org: TruthOrg) {
        self.push(org);
    }
}

// ---------------------------------------------------------------------
// ASN allocation
// ---------------------------------------------------------------------

pub(crate) struct AsnAllocator {
    next: u32,
    used: BTreeSet<Asn>,
}

impl AsnAllocator {
    pub(crate) fn new(reserved: impl IntoIterator<Item = Asn>) -> Self {
        AsnAllocator {
            next: 100,
            used: reserved.into_iter().collect(),
        }
    }

    fn next(&mut self) -> Asn {
        loop {
            let candidate = Asn::new(self.next);
            self.next += 1;
            if candidate.is_routable() && !self.used.contains(&candidate) {
                self.used.insert(candidate);
                return candidate;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Truth-pass helpers
// ---------------------------------------------------------------------

fn language_of(country: usize) -> Language {
    COUNTRIES[country].language
}

fn blank_unit(asn: Asn, country: usize, legal_name: String) -> TruthUnit {
    TruthUnit {
        asn,
        country,
        legal_name,
        users: 0,
        whois_own_org: true,
        in_pdb: false,
        pdb_own_org: true,
        text: TextPlan::None,
        web: WebPlan::None,
    }
}

/// Government mega-orgs: hundreds of ASNs under one WHOIS org, invisible
/// in PeeringDB (the DNIC-ARIN shape, AS2Org's largest org).
pub(crate) fn gen_gov_mega<S: OrgSink>(
    config: &GeneratorConfig,
    rng: &mut StdRng,
    alloc: &mut AsnAllocator,
    next_id: &mut usize,
    sink: &mut S,
) {
    for i in 0..config.gov_mega_orgs {
        let n = (config.gov_mega_asns / (i + 1)).max(10);
        let units = (0..n)
            .map(|j| {
                let mut u = blank_unit(alloc.next(), 0, format!("GovNet Agency {i}-{j}"));
                u.whois_own_org = false; // everything under the single org
                u.in_pdb = rng.random_bool(0.01);
                u
            })
            .collect();
        sink.accept(TruthOrg {
            id: TruthOrgId(*next_id),
            brand: format!("govnet{i}"),
            display_name: format!("Government Networks Directorate {i}"),
            kind: OrgKind::GovMega,
            hq_country: 0,
            units,
        });
        *next_id += 1;
    }
}

/// Upstream/decoy ASNs for non-sibling numeric text. Mixes well-known
/// transit ASNs with random ones so that false-positive extractions do
/// not all point at the same handful of networks (which would chain
/// unrelated organizations into one giant wrong cluster — real-world FP
/// targets are diverse).
fn decoy_asns(rng: &mut StdRng) -> Vec<Asn> {
    const TRANSIT_POOL: &[u32] = &[
        174, 701, 1299, 2914, 3257, 3356, 3491, 5511, 6453, 6461, 6762, 6939, 7018, 9002, 12956,
    ];
    let n = rng.random_range(1..=3);
    (0..n)
        .map(|_| {
            if rng.random_bool(0.4) {
                Asn::new(TRANSIT_POOL[rng.random_range(0..TRANSIT_POOL.len())])
            } else {
                Asn::new(rng.random_range(1_000..400_000))
            }
        })
        .collect()
}

/// Ordinary non-sibling text behaviour shared by transit, small-multi and
/// singleton units: boilerplate or numeric decoys at the configured rates.
fn assign_basic_text(config: &GeneratorConfig, rng: &mut StdRng, unit: &mut TruthUnit) {
    if !unit.in_pdb || unit.text != TextPlan::None || !rng.random_bool(config.text_rate) {
        return;
    }
    let style = rng.random_range(0..1000);
    unit.text = if rng.random_bool(config.decoy_rate / config.text_rate) {
        TextPlan::Decoys {
            style,
            asns: decoy_asns(rng),
        }
    } else {
        TextPlan::Boilerplate { style }
    };
}

#[derive(Clone, Copy, PartialEq)]
enum DomainStyle {
    SharedBrand,
    FusedCountry,
    Distinct,
}

pub(crate) fn gen_conglomerates<S: OrgSink>(
    config: &GeneratorConfig,
    rng: &mut StdRng,
    alloc: &mut AsnAllocator,
    next_id: &mut usize,
    sink: &mut S,
) {
    let mut distinct_brand_counter = 400_000usize;
    for i in 0..config.conglomerates {
        let brand = naming::brand(10_000 + i);
        let size_class = weighted_idx(rng, &[0.45, 0.30, 0.18, 0.07]);
        let n_units = match size_class {
            0 => rng.random_range(2..=4),
            1 => rng.random_range(5..=8),
            2 => rng.random_range(9..=15),
            _ => rng.random_range(14..=22),
        };
        let countries = sample_distinct(rng, COUNTRIES.len(), n_units);
        let hq = countries[0];
        let style = match weighted_idx(rng, &[0.68, 0.22, 0.10]) {
            0 => DomainStyle::SharedBrand,
            1 => DomainStyle::FusedCountry,
            _ => DomainStyle::Distinct,
        };
        // Brands that diverge in naming usually diverge in iconography
        // too; the DE-CIX shape (distinct names, one favicon) is rare.
        let shared_favicon = match style {
            DomainStyle::Distinct => rng.random_bool(0.15),
            _ => rng.random_bool(0.90),
        };
        let consolidated_pdb = rng.random_bool(config.pdb_consolidation_rate);

        let mut units: Vec<TruthUnit> = Vec::with_capacity(n_units);
        for (j, &cj) in countries.iter().enumerate() {
            let asn = alloc.next();
            let legal = naming::unit_legal_name(&brand, &COUNTRIES[cj]);
            let mut u = blank_unit(asn, cj, legal);
            // Real conglomerates are flagship-dominated: Deutsche Telekom's
            // home network dwarfs its subsidiaries (Table 8). Some units
            // are transit/enterprise-only and carry no eyeballs at all.
            u.users = if j == 0 {
                (lognormal(rng, (2.2e6f64).ln(), 1.0) as u64).clamp(100_000, 22_000_000)
            } else if rng.random_bool(0.65) {
                (lognormal(rng, (6e4f64).ln(), 1.2) as u64).clamp(1_000, 3_000_000)
            } else {
                0
            };
            u.whois_own_org = j == 0 || rng.random_bool(config.whois_fragmentation_rate);
            u.in_pdb = if j == 0 {
                rng.random_bool(0.95)
            } else {
                rng.random_bool(config.pdb_rate_conglomerate)
            };
            u.pdb_own_org = !consolidated_pdb;

            // Website behaviour.
            let flagship_host = format!("www.{brand}.{}", COUNTRIES[hq].cctld);
            if j == 0 {
                // The flagship's site always exists (it is the redirect
                // anchor for acquired units).
                u.web = WebPlan::Own {
                    host: flagship_host,
                    canonical_path: None,
                    favicon: FaviconKind::Brand(brand.clone()),
                };
            } else if rng.random_bool(config.website_rate) {
                let recently_acquired = rng.random_bool(0.22);
                if rng.random_bool(config.dead_site_rate) {
                    u.web = WebPlan::Dead {
                        host: format!("www.{brand}{}.example", COUNTRIES[cj].token),
                    };
                } else if recently_acquired && rng.random_bool(config.redirect_rate) {
                    let old_brand = naming::brand(distinct_brand_counter);
                    distinct_brand_counter += 1;
                    let via = if rng.random_bool(config.chained_redirect_rate) {
                        Some(format!("legacy.{old_brand}.example"))
                    } else {
                        None
                    };
                    u.web = WebPlan::RedirectToHost {
                        reported_host: format!("www.{old_brand}.{}", COUNTRIES[cj].cctld),
                        target_host: flagship_host,
                        via,
                        js: rng.random_bool(config.js_redirect_rate),
                    };
                } else {
                    let (host, favicon_owner) = match style {
                        DomainStyle::SharedBrand => (
                            format!("www.{brand}.{}", COUNTRIES[cj].cctld),
                            brand.clone(),
                        ),
                        DomainStyle::FusedCountry => (
                            format!("www.{brand}{}.{}", COUNTRIES[cj].token, COUNTRIES[cj].cctld),
                            brand.clone(),
                        ),
                        DomainStyle::Distinct => {
                            let other = naming::brand(distinct_brand_counter);
                            distinct_brand_counter += 1;
                            (format!("www.{other}.{}", COUNTRIES[cj].cctld), other)
                        }
                    };
                    let favicon = if shared_favicon {
                        FaviconKind::Brand(brand.clone())
                    } else {
                        FaviconKind::UnitSpecific(favicon_owner)
                    };
                    u.web = WebPlan::Own {
                        host,
                        canonical_path: None,
                        favicon,
                    };
                }
            }

            units.push(u);
        }

        // Free-text behaviour (needs the full unit list for sibling
        // mentions, so it runs after unit creation).
        let sibling_pool: Vec<SiblingMention> = units
            .iter()
            .map(|u| SiblingMention {
                name: u.legal_name.clone(),
                asn: u.asn,
            })
            .collect();
        for j in 0..units.len() {
            if !units[j].in_pdb || !rng.random_bool(config.text_rate) {
                continue;
            }
            let lang = language_of(units[j].country);
            let style = rng.random_range(0..1000);
            units[j].text = if j == 0 && rng.random_bool(config.sibling_report_rate) {
                let cap = match weighted_idx(rng, &[0.50, 0.25, 0.15, 0.10]) {
                    0 => 1,
                    1 => 2,
                    2 => 3,
                    _ => 4,
                };
                let siblings: Vec<(String, Asn)> = sibling_pool
                    .iter()
                    .filter(|m| m.asn != units[j].asn)
                    .take(cap)
                    .map(|m| (m.name.clone(), m.asn))
                    .collect();
                if siblings.is_empty() {
                    TextPlan::Boilerplate { style }
                } else {
                    TextPlan::SiblingReport { style, siblings }
                }
            } else if j > 0 && rng.random_bool(0.04) {
                TextPlan::SiblingReport {
                    style,
                    siblings: vec![(units[0].legal_name.clone(), units[0].asn)],
                }
            } else if j > 0 && rng.random_bool(0.06) {
                TextPlan::AkaSibling {
                    style,
                    former: naming::capitalize(&naming::brand(distinct_brand_counter + j)),
                    asn: units[0].asn,
                }
            } else if rng.random_bool(config.decoy_rate / config.text_rate) {
                TextPlan::Decoys {
                    style,
                    asns: decoy_asns(rng),
                }
            } else {
                TextPlan::Boilerplate { style }
            };
            let _ = lang;
        }

        sink.accept(TruthOrg {
            id: TruthOrgId(*next_id),
            brand,
            display_name: naming::legal_name(&naming::brand(10_000 + i), i),
            kind: OrgKind::Conglomerate,
            hq_country: hq,
            units,
        });
        *next_id += 1;
    }
}

pub(crate) fn gen_transit<S: OrgSink>(
    config: &GeneratorConfig,
    rng: &mut StdRng,
    alloc: &mut AsnAllocator,
    next_id: &mut usize,
    sink: &mut S,
) {
    for i in 0..config.transit_orgs {
        let brand = naming::brand(40_000 + i);
        let size_class = weighted_idx(rng, &[0.40, 0.25, 0.20, 0.10, 0.05]);
        let n_units = match size_class {
            0 => 1,
            1 => 2,
            2 => rng.random_range(3..=4),
            3 => rng.random_range(5..=8),
            _ => rng.random_range(9..=14),
        };
        let hq = rng.random_range(0..COUNTRIES.len());
        let mut units = Vec::with_capacity(n_units);
        for j in 0..n_units {
            let asn = alloc.next();
            let country = if rng.random_bool(0.7) {
                hq
            } else {
                rng.random_range(0..COUNTRIES.len())
            };
            let mut u = blank_unit(
                asn,
                country,
                format!("{} Backbone {}", naming::capitalize(&brand), j + 1),
            );
            u.whois_own_org = j == 0 || rng.random_bool(0.55);
            u.in_pdb = rng.random_bool(config.pdb_rate_transit);
            u.pdb_own_org = rng.random_bool(0.4);
            if u.in_pdb && rng.random_bool(config.website_rate) {
                u.web = if rng.random_bool(config.dead_site_rate) {
                    WebPlan::Dead {
                        host: format!("old.{brand}.example"),
                    }
                } else {
                    WebPlan::Own {
                        host: format!("www.{brand}.net"),
                        canonical_path: None,
                        favicon: FaviconKind::Brand(brand.clone()),
                    }
                };
            }
            units.push(u);
        }
        // Flagship sibling report (transit operators document their
        // regional ASNs frequently).
        if units.len() > 1 && units[0].in_pdb && rng.random_bool(0.30) {
            let cap = rng.random_range(1..=3);
            let siblings: Vec<(String, Asn)> = units[1..]
                .iter()
                .take(cap)
                .map(|u| (u.legal_name.clone(), u.asn))
                .collect();
            units[0].text = TextPlan::SiblingReport {
                style: rng.random_range(0..1000),
                siblings,
            };
        }
        for u in &mut units {
            assign_basic_text(config, rng, u);
        }
        sink.accept(TruthOrg {
            id: TruthOrgId(*next_id),
            brand: brand.clone(),
            display_name: naming::legal_name(&brand, i + 1),
            kind: OrgKind::Transit,
            hq_country: hq,
            units,
        });
        *next_id += 1;
    }
}

pub(crate) fn gen_small_multi<S: OrgSink>(
    config: &GeneratorConfig,
    rng: &mut StdRng,
    alloc: &mut AsnAllocator,
    next_id: &mut usize,
    sink: &mut S,
) {
    for i in 0..config.small_multi_orgs {
        let brand = naming::brand(60_000 + i);
        let n_units = rng.random_range(2..=4);
        let country = rng.random_range(0..COUNTRIES.len());
        let eyeball = rng.random_bool(0.4);
        let mut units = Vec::with_capacity(n_units);
        for j in 0..n_units {
            let asn = alloc.next();
            let mut u = blank_unit(
                asn,
                country,
                format!("{} Net {}", naming::capitalize(&brand), j + 1),
            );
            if eyeball {
                u.users = (lognormal(rng, (8e4f64).ln(), 1.0) as u64).clamp(500, 2_000_000);
            }
            u.whois_own_org = j == 0 || rng.random_bool(0.15);
            u.in_pdb = rng.random_bool(config.pdb_rate_small_multi);
            u.pdb_own_org = rng.random_bool(0.5);
            if u.in_pdb && rng.random_bool(config.website_rate) {
                u.web = if rng.random_bool(config.dead_site_rate) {
                    WebPlan::Dead {
                        host: format!("www.{brand}.example"),
                    }
                } else {
                    WebPlan::Own {
                        host: format!("www.{brand}.{}", COUNTRIES[country].cctld),
                        canonical_path: None,
                        favicon: FaviconKind::Brand(brand.clone()),
                    }
                };
            }
            units.push(u);
        }
        if units.len() > 1 && units[0].in_pdb && rng.random_bool(0.20) {
            let siblings: Vec<(String, Asn)> = units[1..]
                .iter()
                .map(|u| (u.legal_name.clone(), u.asn))
                .collect();
            units[0].text = TextPlan::SiblingReport {
                style: rng.random_range(0..1000),
                siblings,
            };
        }
        for u in &mut units {
            assign_basic_text(config, rng, u);
        }
        sink.accept(TruthOrg {
            id: TruthOrgId(*next_id),
            brand: brand.clone(),
            display_name: naming::legal_name(&brand, i + 2),
            kind: OrgKind::SmallMulti,
            hq_country: country,
            units,
        });
        *next_id += 1;
    }
}

/// Social platforms small operators report instead of a real site
/// (Appendix D blocklist material).
const SOCIAL_PLATFORMS: &[&str] = &[
    "facebook.com",
    "github.com",
    "linkedin.com",
    "discord.com",
    "instagram.com",
    "www.peeringdb.com",
];

pub(crate) fn gen_singletons<S: OrgSink>(
    config: &GeneratorConfig,
    rng: &mut StdRng,
    alloc: &mut AsnAllocator,
    next_id: &mut usize,
    sink: &mut S,
) {
    // Deliberate brand-label collisions between unrelated orgs sharing a
    // framework favicon: the step-1 false-positive family of Table 5.
    let collision_brands: Vec<String> = (0..3).map(|k| naming::brand(900_000 + k)).collect();
    let mut collision_uses: BTreeMap<usize, usize> = BTreeMap::new();

    for i in 0..config.singleton_orgs {
        let brand = naming::brand(100_000 + i);
        let country = rng.random_range(0..COUNTRIES.len());
        let asn = alloc.next();
        let mut u = blank_unit(asn, country, naming::legal_name(&brand, i));
        if rng.random_bool(0.20) {
            // Placeholder weight; scaled to the global budget afterwards.
            u.users = 1 + (lognormal(rng, 0.0, 1.2) * 1e6) as u64;
        }
        u.in_pdb = rng.random_bool(config.pdb_rate_singleton);
        if u.in_pdb {
            if rng.random_bool(config.text_rate) {
                let style = rng.random_range(0..1000);
                u.text = if rng.random_bool(config.decoy_rate / config.text_rate) {
                    TextPlan::Decoys {
                        style,
                        asns: decoy_asns(rng),
                    }
                } else {
                    TextPlan::Boilerplate { style }
                };
            }
            if rng.random_bool(config.social_website_rate) {
                u.web = WebPlan::Social {
                    platform: SOCIAL_PLATFORMS[rng.random_range(0..SOCIAL_PLATFORMS.len())],
                };
            } else if rng.random_bool(config.website_rate) {
                if rng.random_bool(config.dead_site_rate) {
                    u.web = WebPlan::Dead {
                        host: format!("www.{brand}.{}", COUNTRIES[country].cctld),
                    };
                } else {
                    // A small fraction join a brand-collision pair.
                    let collide = i < 6;
                    let (host, favicon) = if collide {
                        let k = i / 2;
                        let n = collision_uses.entry(k).or_insert(0);
                        let tld = if *n == 0 { "com.br" } else { "net" };
                        *n += 1;
                        (
                            format!("www.{}.{tld}", collision_brands[k]),
                            FaviconKind::Framework("bootstrap"),
                        )
                    } else if rng.random_bool(config.framework_favicon_rate) {
                        let fw = if COUNTRIES[country].code == "BR" {
                            "ixc soft"
                        } else {
                            ["bootstrap", "wordpress", "godaddy", "wix"]
                                [rng.random_range(0..4usize)]
                        };
                        (
                            format!("www.{brand}.{}", COUNTRIES[country].cctld),
                            FaviconKind::Framework(fw),
                        )
                    } else {
                        (
                            format!("www.{brand}.{}", COUNTRIES[country].cctld),
                            FaviconKind::Brand(brand.clone()),
                        )
                    };
                    u.web = WebPlan::Own {
                        host,
                        canonical_path: None,
                        favicon,
                    };
                }
            }
        }
        sink.accept(TruthOrg {
            id: TruthOrgId(*next_id),
            brand: brand.clone(),
            display_name: naming::legal_name(&brand, i),
            kind: OrgKind::Singleton,
            hq_country: country,
            units: vec![u],
        });
        *next_id += 1;
    }
}

/// Scales the placeholder singleton populations so the world total matches
/// `config.total_users` without disturbing the scripted/conglomerate
/// numbers.
fn distribute_remaining_population(
    config: &GeneratorConfig,
    _rng: &mut StdRng,
    orgs: &mut [TruthOrg],
) {
    let fixed: u64 = orgs
        .iter()
        .filter(|o| o.kind != OrgKind::Singleton)
        .map(TruthOrg::total_users)
        .sum();
    let placeholder: u64 = orgs
        .iter()
        .filter(|o| o.kind == OrgKind::Singleton)
        .map(TruthOrg::total_users)
        .sum();
    let Some(scale) = singleton_scale(config.total_users, fixed, placeholder) else {
        return;
    };
    for org in orgs.iter_mut().filter(|o| o.kind == OrgKind::Singleton) {
        for unit in &mut org.units {
            if unit.users > 0 {
                unit.users = scale_users(unit.users, scale);
            }
        }
    }
}

/// The singleton population scale factor: remaining budget divided by
/// the placeholder weight sum (`None` when there are no placeholders).
/// Shared with the streaming path so both scale identically.
pub(crate) fn singleton_scale(total_users: u64, fixed: u64, placeholder: u64) -> Option<f64> {
    if placeholder == 0 {
        return None;
    }
    Some(total_users.saturating_sub(fixed) as f64 / placeholder as f64)
}

/// Applies the singleton scale to one placeholder weight (floor, min 1).
pub(crate) fn scale_users(users: u64, scale: f64) -> u64 {
    ((users as f64 * scale) as u64).max(1)
}

// ---------------------------------------------------------------------
// Emission pass
// ---------------------------------------------------------------------

fn rir_of(country: &CountryInfo) -> Rir {
    match country.code {
        "US" | "CA" | "PR" => Rir::Arin,
        "DE" | "GB" | "FR" | "ES" | "IT" | "PL" | "NL" | "SE" | "NO" | "AT" | "CH" | "SK"
        | "HR" | "CZ" | "HU" | "RO" | "PT" | "GR" | "TR" => Rir::RipeNcc,
        "ZA" | "NG" | "KE" | "EG" => Rir::Afrinic,
        "BR" | "AR" | "CL" | "PE" | "CO" | "MX" | "DO" | "BO" | "PY" | "UY" | "EC" | "VE"
        | "GT" | "SV" | "HN" | "NI" | "PA" | "TT" | "JM" | "HT" => Rir::Lacnic,
        _ => Rir::Apnic,
    }
}

/// Per-organization WHOIS record emission.
///
/// Carries the handle serial counter across organizations so that both
/// the materialized path ([`emit_whois`]) and the streaming path can
/// produce records one organization at a time with identical draws.
pub(crate) struct WhoisEmitter {
    serial: usize,
}

impl WhoisEmitter {
    pub(crate) fn new() -> Self {
        WhoisEmitter { serial: 1 }
    }

    /// Appends `org`'s WHOIS org records and aut-num records to the
    /// output vectors (two RNG draws per unit, for the `changed` date).
    pub(crate) fn org_records(
        &mut self,
        org: &TruthOrg,
        rng: &mut StdRng,
        orgs: &mut Vec<WhoisOrg>,
        auts: &mut Vec<AutNum>,
    ) {
        let hq = &COUNTRIES[org.hq_country];
        let parent_rir = rir_of(hq);
        let parent_handle = WhoisOrgId::new(naming::whois_handle(
            &org.brand,
            self.serial,
            parent_rir.as_str(),
        ));
        self.serial += 1;
        let mut parent_emitted = false;

        for unit in &org.units {
            let cinfo = &COUNTRIES[unit.country];
            let rir = rir_of(cinfo);
            let changed = 20_050_101u32 / 10_000 * 10_000
                + rng.random_range(0..20u32) * 10_000
                + rng.random_range(101..1231u32);
            let handle = if unit.whois_own_org {
                let h = WhoisOrgId::new(naming::whois_handle(
                    &format!("{}{}", org.brand, cinfo.token),
                    self.serial,
                    rir.as_str(),
                ));
                self.serial += 1;
                orgs.push(WhoisOrg {
                    id: h.clone(),
                    name: unit.legal_name.as_str().into(),
                    country: cinfo.country_code(),
                    source: rir,
                    changed,
                });
                h
            } else {
                if !parent_emitted {
                    orgs.push(WhoisOrg {
                        id: parent_handle.clone(),
                        name: org.display_name.as_str().into(),
                        country: hq.country_code(),
                        source: parent_rir,
                        changed,
                    });
                    parent_emitted = true;
                }
                parent_handle.clone()
            };
            let aut_name: String = unit
                .legal_name
                .chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                .to_uppercase();
            auts.push(AutNum {
                asn: unit.asn,
                name: aut_name.chars().take(16).collect(),
                org: handle,
                source: rir,
                changed,
            });
        }
    }
}

pub(crate) fn emit_whois(truth: &GroundTruth, rng: &mut StdRng) -> WhoisRegistry {
    let mut orgs: Vec<WhoisOrg> = Vec::new();
    let mut auts: Vec<AutNum> = Vec::new();
    let mut emitter = WhoisEmitter::new();
    for org in truth.orgs() {
        emitter.org_records(org, rng, &mut orgs, &mut auts);
    }

    WhoisRegistry::builder()
        .extend(orgs, auts)
        .build()
        .expect("generator emits a consistent WHOIS view")
}

/// Per-organization PeeringDB record emission.
///
/// Carries the org/net primary-key counters across organizations, like
/// [`WhoisEmitter`] does for the handle serial.
pub(crate) struct PdbEmitter {
    org_id: u64,
    net_id: u64,
}

impl PdbEmitter {
    pub(crate) fn new() -> Self {
        PdbEmitter {
            org_id: 1,
            net_id: 1,
        }
    }

    /// Appends `org`'s PeeringDB organizations and networks to the
    /// output vectors, recording embedded sibling labels into `labels`.
    pub(crate) fn org_records(
        &mut self,
        org: &TruthOrg,
        rng: &mut StdRng,
        orgs: &mut Vec<PdbOrganization>,
        nets: &mut Vec<PdbNetwork>,
        labels: &mut BTreeMap<Asn, Vec<Asn>>,
    ) {
        let registered: Vec<&TruthUnit> = org.units.iter().filter(|u| u.in_pdb).collect();
        if registered.is_empty() {
            return;
        }
        // One consolidated org for the `pdb_own_org == false` members.
        let consolidated: Vec<&&TruthUnit> = registered.iter().filter(|u| !u.pdb_own_org).collect();
        let consolidated_org = if consolidated.is_empty() {
            None
        } else {
            let id = PdbOrgId::new(self.org_id);
            self.org_id += 1;
            orgs.push(PdbOrganization {
                id,
                name: org.display_name.clone(),
                website: String::new(),
                country: COUNTRIES[org.hq_country].code.to_string(),
            });
            Some(id)
        };

        for unit in registered {
            let oid = if unit.pdb_own_org {
                let id = PdbOrgId::new(self.org_id);
                self.org_id += 1;
                orgs.push(PdbOrganization {
                    id,
                    name: unit.legal_name.clone(),
                    website: String::new(),
                    country: COUNTRIES[unit.country].code.to_string(),
                });
                id
            } else {
                consolidated_org.expect("consolidated org exists")
            };

            let lang = language_of(unit.country);
            let (notes, aka, embedded) = render_text(&unit.text, &org.brand, lang);
            if !embedded.is_empty() {
                labels.insert(unit.asn, embedded);
            }
            let website = render_website(&unit.web, &org.brand, rng);
            nets.push(PdbNetwork {
                id: self.net_id,
                org_id: oid,
                asn: unit.asn,
                name: unit.legal_name.clone(),
                aka,
                notes,
                website,
            });
            self.net_id += 1;
        }
    }
}

pub(crate) fn emit_pdb(
    truth: &GroundTruth,
    rng: &mut StdRng,
) -> (PdbSnapshot, BTreeMap<Asn, Vec<Asn>>) {
    let mut orgs: Vec<PdbOrganization> = Vec::new();
    let mut nets: Vec<PdbNetwork> = Vec::new();
    let mut labels: BTreeMap<Asn, Vec<Asn>> = BTreeMap::new();
    let mut emitter = PdbEmitter::new();
    for org in truth.orgs() {
        emitter.org_records(org, rng, &mut orgs, &mut nets, &mut labels);
    }

    let snapshot = PdbSnapshot::builder()
        .extend(orgs, nets)
        .build()
        .expect("generator emits a consistent PeeringDB view");
    (snapshot, labels)
}

/// Renders a [`TextPlan`] into `(notes, aka, embedded sibling ASNs)`.
fn render_text(plan: &TextPlan, brand: &str, lang: Language) -> (String, String, Vec<Asn>) {
    match plan {
        TextPlan::None => (String::new(), String::new(), Vec::new()),
        TextPlan::Boilerplate { style } => (
            textgen::boilerplate_notes(lang, brand, *style),
            String::new(),
            Vec::new(),
        ),
        TextPlan::Decoys { style, asns } => (
            textgen::decoy_notes(lang, brand, asns, *style),
            String::new(),
            Vec::new(),
        ),
        TextPlan::SiblingReport { style, siblings } => {
            let mentions: Vec<SiblingMention> = siblings
                .iter()
                .map(|(name, asn)| SiblingMention {
                    name: name.clone(),
                    asn: *asn,
                })
                .collect();
            (
                textgen::sibling_notes(lang, brand, &mentions, *style),
                String::new(),
                siblings.iter().map(|(_, a)| *a).collect(),
            )
        }
        TextPlan::AkaSibling { style, former, asn } => (
            textgen::boilerplate_notes(lang, brand, *style),
            textgen::sibling_aka(former, *asn, *style),
            vec![*asn],
        ),
    }
}

/// Renders a [`WebPlan`] into the raw string an operator would type into
/// the PeeringDB `website` field.
fn render_website(plan: &WebPlan, brand: &str, rng: &mut StdRng) -> String {
    let decorate = |host: &str, rng: &mut StdRng| match rng.random_range(0..4) {
        0 => format!("https://{host}/"),
        1 => format!("https://{host}"),
        2 => format!("http://{host}"),
        _ => host.to_string(),
    };
    match plan {
        WebPlan::None => String::new(),
        WebPlan::Own { host, .. } => decorate(host, rng),
        WebPlan::RedirectToHost { reported_host, .. } => decorate(reported_host, rng),
        WebPlan::Dead { host } => decorate(host, rng),
        WebPlan::Social { platform } => {
            if rng.random_bool(0.5) {
                format!("https://{platform}/")
            } else {
                format!("https://{platform}/{brand}")
            }
        }
    }
}

/// One deferred second-pass web node: a redirect chain or a dead host,
/// kept in arrival order until every `Own` page has been emitted.
enum DeferredWeb {
    Redirect {
        reported_host: String,
        target_host: String,
        via: Option<String>,
        js: bool,
    },
    Dead(String),
}

/// Per-organization web emission.
///
/// The materialized [`emit_web`] runs three *global* passes over the
/// world (own pages, then redirects/dead hosts, then orphan redirect
/// targets) so that redirect targets always resolve and a host that is
/// both a redirect source and a target keeps its redirect. To emit the
/// same web one organization at a time, this emitter streams `Own`
/// pages immediately and defers the other two passes into bounded
/// buffers (a few fields per redirect/dead plan — not whole
/// organizations) that [`WebEmitter::seal`] replays at the end. The
/// first-writer-wins dedup order is exactly that of the global passes.
pub(crate) struct WebEmitter {
    registered: BTreeSet<String>,
    deferred: Vec<DeferredWeb>,
    /// `(target_host, favicon)` for the orphan-target pass.
    orphans: Vec<(String, Option<borges_types::FaviconHash>)>,
}

impl WebEmitter {
    /// Creates the emitter and emits the always-present social-platform
    /// pages through `emit`.
    pub(crate) fn new(emit: &mut impl FnMut(&str, SiteNode)) -> Self {
        let mut registered: BTreeSet<String> = BTreeSet::new();
        for platform in SOCIAL_PLATFORMS {
            emit(
                platform,
                SiteNode::page(
                    platform,
                    Some(FaviconKind::Brand((*platform).to_string()).hash().unwrap()),
                ),
            );
            registered.insert((*platform).to_string());
        }
        WebEmitter {
            registered,
            deferred: Vec::new(),
            orphans: Vec::new(),
        }
    }

    /// Emits `org`'s own pages and buffers its redirect/dead plans.
    pub(crate) fn accept(&mut self, org: &TruthOrg, emit: &mut impl FnMut(&str, SiteNode)) {
        for unit in &org.units {
            match &unit.web {
                WebPlan::Own {
                    host,
                    canonical_path,
                    favicon,
                } => {
                    if self.registered.insert(host.clone()) {
                        let canonical = match canonical_path {
                            Some(path) => format!("https://{host}{path}"),
                            None => format!("https://{host}/"),
                        };
                        emit(
                            host,
                            SiteNode::Page {
                                canonical: canonical.parse().expect("valid canonical url"),
                                favicon: favicon.hash(),
                            },
                        );
                    }
                }
                WebPlan::RedirectToHost {
                    reported_host,
                    target_host,
                    via,
                    js,
                } => {
                    self.deferred.push(DeferredWeb::Redirect {
                        reported_host: reported_host.clone(),
                        target_host: target_host.clone(),
                        via: via.clone(),
                        js: *js,
                    });
                    self.orphans.push((
                        target_host.clone(),
                        FaviconKind::Brand(org.brand.clone()).hash(),
                    ));
                }
                WebPlan::Dead { host } => {
                    self.deferred.push(DeferredWeb::Dead(host.clone()));
                }
                WebPlan::None | WebPlan::Social { .. } => {}
            }
        }
    }

    /// Replays the deferred redirect/dead pass, then the orphan-target
    /// pass. Call once, after every organization has been accepted.
    pub(crate) fn seal(self, emit: &mut impl FnMut(&str, SiteNode)) {
        let mut registered = self.registered;

        // Second pass: redirects and dead hosts.
        for plan in &self.deferred {
            match plan {
                DeferredWeb::Redirect {
                    reported_host,
                    target_host,
                    via,
                    js,
                } => {
                    let final_kind = if *js {
                        RedirectKind::JavaScript
                    } else {
                        RedirectKind::Http
                    };
                    match via {
                        Some(mid) => {
                            if registered.insert(reported_host.clone()) {
                                emit(
                                    reported_host,
                                    SiteNode::Redirect {
                                        to: format!("https://{mid}/")
                                            .parse()
                                            .expect("valid redirect target"),
                                        kind: RedirectKind::Http,
                                    },
                                );
                            }
                            if registered.insert(mid.clone()) {
                                emit(
                                    mid,
                                    SiteNode::Redirect {
                                        to: format!("https://{target_host}/")
                                            .parse()
                                            .expect("valid redirect target"),
                                        kind: final_kind,
                                    },
                                );
                            }
                        }
                        None => {
                            if registered.insert(reported_host.clone()) {
                                emit(
                                    reported_host,
                                    SiteNode::Redirect {
                                        to: format!("https://{target_host}/")
                                            .parse()
                                            .expect("valid redirect target"),
                                        kind: final_kind,
                                    },
                                );
                            }
                        }
                    }
                }
                DeferredWeb::Dead(host) => {
                    if registered.insert(host.clone()) {
                        emit(host, SiteNode::Down);
                    }
                }
            }
        }

        // Third pass: redirect *targets* that nothing serves and nothing
        // redirects — e.g. the post-merger brand `www.edg.io`, which
        // exists on the web but not yet in any PeeringDB record. They
        // must serve a page for chains to land. This runs after the
        // redirect pass so that a host that is both a target (Sprint →
        // Cogent) and a source (Cogent → a later acquirer) keeps its
        // redirect.
        for (target_host, favicon) in &self.orphans {
            if registered.insert(target_host.clone()) {
                emit(target_host, SiteNode::page(target_host, *favicon));
            }
        }
    }
}

pub(crate) fn emit_web(truth: &GroundTruth) -> SimWeb {
    let mut nodes: Vec<(String, SiteNode)> = Vec::new();
    let mut push = |host: &str, node: SiteNode| nodes.push((host.to_string(), node));
    let mut emitter = WebEmitter::new(&mut push);
    for org in truth.orgs() {
        emitter.accept(org, &mut push);
    }
    emitter.seal(&mut push);

    let mut builder = SimWeb::builder();
    for (host, node) in nodes {
        builder = builder.node(host.parse().expect("valid host literal"), node);
    }
    builder.build()
}

pub(crate) fn collect_populations(truth: &GroundTruth) -> BTreeMap<Asn, PopulationRecord> {
    let mut map = BTreeMap::new();
    for org in truth.orgs() {
        for unit in &org.units {
            if unit.users > 0 {
                map.insert(
                    unit.asn,
                    PopulationRecord {
                        users: unit.users,
                        country: COUNTRIES[unit.country].country_code(),
                    },
                );
            }
        }
    }
    map
}

pub(crate) fn compute_asrank(topology: &AsGraph) -> Vec<Asn> {
    borges_topology::rank(topology)
        .into_iter()
        .map(|entry| entry.asn)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SyntheticInternet {
        SyntheticInternet::generate(&GeneratorConfig::tiny(7))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.whois.asn_count(), b.whois.asn_count());
        assert_eq!(a.pdb.net_count(), b.pdb.net_count());
        assert_eq!(a.pdb.to_json(), b.pdb.to_json());
        assert_eq!(a.asrank, b.asrank);
        assert_eq!(a.total_users(), b.total_users());
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticInternet::generate(&GeneratorConfig::tiny(1));
        let b = SyntheticInternet::generate(&GeneratorConfig::tiny(2));
        assert_ne!(a.pdb.to_json(), b.pdb.to_json());
    }

    #[test]
    fn every_truth_asn_is_in_whois() {
        let world = tiny();
        for (asn, _) in world.truth.assignments() {
            assert!(
                world.whois.org_of(asn).is_some(),
                "{asn} missing from WHOIS (delegation is compulsory)"
            );
        }
        assert_eq!(world.whois.asn_count(), world.truth.asn_count());
    }

    #[test]
    fn pdb_is_a_subset_of_whois() {
        let world = tiny();
        for net in world.pdb.nets() {
            assert!(world.whois.org_of(net.asn).is_some());
        }
        assert!(world.pdb.net_count() < world.whois.asn_count());
    }

    #[test]
    fn scripted_cases_survive_generation() {
        let world = tiny();
        // Lumen: split in WHOIS…
        let l3 = world.whois.org_of(Asn::new(3356)).unwrap();
        let ctl = world.whois.org_of(Asn::new(209)).unwrap();
        assert_ne!(l3.id, ctl.id, "Fig. 3: WHOIS must split Level3/CenturyLink");
        // …merged in PeeringDB.
        let l3p = world.pdb.org_of_asn(Asn::new(3356)).unwrap();
        let ctlp = world.pdb.org_of_asn(Asn::new(209)).unwrap();
        assert_eq!(l3p.id, ctlp.id, "Fig. 3: PeeringDB must merge them");
    }

    #[test]
    fn clearwire_chain_resolves_to_tmobile() {
        use borges_websim::{SimWebClient, WebClient};
        let world = tiny();
        let client = SimWebClient::browser(&world.web);
        let r = client
            .fetch(&"http://www.clearwire.com".parse().unwrap())
            .unwrap();
        assert!(r.hops() >= 2, "must pass through the intermediate hop");
        assert_eq!(
            r.final_url.unwrap().host().as_str(),
            "www.t-mobile.com",
            "Fig. 5b chain broken"
        );
    }

    #[test]
    fn edgio_pair_shares_a_final_url() {
        use borges_websim::{SimWebClient, WebClient};
        let world = tiny();
        let client = SimWebClient::browser(&world.web);
        let limelight = client
            .fetch(&"http://www.limelight.com".parse().unwrap())
            .unwrap();
        let edgecast = client
            .fetch(&"http://www.edgecast.com".parse().unwrap())
            .unwrap();
        assert_eq!(limelight.final_url, edgecast.final_url);
        assert_eq!(limelight.final_url.unwrap().host().as_str(), "www.edg.io");
    }

    #[test]
    fn text_labels_point_at_extractable_text() {
        let world = tiny();
        assert!(!world.text_labels.is_empty());
        for (asn, siblings) in &world.text_labels {
            let net = world.pdb.net_by_asn(*asn).expect("labeled nets are in PDB");
            assert!(net.has_numeric_text(), "labeled {asn} has no digits");
            assert!(!siblings.is_empty());
        }
    }

    #[test]
    fn population_totals_match_config() {
        let world = tiny();
        let total = world.total_users();
        let target = world.config.total_users;
        let ratio = total as f64 / target as f64;
        assert!(
            (0.95..1.05).contains(&ratio),
            "population {total} vs target {target}"
        );
    }

    #[test]
    fn asrank_covers_every_asn_exactly_once() {
        let world = tiny();
        assert_eq!(world.asrank.len(), world.truth.asn_count());
        let set: BTreeSet<_> = world.asrank.iter().collect();
        assert_eq!(set.len(), world.asrank.len());
    }

    #[test]
    fn asrank_puts_infrastructure_first() {
        let world = tiny();
        // Among the top 20 ranked ASNs, most should belong to multi-ASN
        // organizations (transit/hypergiant/conglomerate).
        let multi = world
            .asrank
            .iter()
            .take(20)
            .filter(|a| {
                let org = world.truth.org(world.truth.org_of(**a).unwrap());
                org.units.len() > 1
            })
            .count();
        assert!(multi >= 14, "only {multi}/20 top-ranked ASNs are multi-ASN");
    }

    #[test]
    fn world_scale_matches_config_ballpark() {
        let world = tiny();
        let expected = world.config.approx_asn_count();
        let actual = world.truth.asn_count();
        let ratio = actual as f64 / expected as f64;
        assert!(
            (0.6..1.4).contains(&ratio),
            "{actual} vs expected {expected}"
        );
    }

    #[test]
    fn social_platform_pages_exist() {
        let world = tiny();
        for platform in SOCIAL_PLATFORMS {
            let host: borges_types::Host = platform.parse().unwrap();
            assert!(world.web.lookup(&host).is_some(), "{platform} missing");
        }
    }
}
