//! Small, controlled snapshot churn for incremental-remap testing.
//!
//! [`SyntheticInternet::evolve`] models *corporate* events but re-emits
//! every dataset view with a fresh RNG, so even a single acquisition
//! re-randomizes dates and decorations across the whole world — useless
//! for measuring how an incremental pipeline behaves when only a small
//! fraction of records move. [`churn`] is the complementary tool: it
//! mutates a chosen percentage of records **in place** and leaves every
//! other byte of the emitted views untouched, so a T → T+1 pair with
//! 1% churn really is 99% identical at the record level.
//!
//! Selection and mutation are pure functions of `(seed, asn)`: the same
//! call always produces the same successor world, which is what lets the
//! remap benchmark and the equivalence tests share fixtures.

use crate::SyntheticInternet;
use borges_peeringdb::PdbSnapshot;
use borges_types::{Asn, WhoisOrgId};
use borges_whois::{AutNum, WhoisOrg, WhoisRegistry};

/// What a [`churn`] call did, per mutation kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChurnReport {
    /// ASNs selected for mutation.
    pub selected: usize,
    /// WHOIS aut-num records with a bumped `changed` date (metadata-only
    /// churn: the record fingerprint moves, the org partition does not).
    pub auts_touched: usize,
    /// PeeringDB networks with text appended to `notes` (dirties the
    /// NER input for that subject).
    pub notes_appended: usize,
    /// WHOIS aut-nums moved to a different organization (real partition
    /// churn in `OID_W`).
    pub auts_reassigned: usize,
    /// WHOIS organizations renamed (record churn that leaves the
    /// partition intact).
    pub orgs_renamed: usize,
    /// PeeringDB networks removed outright.
    pub nets_removed: usize,
}

/// FNV-1a over `(seed, asn)` — a stable, platform-independent selector.
fn select_hash(seed: u64, asn: Asn) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in seed.to_le_bytes().iter().chain(&asn.value().to_le_bytes()) {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Produces the successor snapshot with roughly `percent` of ASNs
/// mutated, deterministically in `seed`. Mutation kinds are cycled by
/// the selection hash so every call mixes metadata-only churn, NER text
/// churn, organization reassignment, organization renames, and record
/// removal. `percent` is clamped to `[0, 100]`; 0 returns a record-level
/// identical world, 100 touches every ASN.
pub fn churn(
    world: &SyntheticInternet,
    percent: f64,
    seed: u64,
) -> (SyntheticInternet, ChurnReport) {
    let threshold = (percent.clamp(0.0, 100.0) * 100.0) as u64;
    let mut report = ChurnReport::default();

    let mut orgs: Vec<WhoisOrg> = world.whois.orgs().cloned().collect();
    orgs.sort_by(|a, b| a.id.cmp(&b.id));
    let org_ids: Vec<WhoisOrgId> = orgs.iter().map(|o| o.id.clone()).collect();
    let mut auts: Vec<AutNum> = world.whois.aut_nums().cloned().collect();
    auts.sort_by_key(|a| a.asn);
    let mut nets: Vec<borges_peeringdb::PdbNetwork> = world.pdb.nets().cloned().collect();
    nets.sort_by_key(|n| n.id);
    let mut removed_nets: Vec<u64> = Vec::new();
    let mut renamed_orgs: Vec<WhoisOrgId> = Vec::new();

    for aut in &mut auts {
        let h = select_hash(seed, aut.asn);
        if h % 10_000 >= threshold {
            continue;
        }
        report.selected += 1;
        let net_idx = nets.iter().position(|n| n.asn == aut.asn);
        match (h >> 32) % 5 {
            1 if net_idx.is_some() => {
                let net = &mut nets[net_idx.expect("guarded")];
                net.notes.push_str(" Churn revision.");
                report.notes_appended += 1;
            }
            2 if org_ids.len() > 1 => {
                let at = org_ids
                    .binary_search(&aut.org)
                    .unwrap_or_else(|insert_at| insert_at % org_ids.len());
                aut.org = org_ids[(at + 1) % org_ids.len()].clone();
                report.auts_reassigned += 1;
            }
            3 => {
                if !renamed_orgs.contains(&aut.org) {
                    renamed_orgs.push(aut.org.clone());
                }
            }
            4 if net_idx.is_some() => {
                removed_nets.push(nets[net_idx.expect("guarded")].id);
                report.nets_removed += 1;
            }
            _ => {
                aut.changed = aut.changed.wrapping_add(1);
                report.auts_touched += 1;
            }
        }
    }

    for org in &mut orgs {
        if renamed_orgs.contains(&org.id) {
            org.name = borges_types::OrgName::new(format!("{} Holdings", org.name.as_str()));
            report.orgs_renamed += 1;
        }
    }
    nets.retain(|n| !removed_nets.contains(&n.id));

    let whois = WhoisRegistry::builder()
        .extend(orgs, auts)
        .build()
        .expect("churn preserves referential integrity");
    let pdb = PdbSnapshot::builder()
        .extend(world.pdb.orgs().cloned(), nets)
        .build()
        .expect("churn preserves referential integrity");

    (
        SyntheticInternet {
            config: world.config.clone(),
            truth: world.truth.clone(),
            whois,
            pdb,
            web: world.web.clone(),
            topology: world.topology.clone(),
            populations: world.populations.clone(),
            asrank: world.asrank.clone(),
            hypergiants: world.hypergiants.clone(),
            text_labels: world.text_labels.clone(),
        },
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GeneratorConfig;

    fn world() -> SyntheticInternet {
        SyntheticInternet::generate(&GeneratorConfig::tiny(17))
    }

    fn whois_text(w: &WhoisRegistry) -> String {
        let orgs: Vec<_> = w.orgs().collect();
        let auts: Vec<_> = w.aut_nums().collect();
        format!("{orgs:?}\n{auts:?}")
    }

    #[test]
    fn zero_churn_is_a_record_level_identity() {
        let before = world();
        let (after, report) = churn(&before, 0.0, 9);
        assert_eq!(report, ChurnReport::default());
        assert_eq!(whois_text(&after.whois), whois_text(&before.whois));
        assert_eq!(after.pdb.to_json(), before.pdb.to_json());
    }

    #[test]
    fn churn_is_deterministic_in_seed() {
        let before = world();
        let (a, ra) = churn(&before, 10.0, 9);
        let (b, rb) = churn(&before, 10.0, 9);
        assert_eq!(ra, rb);
        assert_eq!(whois_text(&a.whois), whois_text(&b.whois));
        assert_eq!(a.pdb.to_json(), b.pdb.to_json());
        // A different seed picks a different mutation set.
        let (_, rc) = churn(&before, 10.0, 10);
        assert_ne!(ra, rc);
    }

    #[test]
    fn full_churn_touches_every_asn_and_mixes_kinds() {
        let before = world();
        let (after, report) = churn(&before, 100.0, 9);
        assert_eq!(report.selected, before.whois.asn_count());
        assert!(report.auts_touched > 0, "{report:?}");
        assert!(report.notes_appended > 0, "{report:?}");
        assert!(report.auts_reassigned > 0, "{report:?}");
        assert!(report.orgs_renamed > 0, "{report:?}");
        assert!(report.nets_removed > 0, "{report:?}");
        assert_eq!(
            after.pdb.net_count(),
            before.pdb.net_count() - report.nets_removed
        );
        // The ASN universe is preserved: churn mutates records, it does
        // not deallocate ASNs from WHOIS.
        assert_eq!(after.whois.asn_count(), before.whois.asn_count());
    }

    #[test]
    fn small_churn_selects_roughly_the_requested_fraction() {
        let before = world();
        let total = before.whois.asn_count();
        let (_, report) = churn(&before, 1.0, 9);
        assert!(report.selected > 0, "1% of {total} must select something");
        assert!(
            report.selected * 20 < total,
            "1% churn selected {} of {total}",
            report.selected
        );
    }
}
