//! Topology emission: an AS-relationship graph consistent with the
//! organizational ground truth.
//!
//! The generated graph follows the Internet's well-known hierarchy:
//!
//! * **tier 1** — the largest transit organizations' flagships, peering
//!   in a clique and selling transit to everyone below;
//! * **tier 2 / regional** — smaller transit orgs buying from tier 1 and
//!   serving the long tail;
//! * **conglomerates** — the flagship buys transit upstream and provides
//!   for its own subsidiaries (intra-organization hierarchy);
//! * **hypergiants** — peer broadly (they are content, not transit);
//! * **stubs** — everyone else buys from 1–3 providers.
//!
//! AS-Rank (customer-cone size, `borges_topology::rank`) computed over
//! this graph is what §6.1's Figure 8 sorts by: organizations whose
//! flagships rank highest are exactly the multi-ASN transit orgs whose
//! consolidation Borges measures.

use crate::dist::weighted_idx;
use crate::orgmodel::{GroundTruth, OrgKind};
use borges_topology::{AsGraph, AsGraphBuilder};
use borges_types::Asn;
use rand::rngs::StdRng;
use rand::Rng;

/// The per-organization summary topology emission actually needs: the
/// category and the unit ASNs in declaration order (the first is the
/// flagship). The streaming generator buffers one of these per org —
/// a few bytes per ASN — instead of whole [`crate::orgmodel::TruthOrg`]s.
pub(crate) struct OrgTopo {
    pub(crate) kind: OrgKind,
    pub(crate) asns: Vec<Asn>,
}

impl OrgTopo {
    pub(crate) fn of(org: &crate::orgmodel::TruthOrg) -> Self {
        OrgTopo {
            kind: org.kind,
            asns: org.units.iter().map(|u| u.asn).collect(),
        }
    }
}

/// Builds the relationship graph for a world.
pub(crate) fn emit_topology(truth: &GroundTruth, rng: &mut StdRng) -> AsGraph {
    let summaries: Vec<OrgTopo> = truth.orgs().map(OrgTopo::of).collect();
    emit_topology_from(&summaries, rng)
}

/// [`emit_topology`] over pre-extracted per-org summaries, in the same
/// org order with the same RNG draw sequence (the two entry points are
/// draw-for-draw identical).
pub(crate) fn emit_topology_from(orgs: &[OrgTopo], rng: &mut StdRng) -> AsGraph {
    let mut builder = AsGraphBuilder::new();

    // Classify provider pools.
    let mut tier1: Vec<Asn> = Vec::new(); // flagships of the biggest transits
    let mut tier2: Vec<Asn> = Vec::new();
    let mut regional: Vec<(Asn, f64)> = Vec::new(); // weighted stub-provider pool
    let mut hypergiant_primaries: Vec<Asn> = Vec::new();

    for org in orgs {
        let flagship = match org.asns.first() {
            Some(&asn) => asn,
            None => continue,
        };
        match org.kind {
            OrgKind::Transit => {
                if org.asns.len() >= 8 {
                    tier1.push(flagship);
                } else if org.asns.len() >= 3 {
                    tier2.push(flagship);
                } else {
                    regional.push((flagship, 1.0 + org.asns.len() as f64));
                }
            }
            OrgKind::Conglomerate => {
                if org.asns.len() >= 8 {
                    tier2.push(flagship);
                } else {
                    regional.push((flagship, 2.0));
                }
            }
            OrgKind::Hypergiant => hypergiant_primaries.push(flagship),
            _ => {}
        }
    }
    // Degenerate tiny worlds: promote whatever exists.
    if tier1.is_empty() {
        tier1 = if tier2.is_empty() {
            regional.iter().map(|(a, _)| *a).take(3).collect()
        } else {
            tier2.clone()
        };
    }
    if tier2.is_empty() {
        tier2 = tier1.clone();
    }

    // Tier-1 clique.
    for i in 0..tier1.len() {
        for j in i + 1..tier1.len() {
            builder.peer_peer(tier1[i], tier1[j]);
        }
    }
    // Tier 2 buys from 1–2 tier 1s and peers occasionally.
    for &asn in &tier2 {
        let n = 1 + rng.random_range(0..2usize);
        for _ in 0..n {
            builder.provider_customer(tier1[rng.random_range(0..tier1.len())], asn);
        }
        if tier2.len() > 1 && rng.random_bool(0.3) {
            let other = tier2[rng.random_range(0..tier2.len())];
            builder.peer_peer(asn, other);
        }
    }
    // Regional providers buy from tier 1/2.
    let uplinks: Vec<Asn> = tier1.iter().chain(tier2.iter()).copied().collect();
    for &(asn, _) in &regional {
        let n = 1 + rng.random_range(0..2usize);
        for _ in 0..n {
            builder.provider_customer(uplinks[rng.random_range(0..uplinks.len())], asn);
        }
    }
    // Hypergiants: peer with every tier 1, buy one upstream for reach.
    for &asn in &hypergiant_primaries {
        for &t1 in &tier1 {
            builder.peer_peer(asn, t1);
        }
        builder.provider_customer(tier1[rng.random_range(0..tier1.len())], asn);
    }

    // Stub-provider pool with weights (regionals mostly, some tier 2).
    let mut pool: Vec<Asn> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();
    for &(asn, w) in &regional {
        pool.push(asn);
        weights.push(w * 3.0);
    }
    for &asn in &tier2 {
        pool.push(asn);
        weights.push(4.0);
    }
    for &asn in &tier1 {
        pool.push(asn);
        weights.push(2.0);
    }

    // Per-organization internal hierarchy + stub uplinks.
    for org in orgs {
        let flagship = match org.asns.first() {
            Some(&asn) => asn,
            None => continue,
        };
        match org.kind {
            OrgKind::Transit
            | OrgKind::Conglomerate
            | OrgKind::Hypergiant
            | OrgKind::GovMega
            | OrgKind::SmallMulti
            | OrgKind::Ixp => {
                // Subsidiaries sit under the flagship.
                for &asn in &org.asns[1..] {
                    builder.provider_customer(flagship, asn);
                }
                // Non-transit flagships also need upstreams (transit tiers
                // were wired above; hypergiants too).
                if matches!(
                    org.kind,
                    OrgKind::GovMega | OrgKind::SmallMulti | OrgKind::Ixp
                ) {
                    let n = 1 + rng.random_range(0..2usize);
                    for _ in 0..n {
                        let p = pool[weighted_idx(rng, &weights)];
                        if p != flagship {
                            builder.provider_customer(p, flagship);
                        }
                    }
                }
            }
            OrgKind::Singleton => {
                let n = 1 + weighted_idx(rng, &[0.55, 0.35, 0.10]);
                for _ in 0..n {
                    let p = pool[weighted_idx(rng, &weights)];
                    if p != flagship {
                        builder.provider_customer(p, flagship);
                    }
                }
            }
        }
        // Every unit exists as a node even if some wiring was skipped.
        for &asn in &org.asns {
            builder.node(asn);
        }
    }

    builder.build()
}

#[cfg(test)]
mod tests {
    use crate::{GeneratorConfig, SyntheticInternet};
    use borges_topology::customer_cones;

    #[test]
    fn topology_covers_every_asn() {
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(21));
        assert_eq!(world.topology.node_count(), world.truth.asn_count());
    }

    #[test]
    fn every_stub_has_an_upstream_path_to_a_tier() {
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(21));
        let orphans = world
            .topology
            .nodes()
            .filter(|&a| world.topology.degree(a) == 0)
            .count();
        // Allow only a negligible number of isolated nodes.
        assert!(
            orphans * 100 <= world.topology.node_count(),
            "{orphans} isolated ASNs"
        );
    }

    #[test]
    fn cones_reflect_the_hierarchy() {
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(21));
        let cones = customer_cones(&world.topology);
        let max_cone = cones.values().copied().max().unwrap();
        assert!(
            max_cone * 2 >= world.truth.asn_count() / 2,
            "tier-1 cone {max_cone} too small for {} ASNs",
            world.truth.asn_count()
        );
        // Stubs dominate.
        let stubs = cones.values().filter(|&&c| c == 1).count();
        assert!(stubs * 2 > cones.len(), "stub share too small");
    }

    #[test]
    fn asrank_comes_from_cones() {
        let world = SyntheticInternet::generate(&GeneratorConfig::tiny(21));
        let cones = customer_cones(&world.topology);
        // The rank-1 ASN has the maximum cone.
        let top = world.asrank[0];
        let max_cone = cones.values().copied().max().unwrap();
        assert_eq!(cones[&top], max_cone);
        // Cone sizes are non-increasing along the ranking.
        for pair in world.asrank.windows(2) {
            assert!(cones[&pair[0]] >= cones[&pair[1]]);
        }
    }
}
