//! §5.4's headline comparison: Borges > as2org+ > AS2Org, plus the
//! structural relationships between the three methods.

use borges_baselines::{as2org, as2orgplus, As2orgPlusConfig};
use borges_core::orgfactor::organization_factor;
use borges_core::pipeline::{Borges, FeatureSet};
use borges_llm::SimLlm;
use borges_synthnet::{GeneratorConfig, SyntheticInternet};
use borges_websim::SimWebClient;

fn setup() -> (SyntheticInternet, Borges) {
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(55));
    let llm = SimLlm::new(55);
    let borges = Borges::run(
        &world.whois,
        &world.pdb,
        SimWebClient::browser(&world.web),
        &llm,
    );
    (world, borges)
}

#[test]
fn theta_ordering_matches_the_paper() {
    let (world, borges) = setup();
    let n = borges.universe().len();
    let theta_base = organization_factor(&as2org(&world.whois), n);
    let theta_plus = organization_factor(
        &as2orgplus(&world.whois, &world.pdb, As2orgPlusConfig::automated()),
        n,
    );
    let theta_borges = organization_factor(&borges.full(), n);
    assert!(
        theta_base < theta_plus && theta_plus < theta_borges,
        "ordering broken: AS2Org {theta_base:.4}, as2org+ {theta_plus:.4}, Borges {theta_borges:.4}"
    );
}

#[test]
fn as2org_equals_the_pipelines_baseline() {
    let (world, borges) = setup();
    let standalone = as2org(&world.whois);
    let pipeline_base = borges.mapping(FeatureSet::NONE);
    // The pipeline's universe may add PDB-only ASNs as singletons; every
    // WHOIS-backed cluster must be identical.
    for (_, members) in standalone.clusters() {
        for pair in members.windows(2) {
            assert!(pipeline_base.same_org(pair[0], pair[1]));
        }
    }
    assert!(pipeline_base.org_count() >= standalone.org_count());
}

#[test]
fn automated_as2orgplus_equals_the_oid_p_combination() {
    let (world, borges) = setup();
    let plus = as2orgplus(&world.whois, &world.pdb, As2orgPlusConfig::automated());
    let oid_p_combo = borges.mapping(FeatureSet {
        oid_p: true,
        ..FeatureSet::NONE
    });
    assert_eq!(
        plus, oid_p_combo,
        "§5.1: the automated as2org+ configuration is exactly OID_W + OID_P"
    );
}

#[test]
fn regex_as2orgplus_has_lower_merge_precision_than_borges() {
    let (world, borges) = setup();
    let precision = |m: &borges_core::AsOrgMapping| {
        let mut merged = 0usize;
        let mut correct = 0usize;
        for (_, members) in m.clusters() {
            for i in 0..members.len() {
                for j in i + 1..members.len() {
                    merged += 1;
                    if world.truth.are_siblings(members[i], members[j]) {
                        correct += 1;
                    }
                }
            }
        }
        correct as f64 / merged.max(1) as f64
    };
    let regex = as2orgplus(&world.whois, &world.pdb, As2orgPlusConfig::with_regex());
    let borges_full = borges.full();
    let (p_regex, p_borges) = (precision(&regex), precision(&borges_full));
    assert!(
        p_regex < p_borges,
        "regex extraction should be less precise: regex {p_regex:.3} vs Borges {p_borges:.3}"
    );
}

#[test]
fn borges_dominates_both_baselines_in_org_consolidation() {
    let (world, borges) = setup();
    let base = as2org(&world.whois);
    let plus = as2orgplus(&world.whois, &world.pdb, As2orgPlusConfig::automated());
    let full = borges.full();
    // Monotone consolidation (universe sizes differ by PDB-only ASNs, so
    // compare cluster merging on the shared WHOIS clusters).
    assert!(full.org_count() < plus.org_count());
    assert!(plus.org_count() <= base.org_count() + world.pdb.net_count());
}
