//! The persistent-store keystones, end to end (DESIGN.md §12).
//!
//! The whole value of the store rests on one contract: a world loaded
//! from an artifact is **indistinguishable** from the freshly compiled
//! world it was saved from. Pinned here at both observation layers:
//!
//! 1. **Mapfile identity** — every one of the 16 feature combinations
//!    serializes to byte-identical mapfiles from the store-loaded and
//!    the compiled pipeline, at 1 and 4 replay threads.
//! 2. **HTTP identity** — two servers, one per pipeline, answer every
//!    endpoint class byte-identically, including the world digest in
//!    `/healthz` (the digest is content-derived, not load-path-derived).
//! 3. **Fallback identity** — a world recompiled after the artifact is
//!    damaged serves the same bytes a clean artifact would have; the
//!    store can degrade without changing answers.
//! 4. **Fail-closed loading** — damage anywhere in the file surfaces
//!    as a typed `StoreError`, never as an `Ok` with different bytes.

use std::time::Duration;

use borges_core::mapfile;
use borges_core::pipeline::{Borges, FeatureSet};
use borges_llm::SimLlm;
use borges_serve::{ServeClient, Server, ServerConfig};
use borges_store::{
    decode_world, encode_world, load_artifact, verify_artifact, world_digest, write_artifact,
    Corruptor,
};
use borges_synthnet::{GeneratorConfig, SyntheticInternet};
use borges_websim::SimWebClient;

fn compiled() -> Borges {
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(314159));
    let llm = SimLlm::new(314159);
    Borges::run(
        &world.whois,
        &world.pdb,
        SimWebClient::browser(&world.web),
        &llm,
    )
}

fn start(borges: Borges) -> Server {
    let config = ServerConfig {
        threads: 2,
        read_timeout: Duration::from_millis(700),
        ..ServerConfig::default()
    };
    Server::start(config, borges, None).expect("bind loopback")
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("borges-store-xtest-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every endpoint class the HTTP-identity tests replay.
const PROBES: &[&str] = &[
    "/healthz",
    "/v1/coverage",
    "/v1/map/AS3356",
    "/v1/map/AS3356?features=none",
    "/v1/map/3356?features=oid_p,rr",
    "/v1/org/AS3356",
    "/v1/org/209?features=na",
    "/v1/evidence/AS3356/AS209",
    "/v1/map/not-an-asn",
    "/no/such/route",
];

#[test]
fn store_loaded_mapfiles_match_compiled_for_every_combination_and_thread_count() {
    let original = compiled();
    let world = original.to_world();
    // Through the full file round trip, not just the in-memory value:
    // what serve loads is what map wrote.
    let dir = tmpdir("mapfiles");
    let path = dir.join("w.world");
    write_artifact(&path, &world).expect("write artifact");
    let loaded = load_artifact(&path).expect("load artifact");

    for threads in [1, 4] {
        let replayed = Borges::from_world(&loaded.world, threads).expect("replay world");
        for features in FeatureSet::all_combinations() {
            let a = mapfile::serialize(&original.mapping(features));
            let b = mapfile::serialize(&replayed.mapping(features));
            assert_eq!(
                a,
                b,
                "mapfile for {} differs at {threads} replay thread(s)",
                features.label()
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_loaded_server_answers_byte_identically_to_compiled_server() {
    let original = compiled();
    let dir = tmpdir("http");
    let path = dir.join("w.world");
    write_artifact(&path, &original.to_world()).expect("write artifact");
    let loaded = load_artifact(&path).expect("load artifact");
    let replayed = Borges::from_world(&loaded.world, 2).expect("replay world");

    let from_compile = start(original);
    let from_store = start(replayed);
    let client_a = ServeClient::new(from_compile.local_addr());
    let client_b = ServeClient::new(from_store.local_addr());
    for probe in PROBES {
        let a = client_a.get(probe).expect("compiled-world response");
        let b = client_b.get(probe).expect("store-world response");
        assert_eq!(
            a.canonical_raw(),
            b.canonical_raw(),
            "{probe} differed between compiled and store-loaded worlds:\n{}\nvs\n{}",
            String::from_utf8_lossy(&a.raw),
            String::from_utf8_lossy(&b.raw)
        );
    }
    // The healthz digest is the artifact's content address: same
    // world, same address, regardless of how it got into memory.
    let health = client_b.get("/healthz").expect("healthz");
    assert!(
        health
            .body_text()
            .contains(&format!("\"world_digest\":\"{}\"", loaded.digest)),
        "healthz must carry the store content address: {}",
        health.body_text()
    );
    from_compile.stop();
    from_store.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recompiled_fallback_world_serves_the_same_bytes_as_a_clean_store() {
    // The serve CLI falls back to a bundle compile when the artifact
    // is damaged. Model both sides here: the world a clean artifact
    // yields, and the world the fallback compile yields — responses
    // must be byte-identical, so degradation never changes answers.
    let dir = tmpdir("fallback");
    let path = dir.join("w.world");
    write_artifact(&path, &compiled().to_world()).expect("write artifact");

    let mut bytes = std::fs::read(&path).unwrap();
    let mut corruptor = Corruptor::new(0xFA11_BACC);
    corruptor.flip_byte(&mut bytes);
    std::fs::write(&path, &bytes).unwrap();
    let damage = load_artifact(&path).expect_err("damaged artifact must not load");
    assert!(!damage.kind().is_empty(), "typed error expected");

    let fallback = start(compiled());
    let clean = start(Borges::from_world(&compiled().to_world(), 2).expect("replay"));
    let client_fallback = ServeClient::new(fallback.local_addr());
    let client_clean = ServeClient::new(clean.local_addr());
    for probe in PROBES {
        let a = client_fallback.get(probe).expect("fallback response");
        let b = client_clean.get(probe).expect("clean-store response");
        assert_eq!(
            a.canonical_raw(),
            b.canonical_raw(),
            "{probe} differed after fallback"
        );
    }
    fallback.stop();
    clean.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn artifact_encoding_is_canonical_and_content_addressed() {
    let world = compiled().to_world();
    let bytes = encode_world(&world);
    let decoded = decode_world(&bytes).expect("decode own encoding");
    assert_eq!(
        bytes,
        encode_world(&decoded.world),
        "encode∘decode∘encode must be the identity"
    );
    assert_eq!(
        decoded.digest,
        world_digest(&world),
        "digest must be derivable from the world alone"
    );

    let dir = tmpdir("address");
    let path = dir.join("w.world");
    let written = write_artifact(&path, &world).expect("write artifact");
    let info = verify_artifact(&path).expect("verify artifact");
    assert_eq!(written, info.digest, "write and verify must agree");
    assert_eq!(written, decoded.digest, "file and memory must agree");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seeded_damage_anywhere_is_detected_or_harmless() {
    // Cross-crate restatement of the corruption matrix at the level
    // serve trusts: any single flipped byte either fails typed, or —
    // if it ever succeeded — would have to decode to the same world.
    let world = compiled().to_world();
    let clean = encode_world(&world);
    let mut corruptor = Corruptor::new(20260808);
    for _ in 0..64 {
        let mut bytes = clean.clone();
        corruptor.flip_byte(&mut bytes);
        match decode_world(&bytes) {
            Err(err) => assert!(!err.kind().is_empty()),
            Ok(loaded) => assert_eq!(
                loaded.world, world,
                "an accepted flip must be semantically invisible"
            ),
        }
        let cut = corruptor.truncate(&clean);
        decode_world(&cut).expect_err("truncation must never load");
    }
}
