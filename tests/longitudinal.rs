//! Longitudinal integration: evolve a world through corporate events,
//! map both snapshots, and verify the diff shows the right signatures.

use borges_core::diff::diff;
use borges_core::pipeline::Borges;
use borges_core::{mapfile, AsOrgMapping};
use borges_llm::SimLlm;
use borges_synthnet::{EvolutionEvent, GeneratorConfig, SyntheticInternet};
use borges_types::Asn;
use borges_websim::SimWebClient;

fn map(world: &SyntheticInternet) -> AsOrgMapping {
    let llm = SimLlm::new(77);
    Borges::run(
        &world.whois,
        &world.pdb,
        SimWebClient::browser(&world.web),
        &llm,
    )
    .full()
}

#[test]
fn acquisition_surfaces_as_a_merge_in_the_mapping_diff() {
    let before_world = SyntheticInternet::generate(&GeneratorConfig::tiny(77));
    let after_world = before_world
        .evolve(
            &[EvolutionEvent::Acquisition {
                acquirer: "cogent".into(),
                target: "orange".into(),
            }],
            78,
        )
        .unwrap();

    let before = map(&before_world);
    let after = map(&after_world);
    assert!(!before.same_org(Asn::new(174), Asn::new(3215)));
    assert!(after.same_org(Asn::new(174), Asn::new(3215)));

    let d = diff(&before, &after);
    assert!(
        d.merges.iter().any(|m| {
            m.fragments
                .iter()
                .flatten()
                .any(|&asn| asn == Asn::new(174))
                && m.fragments
                    .iter()
                    .flatten()
                    .any(|&asn| asn == Asn::new(3215))
        }),
        "the Cogent+Orange merge must appear in the diff"
    );
    assert_eq!(d.appeared.len(), 0);
    assert_eq!(d.disappeared.len(), 0);
}

#[test]
fn spinoff_surfaces_as_a_split() {
    let before_world = SyntheticInternet::generate(&GeneratorConfig::tiny(77));
    let after_world = before_world
        .evolve(
            &[EvolutionEvent::Spinoff {
                brand: "digicel".into(),
                countries: vec!["KE".into(), "NG".into()],
                new_brand: "sahelwave".into(),
            }],
            78,
        )
        .unwrap();
    let before = map(&before_world);
    let after = map(&after_world);
    assert!(before.same_org(Asn::new(23520), Asn::new(36926)));
    assert!(!after.same_org(Asn::new(23520), Asn::new(36926)));
    let d = diff(&before, &after);
    assert!(
        d.splits
            .iter()
            .any(|s| s.pieces.iter().flatten().any(|&a| a == Asn::new(36926))),
        "the Digicel split must appear in the diff"
    );
}

#[test]
fn rebrand_is_structurally_invisible() {
    let before_world = SyntheticInternet::generate(&GeneratorConfig::tiny(77));
    let after_world = before_world
        .evolve(
            &[EvolutionEvent::Rebrand {
                brand: "telekom".into(),
                new_brand: "magenta".into(),
            }],
            78,
        )
        .unwrap();
    let before = map(&before_world);
    let after = map(&after_world);
    // Same clusters around the DT family.
    assert_eq!(
        before.siblings_of(Asn::new(3320)),
        after.siblings_of(Asn::new(3320)),
        "a pure rebrand must not change the inferred organization"
    );
}

#[test]
fn mapping_releases_diff_through_the_file_format() {
    // The end-user workflow: serialize both releases, parse them back,
    // diff the parsed mappings — the file format must preserve everything
    // the diff needs.
    let before_world = SyntheticInternet::generate(&GeneratorConfig::tiny(77));
    let after_world = before_world
        .evolve(
            &[EvolutionEvent::Acquisition {
                acquirer: "telekom".into(),
                target: "orange".into(),
            }],
            78,
        )
        .unwrap();
    let before = map(&before_world);
    let after = map(&after_world);

    let before_parsed = mapfile::parse(&mapfile::serialize(&before)).unwrap();
    let after_parsed = mapfile::parse(&mapfile::serialize(&after)).unwrap();
    let direct = diff(&before, &after);
    let through_files = diff(&before_parsed, &after_parsed);
    assert_eq!(direct.merges.len(), through_files.merges.len());
    assert_eq!(direct.splits.len(), through_files.splits.len());
    assert_eq!(direct.unchanged_clusters, through_files.unchanged_clusters);
}
