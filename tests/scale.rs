//! Internet-scale worlds: the streaming generator and the sharded
//! evidence replay must both be invisible in the output.
//!
//! Two contracts are pinned here, across crate boundaries:
//!
//! * **Sharded == sequential.** Partitioning the evidence replay by
//!   dense-id range and unioning shards concurrently produces exactly
//!   the same partition — and exactly the same mapping file bytes — as
//!   the sequential replay, for every feature combination, any shard
//!   count (including degenerate ones larger than the universe), and
//!   arbitrary edge lists.
//! * **Streamed worlds are real worlds.** A bundle written by
//!   `generate_to_dir` loads, maps, and carries the same ground truth
//!   the materialized generator would have written.

use borges_core::pipeline::{Borges, FeatureSet};
use borges_core::{mapfile, DenseUnionFind};
use borges_llm::SimLlm;
use borges_synthnet::io::{save, DatasetBundle};
use borges_synthnet::{generate_to_dir, GeneratorConfig, SyntheticInternet};
use borges_types::Asn;
use borges_websim::SimWebClient;
use proptest::prelude::*;

/// Shard counts exercised everywhere: the sequential fallback, small
/// counts, a prime, and counts far beyond any sensible universe.
const SHARD_COUNTS: [usize; 6] = [1, 2, 3, 7, 16, 64];

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("borges-scale-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_world(seed: u64) -> (SyntheticInternet, Borges) {
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(seed));
    let llm = SimLlm::new(seed);
    let borges = Borges::run(
        &world.whois,
        &world.pdb,
        SimWebClient::browser(&world.web),
        &llm,
    );
    (world, borges)
}

/// Canonical labeling: each element tagged with the smallest member of
/// its set, so two forests compare structurally.
fn canon(uf: &mut DenseUnionFind, n: usize) -> Vec<u32> {
    let mut label = vec![u32::MAX; n];
    for i in 0..n as u32 {
        if label[i as usize] != u32::MAX {
            continue;
        }
        for j in i..n as u32 {
            if uf.same_set(i, j) {
                label[j as usize] = i;
            }
        }
    }
    label
}

/// Random segmented edge lists over a dense universe of size `n`.
fn edge_lists_strategy() -> impl Strategy<Value = (usize, Vec<Vec<(u32, u32)>>)> {
    (1usize..120).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        let list = prop::collection::vec(edge, 0..40);
        (Just(n), prop::collection::vec(list, 0..6))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sharded_union_matches_sequential_for_any_edge_lists(
        (n, lists) in edge_lists_strategy(),
    ) {
        let slices: Vec<&[(u32, u32)]> = lists.iter().map(|l| l.as_slice()).collect();
        let mut sequential = DenseUnionFind::new(n);
        sequential.union_edge_lists(&slices);
        let expected = canon(&mut sequential, n);

        for shards in SHARD_COUNTS {
            let mut sharded = DenseUnionFind::new(n);
            let report = sharded.union_edge_lists_sharded(&slices, shards, || 0);
            prop_assert_eq!(
                canon(&mut sharded, n),
                expected.clone(),
                "partition diverged at {} shards over n={}",
                shards,
                n
            );
            // The ledger invariant CI asserts: every contraction edge is
            // either a shard-local spanning edge or a cross-range edge.
            let spanning: usize = report.shards.iter().map(|s| s.spanning).sum();
            prop_assert_eq!(report.contraction_edges, spanning + report.cross_edges);
        }
    }
}

#[test]
fn sharded_mapping_bytes_match_sequential_for_every_combination() {
    let (_, borges) = run_world(31);
    for features in FeatureSet::all_combinations() {
        let expected = mapfile::serialize(&borges.mapping(features));
        for shards in SHARD_COUNTS {
            let got = mapfile::serialize(&borges.mapping_sharded(features, shards));
            assert_eq!(
                got,
                expected,
                "mapfile diverged: features {} at {} shards",
                features.label(),
                shards
            );
        }
    }
}

#[test]
fn sharded_compile_and_remap_match_their_sequential_twins() {
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(47));
    let llm = SimLlm::new(47);
    let scraper = borges_websim::Scraper::new(SimWebClient::browser(&world.web));
    let report = scraper.crawl(world.pdb.nets().map(|n| (n.asn, n.website.as_str())));
    let ner_config = borges_core::ner::NerConfig::default();

    let sequential = Borges::from_scrape(&world.whois, &world.pdb, &report, &llm, ner_config);
    let expected = mapfile::serialize(&sequential.mapping(FeatureSet::ALL));
    let state = sequential.snapshot_state();

    for threads in [2, 3, 7] {
        let compiled = Borges::from_scrape_parallel(
            &world.whois,
            &world.pdb,
            &report,
            &llm,
            ner_config,
            threads,
        );
        assert_eq!(
            mapfile::serialize(&compiled.mapping(FeatureSet::ALL)),
            expected,
            "sharded compile diverged at {threads} threads"
        );

        let remapped = Borges::remap_parallel(
            &world.whois,
            &world.pdb,
            &report,
            &llm,
            ner_config,
            &state,
            threads,
        );
        assert_eq!(
            mapfile::serialize(&remapped.mapping(FeatureSet::ALL)),
            expected,
            "sharded remap diverged at {threads} threads"
        );
        let delta = remapped.delta.expect("remap records delta stats");
        assert_eq!(delta.records.dirty(), 0, "unchanged bundle, clean remap");
    }
}

#[test]
fn streamed_bundle_maps_like_the_materialized_one() {
    let config = GeneratorConfig::tiny(5);
    let streamed_dir = tmpdir("streamed");
    let report = generate_to_dir(&config, &streamed_dir).expect("streaming generation");
    let materialized = SyntheticInternet::generate(&config);
    assert_eq!(report.asns, materialized.truth.asn_count());

    // The oracle files are byte-identical across the two writers; the
    // scraped datasets are each its own deterministic world.
    let materialized_dir = tmpdir("materialized");
    save(&materialized, &materialized_dir).expect("materialized save");
    for oracle in [
        "truth.psv",
        "labels.psv",
        "populations.psv",
        "hypergiants.psv",
    ] {
        assert_eq!(
            std::fs::read(streamed_dir.join(oracle)).unwrap(),
            std::fs::read(materialized_dir.join(oracle)).unwrap(),
            "{oracle} diverged between the streaming and materialized writers"
        );
    }

    // The streamed bundle is a first-class pipeline input: it loads,
    // maps deterministically, and the scripted ground truth survives
    // the trip (Lumen's WHOIS fragments reunite through the evidence).
    let bundle = DatasetBundle::load(&streamed_dir).expect("streamed bundle loads");
    let llm = SimLlm::new(5);
    let borges = Borges::run(
        &bundle.whois,
        &bundle.pdb,
        SimWebClient::browser(&bundle.web),
        &llm,
    );
    let mapping = borges.mapping(FeatureSet::ALL);
    assert!(
        mapping.same_org(Asn::new(3356), Asn::new(209)),
        "Lumen family"
    );
    for shards in SHARD_COUNTS {
        assert_eq!(
            mapfile::serialize(&borges.mapping_sharded(FeatureSet::ALL, shards)),
            mapfile::serialize(&mapping),
            "sharded mapping over a streamed bundle diverged at {shards} shards"
        );
    }

    let _ = std::fs::remove_dir_all(&streamed_dir);
    let _ = std::fs::remove_dir_all(&materialized_dir);
}

#[test]
fn streaming_generation_is_deterministic_at_the_bundle_level() {
    let config = GeneratorConfig::tiny(11);
    let a = tmpdir("det-a");
    let b = tmpdir("det-b");
    let ra = generate_to_dir(&config, &a).unwrap();
    let rb = generate_to_dir(&config, &b).unwrap();
    assert_eq!(ra, rb);
    for entry in std::fs::read_dir(&a).unwrap() {
        let name = entry.unwrap().file_name();
        assert_eq!(
            std::fs::read(a.join(&name)).unwrap(),
            std::fs::read(b.join(&name)).unwrap(),
            "{name:?} diverged between identical streaming runs"
        );
    }
    let _ = std::fs::remove_dir_all(&a);
    let _ = std::fs::remove_dir_all(&b);
}
