//! Reproducibility: the paper pins temperature 0 / top-p 1 so results are
//! reproducible "unless the model weights are updated" (§4.2). The
//! reproduction is stricter — every run is byte-identical under a fixed
//! seed, end to end.

use borges_core::pipeline::{Borges, FeatureSet};
use borges_llm::SimLlm;
use borges_synthnet::{GeneratorConfig, SyntheticInternet};
use borges_websim::SimWebClient;

fn full_run(seed: u64) -> (String, Vec<usize>) {
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(seed));
    let llm = SimLlm::new(seed);
    let borges = Borges::run(
        &world.whois,
        &world.pdb,
        SimWebClient::browser(&world.web),
        &llm,
    );
    let snapshot_json = world.pdb.to_json();
    let org_counts: Vec<usize> = FeatureSet::all_combinations()
        .into_iter()
        .map(|f| borges.mapping(f).org_count())
        .collect();
    (snapshot_json, org_counts)
}

#[test]
fn identical_seeds_are_byte_identical() {
    let (json_a, orgs_a) = full_run(7);
    let (json_b, orgs_b) = full_run(7);
    assert_eq!(json_a, json_b, "generated snapshots diverged");
    assert_eq!(orgs_a, orgs_b, "pipeline results diverged");
}

#[test]
fn different_seeds_differ() {
    let (json_a, _) = full_run(7);
    let (json_b, _) = full_run(8);
    assert_ne!(json_a, json_b);
}

#[test]
fn parallel_mappings_match_sequential_exactly() {
    // The threaded fan-out must be invisible in the output: for every
    // feature combination and any thread count, mappings_parallel is
    // byte-identical to the sequential replay.
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(21));
    let llm = SimLlm::new(21);
    let borges = Borges::run(
        &world.whois,
        &world.pdb,
        SimWebClient::browser(&world.web),
        &llm,
    );
    let combinations = FeatureSet::all_combinations();
    let sequential: Vec<_> = combinations.iter().map(|&f| borges.mapping(f)).collect();
    for threads in [1, 2, 7] {
        assert_eq!(
            borges.mappings_parallel(&combinations, threads),
            sequential,
            "parallel materialization diverged at {threads} threads"
        );
    }
}

#[test]
fn parallel_run_matches_sequential_run() {
    // The crawl and extraction fan-outs assemble key-canonically, so a
    // threaded pipeline run compiles the same evidence as a sequential
    // one: every feature combination maps identically.
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(33));
    let llm = SimLlm::new(33);
    let sequential = Borges::run(
        &world.whois,
        &world.pdb,
        SimWebClient::browser(&world.web),
        &llm,
    );
    let parallel = Borges::run_parallel(
        &world.whois,
        &world.pdb,
        SimWebClient::browser(&world.web),
        &llm,
        4,
    );
    assert_eq!(sequential.universe(), parallel.universe());
    for features in FeatureSet::all_combinations() {
        assert_eq!(
            sequential.mapping(features),
            parallel.mapping(features),
            "run vs run_parallel diverged for {}",
            features.label()
        );
    }
}

#[test]
fn experiment_context_is_reproducible() {
    std::env::set_var("BORGES_SCALE", "tiny");
    std::env::set_var("BORGES_SEED", "123");
    let a = borges_eval::ExperimentContext::from_env();
    let b = borges_eval::ExperimentContext::from_env();
    assert_eq!(
        borges_eval::experiments::run_all(&a),
        borges_eval::experiments::run_all(&b),
        "full experiment reports must be byte-identical"
    );
}

#[test]
fn llm_replies_are_stable_across_calls() {
    use borges_llm::chat::{ChatModel, ChatRequest};
    use borges_llm::prompts::build_ie_prompt;
    use borges_types::Asn;
    let llm = SimLlm::new(99);
    let req = ChatRequest::user(build_ie_prompt(
        Asn::new(3320),
        "Our subsidiaries: AS5483, AS6855, AS5391. Upstream: AS1299.",
        "",
    ));
    let first = llm.complete(&req).unwrap().text;
    for _ in 0..10 {
        assert_eq!(llm.complete(&req).unwrap().text, first);
    }
}
