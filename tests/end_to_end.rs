//! End-to-end integration: the complete pipeline over a generated world
//! must recover every anecdote the paper builds its argument on.

use borges_core::pipeline::{Borges, FeatureSet};
use borges_llm::SimLlm;
use borges_synthnet::{GeneratorConfig, SyntheticInternet};
use borges_types::Asn;
use borges_websim::SimWebClient;

fn run() -> (SyntheticInternet, Borges) {
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(20240724));
    let llm = SimLlm::new(20240724);
    let borges = Borges::run(
        &world.whois,
        &world.pdb,
        SimWebClient::browser(&world.web),
        &llm,
    );
    (world, borges)
}

#[test]
fn figure3_lumen_centurylink() {
    let (world, borges) = run();
    let base = borges.baseline_as2org();
    let full = borges.full();
    let (l3, ctl, gblx) = (Asn::new(3356), Asn::new(209), Asn::new(3549));
    assert!(!base.same_org(l3, ctl), "AS2Org must miss the merger");
    assert!(full.same_org(l3, ctl), "Borges must recover it via OID_P");
    assert!(
        full.same_org(gblx, ctl),
        "transitive closure through Level3"
    );
    assert!(world.truth.are_siblings(l3, ctl));
}

#[test]
fn section_4_3_2_edgio_via_final_urls() {
    let (_, borges) = run();
    let rr_only = borges.mapping(FeatureSet {
        rr: true,
        ..FeatureSet::NONE
    });
    assert!(rr_only.same_org(Asn::new(22822), Asn::new(15133)));
}

#[test]
fn figure5b_clearwire_chain() {
    let (_, borges) = run();
    let full = borges.full();
    // Clearwire's reported site resolves through the legacy hop to
    // T-Mobile, tying it into the Deutsche Telekom cluster.
    assert!(full.same_org(Asn::new(16586), Asn::new(21928)));
}

#[test]
fn sprint_backbone_lands_with_cogent() {
    let (_, borges) = run();
    let full = borges.full();
    assert!(
        full.same_org(Asn::new(1239), Asn::new(174)),
        "§1: Sprint associates — after a series of redirects — with Cogent"
    );
}

#[test]
fn figure4_deutsche_telekom_notes() {
    let (_, borges) = run();
    let na_only = borges.mapping(FeatureSet {
        na: true,
        ..FeatureSet::NONE
    });
    for sibling in [5483u32, 6855, 5391, 21928] {
        assert!(
            na_only.same_org(Asn::new(3320), Asn::new(sibling)),
            "DT subsidiary AS{sibling} missing from the N&A mapping"
        );
    }
}

#[test]
fn table1_claro_favicon_family() {
    let (_, borges) = run();
    let favicons_only = borges.mapping(FeatureSet {
        favicons: true,
        ..FeatureSet::NONE
    });
    // clarochile.cl and claropr.com differ in domain but share the
    // favicon; the LLM reclassification merges them.
    assert!(favicons_only.same_org(Asn::new(27651), Asn::new(10396)));
}

#[test]
fn section_5_3_decix_stays_unmerged() {
    let (world, borges) = run();
    let full = borges.full();
    // The paper reports this miss: same favicon, unrelated domain names.
    assert!(world.truth.are_siblings(Asn::new(6695), Asn::new(61374)));
    assert!(
        !full.same_org(Asn::new(6695), Asn::new(61374)),
        "the DE-CIX family should remain unmerged — a faithful limitation"
    );
}

#[test]
fn digicel_footprint_expands() {
    let (world, borges) = run();
    let full = borges.full();
    let base = borges.baseline_as2org();
    let digicel_jm = Asn::new(23520);
    let base_size = base.siblings_of(digicel_jm).len();
    let full_size = full.siblings_of(digicel_jm).len();
    assert!(
        base_size <= 4,
        "AS2Org sees only the consolidated 4 markets"
    );
    assert!(
        full_size >= 20,
        "Borges should recover most of Digicel's 25 markets (got {full_size})"
    );
    assert!(world.truth.are_siblings(digicel_jm, Asn::new(27665)));
}

#[test]
fn blocklists_keep_social_platform_users_apart() {
    let (world, borges) = run();
    let full = borges.full();
    // Find two unrelated networks that reported the same social platform.
    let mut platform_reporters: std::collections::BTreeMap<&str, Vec<Asn>> = Default::default();
    for net in world.pdb.nets() {
        for platform in ["facebook.com", "github.com", "linkedin.com"] {
            if net.website.contains(platform) {
                platform_reporters
                    .entry(platform)
                    .or_default()
                    .push(net.asn);
            }
        }
    }
    for (platform, reporters) in platform_reporters {
        for pair in reporters.windows(2) {
            if !world.truth.are_siblings(pair[0], pair[1]) {
                assert!(
                    !full.same_org(pair[0], pair[1]),
                    "{} and {} wrongly merged through {platform}",
                    pair[0],
                    pair[1]
                );
            }
        }
    }
}

#[test]
fn full_mapping_beats_baseline_on_truth_recall_without_precision_collapse() {
    let (world, borges) = run();
    let base = borges.baseline_as2org();
    let full = borges.full();

    // Pairwise recall over true sibling pairs; precision over merged pairs.
    let mut true_pairs = Vec::new();
    for org in world.truth.orgs() {
        for i in 0..org.units.len() {
            for j in i + 1..org.units.len() {
                true_pairs.push((org.units[i].asn, org.units[j].asn));
            }
        }
    }
    let recall = |m: &borges_core::AsOrgMapping| {
        true_pairs
            .iter()
            .filter(|(a, b)| m.same_org(*a, *b))
            .count() as f64
            / true_pairs.len() as f64
    };
    let precision = |m: &borges_core::AsOrgMapping| {
        let mut merged = 0usize;
        let mut correct = 0usize;
        for (_, members) in m.clusters() {
            for i in 0..members.len() {
                for j in i + 1..members.len() {
                    merged += 1;
                    if world.truth.are_siblings(members[i], members[j]) {
                        correct += 1;
                    }
                }
            }
        }
        if merged == 0 {
            1.0
        } else {
            correct as f64 / merged as f64
        }
    };

    let (r_base, r_full) = (recall(&base), recall(&full));
    let (p_base, p_full) = (precision(&base), precision(&full));
    assert!(
        r_full > r_base + 0.1,
        "Borges should recover many more sibling pairs: {r_base:.3} → {r_full:.3}"
    );
    assert!(
        p_full > 0.9,
        "precision must not collapse while recall grows: {p_full:.3} (base {p_base:.3})"
    );
}
