//! Ground-truth scoring: the advantage a synthetic world gives us over
//! the paper (which had no oracle). Each feature's merges are checked
//! against the true ownership graph.

use borges_core::pipeline::{Borges, FeatureSet};
use borges_core::AsOrgMapping;
use borges_llm::SimLlm;
use borges_synthnet::{GeneratorConfig, GroundTruth, SyntheticInternet};
use borges_websim::SimWebClient;

struct Scores {
    precision: f64,
    recall: f64,
}

fn score(mapping: &AsOrgMapping, truth: &GroundTruth) -> Scores {
    let mut true_pairs = 0usize;
    let mut recovered = 0usize;
    for org in truth.orgs() {
        for i in 0..org.units.len() {
            for j in i + 1..org.units.len() {
                true_pairs += 1;
                if mapping.same_org(org.units[i].asn, org.units[j].asn) {
                    recovered += 1;
                }
            }
        }
    }
    let mut merged = 0usize;
    let mut correct = 0usize;
    for (_, members) in mapping.clusters() {
        for i in 0..members.len() {
            for j in i + 1..members.len() {
                merged += 1;
                if truth.are_siblings(members[i], members[j]) {
                    correct += 1;
                }
            }
        }
    }
    Scores {
        precision: if merged == 0 {
            1.0
        } else {
            correct as f64 / merged as f64
        },
        recall: if true_pairs == 0 {
            1.0
        } else {
            recovered as f64 / true_pairs as f64
        },
    }
}

fn pipeline() -> (SyntheticInternet, Borges) {
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(31));
    let llm = SimLlm::new(31);
    let borges = Borges::run(
        &world.whois,
        &world.pdb,
        SimWebClient::browser(&world.web),
        &llm,
    );
    (world, borges)
}

#[test]
fn each_feature_improves_recall_and_keeps_high_precision() {
    let (world, borges) = pipeline();
    let base = score(&borges.mapping(FeatureSet::NONE), &world.truth);
    for features in [
        FeatureSet {
            oid_p: true,
            ..FeatureSet::NONE
        },
        FeatureSet {
            na: true,
            ..FeatureSet::NONE
        },
        FeatureSet {
            rr: true,
            ..FeatureSet::NONE
        },
        FeatureSet {
            favicons: true,
            ..FeatureSet::NONE
        },
        FeatureSet::ALL,
    ] {
        let s = score(&borges.mapping(features), &world.truth);
        assert!(
            s.recall >= base.recall,
            "{}: recall regressed {:.3} → {:.3}",
            features.label(),
            base.recall,
            s.recall
        );
        assert!(
            s.precision > 0.85,
            "{}: precision collapsed to {:.3}",
            features.label(),
            s.precision
        );
    }
}

#[test]
fn full_borges_recovers_most_true_pairs() {
    let (world, borges) = pipeline();
    let full = score(&borges.mapping(FeatureSet::ALL), &world.truth);
    let base = score(&borges.mapping(FeatureSet::NONE), &world.truth);
    assert!(
        full.recall > base.recall * 1.3,
        "full pipeline should add ≥30% relative recall ({:.3} → {:.3})",
        base.recall,
        full.recall
    );
}

#[test]
fn ner_edges_are_overwhelmingly_true() {
    let (world, borges) = pipeline();
    let edges = borges.ner.edges();
    assert!(!edges.is_empty());
    let correct = edges
        .iter()
        .filter(|(a, b)| world.truth.are_siblings(*a, *b))
        .count();
    let precision = correct as f64 / edges.len() as f64;
    assert!(
        precision > 0.85,
        "LLM extraction edge precision {precision:.3} ({correct}/{})",
        edges.len()
    );
}

#[test]
fn rr_merges_are_overwhelmingly_true() {
    let (world, borges) = pipeline();
    let mut pairs = 0usize;
    let mut correct = 0usize;
    for group in borges.rr.merging_groups() {
        for i in 0..group.len() {
            for j in i + 1..group.len() {
                pairs += 1;
                if world.truth.are_siblings(group[i], group[j]) {
                    correct += 1;
                }
            }
        }
    }
    assert!(pairs > 0);
    let precision = correct as f64 / pairs as f64;
    assert!(precision > 0.9, "R&R precision {precision:.3}");
}

#[test]
fn favicon_merges_are_overwhelmingly_true() {
    let (world, borges) = pipeline();
    let mut pairs = 0usize;
    let mut correct = 0usize;
    for group in &borges.favicon.groups {
        for i in 0..group.len() {
            for j in i + 1..group.len() {
                pairs += 1;
                if world.truth.are_siblings(group[i], group[j]) {
                    correct += 1;
                }
            }
        }
    }
    assert!(pairs > 0);
    let precision = correct as f64 / pairs as f64;
    assert!(precision > 0.85, "favicon precision {precision:.3}");
}
