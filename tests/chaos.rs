//! End-to-end fault-injection soak: the keystone guarantees of the
//! resilience layer, checked over whole synthetic Internets.
//!
//! Two contracts, straight from the failure-model design:
//!
//! 1. **Recoverable chaos is invisible.** A world whose every transport
//!    episode is recoverable within the retry budget produces a mapping
//!    **bit-identical** to the flawless world's, for every feature
//!    subset — retries erase calibrated faults entirely.
//! 2. **Unrecoverable chaos degrades, with receipts.** With retries
//!    disabled (or permanent outages injected), the pipeline still
//!    completes: every abandoned record is counted
//!    (`abandoned + succeeded == attempted` per feature), nothing
//!    panics, nothing is silently dropped, and the degraded mapping
//!    only ever *removes* merges relative to the flawless one.
//!
//! The seed sweep width is controlled by `BORGES_CHAOS_SEEDS`
//! (default 3); CI's soak job raises it.

use borges_core::pipeline::{Borges, FeatureSet};
use borges_llm::{FlakyModel, SimLlm};
use borges_resilience::{EpisodePlan, RetryPolicy};
use borges_synthnet::{GeneratorConfig, SyntheticInternet};
use borges_telemetry::{RunReport, Telemetry, Verbosity};
use borges_websim::{FlakyWebClient, SimWebClient};

fn chaos_seeds() -> u64 {
    std::env::var("BORGES_CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

fn flawless(world: &SyntheticInternet) -> Borges {
    Borges::run(
        &world.whois,
        &world.pdb,
        SimWebClient::browser(&world.web),
        &SimLlm::flawless(),
    )
}

#[test]
fn chaos_recoverable_worlds_map_bit_identically() {
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(11));
    let reference = flawless(&world);
    for seed in 1..=chaos_seeds() {
        let web = FlakyWebClient::new(
            SimWebClient::browser(&world.web),
            EpisodePlan::calibrated(seed),
        );
        let llm = FlakyModel::new(SimLlm::flawless(), EpisodePlan::calibrated(seed ^ 0xFACE));
        let chaotic = Borges::run_resilient(
            &world.whois,
            &world.pdb,
            web,
            &llm,
            RetryPolicy::standard(seed),
        );

        for features in FeatureSet::all_combinations() {
            assert_eq!(
                chaotic.mapping(features),
                reference.mapping(features),
                "seed {seed}: {} diverged under recoverable chaos",
                features.label()
            );
        }
        let coverage = chaotic.coverage();
        assert!(coverage.accounted(), "seed {seed}");
        assert!(
            coverage.complete(),
            "seed {seed}: recoverable chaos must lose nothing"
        );
        assert!(
            chaotic.scrape_stats.resilience.recovered
                + chaotic.ner.stats.resilience.recovered
                + chaotic.favicon.stats.resilience.recovered
                > 0,
            "seed {seed}: the plan must actually have injected faults"
        );
    }
}

#[test]
fn chaos_degraded_worlds_account_for_every_loss() {
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(11));
    let reference = flawless(&world).full();
    for seed in 1..=chaos_seeds() {
        // Permanent outages AND no retry budget: losses are certain.
        let web = FlakyWebClient::new(
            SimWebClient::browser(&world.web),
            EpisodePlan::with_outages(seed),
        );
        let llm = FlakyModel::new(SimLlm::flawless(), EpisodePlan::with_outages(seed ^ 0xFACE));
        let degraded =
            Borges::run_resilient(&world.whois, &world.pdb, web, &llm, RetryPolicy::none());

        // No silent drops: every feature's ledger balances.
        let coverage = degraded.coverage();
        assert!(
            coverage.accounted(),
            "seed {seed}: abandoned + succeeded != attempted"
        );
        assert!(
            coverage.total_abandoned() > 0,
            "seed {seed}: outages must cost something"
        );
        // LLM-stage ledgers balance individually too.
        assert_eq!(
            degraded.ner.stats.llm_abandoned + coverage.notes_aka.succeeded,
            degraded.ner.stats.llm_calls,
            "seed {seed}"
        );
        assert_eq!(
            degraded.favicon.stats.llm_abandoned + coverage.favicon_groups.succeeded,
            degraded.favicon.stats.llm_calls,
            "seed {seed}"
        );

        // Strictly degraded but valid: same universe, and only *removed*
        // merges — partial evidence never invents a sibling relation.
        let full = degraded.full();
        assert_eq!(full.asn_count(), reference.asn_count(), "seed {seed}");
        for (_, members) in full.clusters() {
            for pair in members.windows(2) {
                assert!(
                    reference.same_org(pair[0], pair[1]),
                    "seed {seed}: degraded run invented a merge {pair:?}"
                );
            }
        }
    }
}

#[test]
fn chaos_run_ledgers_balance_and_reproduce_across_seeds() {
    // The emitted RunReport is the soak job's receipt: for every chaos
    // seed — recoverable and degraded alike — the ledger must balance
    // (`abandoned + succeeded == attempted` per stage) and a repeated
    // run under the same seed must emit byte-identical JSON.
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(11));
    let ledger = |seed: u64, plan: fn(u64) -> EpisodePlan, policy: &RetryPolicy| {
        let tel = Telemetry::sim(Verbosity::Quiet);
        let web = FlakyWebClient::new(SimWebClient::browser(&world.web), plan(seed));
        let llm = FlakyModel::new(SimLlm::flawless(), plan(seed ^ 0xFACE));
        let borges =
            Borges::run_resilient_traced(&world.whois, &world.pdb, web, &llm, *policy, &tel);
        borges.run_report(&tel, "resilient", 1).to_json_pretty()
    };
    for seed in 1..=chaos_seeds() {
        for (plan, policy) in [
            (
                EpisodePlan::calibrated as fn(u64) -> EpisodePlan,
                RetryPolicy::standard(seed),
            ),
            (EpisodePlan::with_outages, RetryPolicy::none()),
        ] {
            let json = ledger(seed, plan, &policy);
            assert_eq!(
                json,
                ledger(seed, plan, &policy),
                "seed {seed}: chaos ledger must be reproducible"
            );
            let report = RunReport::from_json(&json).expect("ledger JSON parses");
            assert!(
                report.accounted(),
                "seed {seed}: abandoned + succeeded != attempted in\n{json}"
            );
            for row in &report.resilience {
                assert!(
                    row.attempts >= row.calls,
                    "seed {seed}: {} attempted fewer times than it was called",
                    row.boundary
                );
            }
        }
    }
}

#[test]
fn chaos_retries_beyond_the_burst_change_nothing_more() {
    // Retry budgets larger than the longest burst are equivalent: the
    // mapping is already fully recovered, extra headroom is never spent.
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(11));
    let run_with = |attempts: u32| {
        let web = FlakyWebClient::new(
            SimWebClient::browser(&world.web),
            EpisodePlan::calibrated(5),
        );
        let llm = FlakyModel::new(SimLlm::flawless(), EpisodePlan::calibrated(6));
        let policy = RetryPolicy {
            max_attempts: attempts,
            ..RetryPolicy::standard(5)
        };
        Borges::run_resilient(&world.whois, &world.pdb, web, &llm, policy)
    };
    let tight = run_with(4); // burst <= 3 ⇒ 4 attempts always suffice
    let roomy = run_with(9);
    assert_eq!(tight.full(), roomy.full());
    assert_eq!(
        tight.scrape_stats.resilience.attempts, roomy.scrape_stats.resilience.attempts,
        "unneeded headroom must never be spent"
    );
}
