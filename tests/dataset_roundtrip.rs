//! Dataset format fidelity: generated worlds must survive serialization
//! through the real-world file formats (CAIDA AS2Org flat files,
//! PeeringDB JSON dumps) without loss — this is what makes the parsers
//! usable on genuine snapshots.

use borges_peeringdb::PdbSnapshot;
use borges_synthnet::{GeneratorConfig, SyntheticInternet};
use borges_whois::{as2org_format, delegated, rpsl};

#[test]
fn whois_roundtrips_through_caida_format() {
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(8));
    let text = as2org_format::serialize(&world.whois);
    let parsed = as2org_format::parse(&text).expect("own output parses");

    assert_eq!(parsed.asn_count(), world.whois.asn_count());
    assert_eq!(parsed.org_count(), world.whois.org_count());
    for asn in world.whois.all_asns() {
        let before = world.whois.org_of(asn).unwrap();
        let after = parsed.org_of(asn).unwrap();
        assert_eq!(before.id, after.id, "{asn} changed org");
        assert_eq!(before.name, after.name);
        assert_eq!(before.country, after.country);
    }
    // Stability: serialize(parse(serialize(x))) == serialize(x).
    assert_eq!(text, as2org_format::serialize(&parsed));
}

#[test]
fn pdb_roundtrips_through_json_dump() {
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(8));
    let json = world.pdb.to_json();
    let parsed = PdbSnapshot::from_json(&json).expect("own output parses");

    assert_eq!(parsed.net_count(), world.pdb.net_count());
    assert_eq!(parsed.org_count(), world.pdb.org_count());
    for net in world.pdb.nets() {
        let back = parsed.net_by_asn(net.asn).expect("net survives");
        assert_eq!(back, net);
    }
    assert_eq!(json, parsed.to_json());
}

#[test]
fn medium_world_roundtrips_too() {
    // Scale check: formats must hold up beyond toy sizes.
    let world = SyntheticInternet::generate(&GeneratorConfig::medium(8));
    let text = as2org_format::serialize(&world.whois);
    let parsed = as2org_format::parse(&text).unwrap();
    assert_eq!(parsed.asn_count(), world.whois.asn_count());

    let json = world.pdb.to_json();
    let back = PdbSnapshot::from_json(&json).unwrap();
    assert_eq!(back.net_count(), world.pdb.net_count());
}

#[test]
fn whois_roundtrips_through_rpsl_objects() {
    // The registries' native representation: generated registry → RPSL
    // text → parsed registry must preserve the (asn → org) relation that
    // AS2Org is derived from.
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(8));
    let text = rpsl::serialize(&world.whois);
    let parsed = rpsl::parse(&text).expect("own RPSL parses");
    assert_eq!(parsed.asn_count(), world.whois.asn_count());
    assert_eq!(parsed.org_count(), world.whois.org_count());
    for asn in world.whois.all_asns() {
        assert_eq!(
            world.whois.org_of(asn).unwrap().id,
            parsed.org_of(asn).unwrap().id,
            "{asn} moved organizations through RPSL"
        );
    }
}

#[test]
fn delegated_extended_covers_the_registry() {
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(8));
    let text = delegated::serialize(&world.whois, 20240724);
    let records = delegated::parse(&text).expect("own delegated file parses");
    let covered: std::collections::BTreeSet<_> = records.iter().flat_map(|r| r.asns()).collect();
    let expected: std::collections::BTreeSet<_> = world.whois.all_asns().collect();
    assert_eq!(covered, expected, "delegation stats must cover every ASN");
    // Countries agree with the registry's organizations.
    for record in records.iter().take(50) {
        let org = world.whois.org_of(record.start).unwrap();
        assert_eq!(record.country, org.country);
    }
}

#[test]
fn three_whois_formats_tell_the_same_story() {
    // CAIDA flat file, RPSL, and delegated-extended are three views of
    // one registry; ASN universes must coincide across all of them.
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(8));
    let caida = as2org_format::parse(&as2org_format::serialize(&world.whois)).unwrap();
    let via_rpsl = rpsl::parse(&rpsl::serialize(&world.whois)).unwrap();
    let stats = delegated::parse(&delegated::serialize(&world.whois, 20240724)).unwrap();
    let from_stats: std::collections::BTreeSet<_> = stats.iter().flat_map(|r| r.asns()).collect();
    assert_eq!(
        caida.all_asns().collect::<Vec<_>>(),
        via_rpsl.all_asns().collect::<Vec<_>>()
    );
    assert_eq!(
        caida.all_asns().collect::<std::collections::BTreeSet<_>>(),
        from_stats
    );
}

#[test]
fn free_text_survives_json_escaping() {
    // Multilingual notes with newlines, quotes and unicode must round-trip
    // byte-exactly (the NER stage depends on the text being intact).
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(8));
    let json = world.pdb.to_json();
    let parsed = PdbSnapshot::from_json(&json).unwrap();
    let mut checked = 0;
    for net in world.pdb.nets().filter(|n| n.has_text()) {
        let back = parsed.net_by_asn(net.asn).unwrap();
        assert_eq!(back.notes, net.notes);
        assert_eq!(back.aka, net.aka);
        checked += 1;
    }
    assert!(checked > 20, "not enough text records exercised: {checked}");
}
