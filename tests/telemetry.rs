//! The observability determinism contract, pinned end to end.
//!
//! Under a `SimClock` and a fixed seed, a fault-free run is fully
//! deterministic: the *canonical* trace journal (logical spans only,
//! sorted, ids stripped) and the metrics snapshot must be byte-identical
//! between the sequential and parallel pipelines, and across repeated
//! runs. Worker scheduling is allowed to show up only in runtime spans
//! and in the `workers` ledger rows — never in anything canonical.

use borges_core::pipeline::{Borges, FeatureSet};
use borges_llm::SimLlm;
use borges_resilience::RetryPolicy;
use borges_synthnet::{GeneratorConfig, SyntheticInternet};
use borges_telemetry::{RunReport, Telemetry, Verbosity};
use borges_websim::SimWebClient;

/// Runs the full instrumented pipeline (run + the 16-combination sweep)
/// and returns (canonical journal, metrics exposition, ledger JSON).
fn traced_run(world: &SyntheticInternet, threads: usize) -> (String, String, String) {
    let llm = SimLlm::new(99);
    let tel = Telemetry::sim(Verbosity::Quiet);
    let borges = if threads > 1 {
        Borges::run_parallel_traced(
            &world.whois,
            &world.pdb,
            SimWebClient::browser(&world.web),
            &llm,
            threads,
            &tel,
        )
    } else {
        Borges::run_traced(
            &world.whois,
            &world.pdb,
            SimWebClient::browser(&world.web),
            &llm,
            &tel,
        )
    };
    let combos = FeatureSet::all_combinations();
    borges.mappings_parallel_traced(&combos, threads, &tel);
    let report = borges.run_report(&tel, "test", threads);
    (
        tel.trace_jsonl_canonical(),
        report.metrics.to_prometheus(),
        report.to_json_pretty(),
    )
}

#[test]
fn sequential_and_parallel_traces_are_byte_identical() {
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(17));
    let (seq_trace, seq_metrics, _) = traced_run(&world, 1);
    let (par_trace, par_metrics, _) = traced_run(&world, 4);
    assert!(!seq_trace.is_empty());
    assert!(seq_trace.contains("\"run/crawl\""), "{seq_trace}");
    assert!(seq_trace.contains("mappings/materialize"), "{seq_trace}");
    assert_eq!(
        seq_trace, par_trace,
        "canonical journals must not depend on scheduling"
    );
    assert_eq!(
        seq_metrics, par_metrics,
        "metrics must not depend on scheduling"
    );
}

#[test]
fn repeated_runs_are_byte_identical() {
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(17));
    assert_eq!(traced_run(&world, 3), traced_run(&world, 3));
}

#[test]
fn raw_journals_do_differ_across_schedules_where_allowed() {
    // The *raw* journal (runtime chunk spans included) is where worker
    // scheduling is allowed to show — the canonicalization is doing real
    // work, not comparing empty sets.
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(17));
    let llm = SimLlm::new(99);
    let count_runtime = |threads: usize| {
        let tel = Telemetry::sim(Verbosity::Quiet);
        let borges = Borges::run_traced(
            &world.whois,
            &world.pdb,
            SimWebClient::browser(&world.web),
            &llm,
            &tel,
        );
        borges.mappings_parallel_traced(&FeatureSet::all_combinations(), threads, &tel);
        tel.trace_records()
            .iter()
            .filter(|r| r.kind == borges_telemetry::SpanKind::Runtime)
            .count()
    };
    // One runtime chunk span per chunk: the chunk count follows threads.
    assert_eq!(count_runtime(1), 1);
    assert_eq!(count_runtime(4), 4);
}

#[test]
fn resilient_run_ledger_is_deterministic_per_seed() {
    use borges_llm::FlakyModel;
    use borges_resilience::EpisodePlan;
    use borges_websim::FlakyWebClient;

    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(17));
    let run_once = |seed: u64| {
        let llm = SimLlm::new(99);
        let tel = Telemetry::sim(Verbosity::Quiet);
        let web = FlakyWebClient::new(
            SimWebClient::browser(&world.web),
            EpisodePlan::calibrated(seed),
        );
        let model = FlakyModel::new(&llm, EpisodePlan::calibrated(seed ^ 1));
        let borges = Borges::run_resilient_traced(
            &world.whois,
            &world.pdb,
            web,
            &model,
            RetryPolicy::standard(seed),
            &tel,
        );
        (
            borges.run_report(&tel, "resilient", 1).to_json_pretty(),
            tel.trace_jsonl_canonical(),
        )
    };
    for seed in [1u64, 2, 3] {
        let (report_a, trace_a) = run_once(seed);
        let (report_b, trace_b) = run_once(seed);
        assert_eq!(
            report_a, report_b,
            "seed {seed}: ledger must be reproducible"
        );
        assert_eq!(
            trace_a, trace_b,
            "seed {seed}: journal must be reproducible"
        );
        let report = RunReport::from_json(&report_a).unwrap();
        assert!(report.accounted(), "seed {seed}");
        assert!(
            report.metrics.counter("borges_web_attempts_total")
                >= report.metrics.counter("borges_web_calls_total"),
            "seed {seed}: attempts can only exceed calls"
        );
    }
}

#[test]
fn resilient_metrics_mirror_resilience_stats() {
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(17));
    let llm = SimLlm::new(99);
    let tel = Telemetry::sim(Verbosity::Quiet);
    let borges = Borges::run_resilient_traced(
        &world.whois,
        &world.pdb,
        SimWebClient::browser(&world.web),
        &llm,
        RetryPolicy::standard(5),
        &tel,
    );
    let snap = tel.metrics_snapshot();
    let web = borges.scrape_stats.resilience;
    assert_eq!(snap.counter("borges_web_calls_total"), web.calls);
    assert_eq!(snap.counter("borges_web_attempts_total"), web.attempts);
    assert_eq!(
        snap.counter("borges_llm_ner_calls_total"),
        borges.ner.stats.resilience.calls
    );
    assert_eq!(
        snap.counter("borges_llm_favicon_calls_total"),
        borges.favicon.stats.resilience.calls
    );
    // Each boundary's call-duration histogram saw every logical call.
    assert_eq!(
        snap.histogram("borges_web_call_ms").unwrap().count,
        web.calls
    );
    assert_eq!(
        snap.histogram("borges_llm_ner_call_ms").unwrap().count,
        borges.ner.stats.resilience.calls
    );
}
