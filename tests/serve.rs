//! The serving keystones, end to end over real sockets.
//!
//! Three contracts from the serving layer (DESIGN.md §10), pinned here:
//!
//! 1. **Determinism** — identical requests return byte-identical
//!    responses across worker-pool sizes, and before/after an LRU
//!    eviction. The serving layer adds no nondeterminism on top of the
//!    pipeline's. The one schedule-dependent header — the request id —
//!    is stripped by [`ClientResponse::canonical_raw`] before
//!    comparison; everything else must match byte for byte.
//! 2. **Hot-swap atomicity** — readers hammering the server during an
//!    `Arc` swap see the old world or the new world, never a blend;
//!    the world's epoch stamps every body, making a blend detectable.
//! 3. **Liveness accounting** — queue overflow sheds with `503` +
//!    `Retry-After`, graceful shutdown drains every queued connection,
//!    and `shed + served == accepted` holds on the final ledger.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use borges_core::Borges;
use borges_llm::SimLlm;
use borges_serve::{ServeClient, Server, ServerConfig};
use borges_synthnet::{churn, GeneratorConfig, SyntheticInternet};
use borges_websim::SimWebClient;

fn world_pair() -> (SyntheticInternet, SyntheticInternet) {
    let t0 = SyntheticInternet::generate(&GeneratorConfig::tiny(5));
    let (t1, _) = churn(&t0, 10.0, 23);
    (t0, t1)
}

fn compile(world: &SyntheticInternet) -> Borges {
    let llm = SimLlm::flawless();
    Borges::run(
        &world.whois,
        &world.pdb,
        SimWebClient::browser(&world.web),
        &llm,
    )
}

fn start(borges: Borges, threads: usize, queue_depth: usize, lru: usize) -> Server {
    let config = ServerConfig {
        threads,
        queue_depth,
        lru_capacity: lru,
        read_timeout: Duration::from_millis(700),
        ..ServerConfig::default()
    };
    Server::start(config, borges, None).expect("bind loopback")
}

/// The request set the determinism tests replay: every endpoint class,
/// several feature subsets, plus a 400 and a 404.
const PROBES: &[&str] = &[
    "/healthz",
    "/v1/coverage",
    "/v1/map/AS3356",
    "/v1/map/AS3356?features=none",
    "/v1/map/3356?features=oid_p,rr",
    "/v1/org/AS3356",
    "/v1/org/209?features=na",
    "/v1/evidence/AS3356/AS209",
    "/v1/map/not-an-asn",
    "/v1/map/AS4294967294",
    "/no/such/route",
];

#[test]
fn identical_requests_are_byte_identical_across_worker_counts() {
    let borges = compile(&world_pair().0);
    let single = start(borges.clone(), 1, 32, 16);
    let pooled = start(borges, 4, 32, 16);
    let client1 = ServeClient::new(single.local_addr());
    let client4 = ServeClient::new(pooled.local_addr());

    // `/healthz` reports the configured pool size — the one field that
    // *should* differ between a 1- and a 4-worker server. Mask it (the
    // ledger fields stay in the comparison: both servers see the same
    // request sequence, so they must agree).
    let mask_workers = |raw: &[u8]| {
        String::from_utf8_lossy(raw)
            .replace("\"workers\":1,", "\"workers\":_,")
            .replace("\"workers\":4,", "\"workers\":_,")
    };
    for probe in PROBES {
        let a = client1.get(probe).expect("single-worker response");
        let b = client4.get(probe).expect("pooled response");
        assert_eq!(
            mask_workers(&a.canonical_raw()),
            mask_workers(&b.canonical_raw()),
            "{probe} differed between 1 and 4 workers:\n{}\nvs\n{}",
            String::from_utf8_lossy(&a.raw),
            String::from_utf8_lossy(&b.raw)
        );
        // Repetition on the same server is also byte-stable (second
        // hit is LRU-warm — the cache must not change the bytes).
        // `/healthz` is exempt: its body embeds the accept ledger,
        // which advances with every request by design.
        let again = client4.get(probe).expect("repeat response");
        if *probe != "/healthz" {
            assert_eq!(
                a.canonical_raw(),
                again.canonical_raw(),
                "{probe} unstable across repeats"
            );
        }
    }
    single.stop();
    pooled.stop();
}

#[test]
fn lru_eviction_does_not_change_bytes_and_counters_add_up() {
    let borges = compile(&world_pair().0);
    // Capacity 2: the third feature subset evicts the first.
    let server = start(borges, 2, 32, 2);
    let client = ServeClient::new(server.local_addr());

    let subset_a = "/v1/map/AS3356?features=none";
    let subset_b = "/v1/map/AS3356?features=oid_p";
    let subset_c = "/v1/map/AS3356?features=rr,favicons";

    let first = client.get(subset_a).expect("cold A");
    let warm = client.get(subset_a).expect("warm A");
    assert_eq!(
        first.canonical_raw(),
        warm.canonical_raw(),
        "warm hit must not change bytes"
    );
    client.get(subset_b).expect("cold B");
    client.get(subset_c).expect("cold C evicts A");
    let after_eviction = client.get(subset_a).expect("A rematerialized");
    assert_eq!(
        first.canonical_raw(),
        after_eviction.canonical_raw(),
        "bytes changed across an LRU eviction"
    );

    let ledger = server.stop();
    // 5 feature-subset materializations requested: A cold, A warm,
    // B cold, C cold (evicting A), A cold again (evicting B).
    assert_eq!(ledger.counter("borges_serve_lru_hits_total"), 1);
    assert_eq!(ledger.counter("borges_serve_lru_misses_total"), 4);
    assert_eq!(ledger.counter("borges_serve_lru_evictions_total"), 2);
}

#[test]
fn hot_swap_under_concurrent_load_never_serves_a_mixed_world() {
    let (t0, t1) = world_pair();
    let before = compile(&t0);
    let after = compile(&t1);

    let server = start(before, 4, 64, 16);
    let addr = server.local_addr();

    // The reference bodies for both worlds, captured from quiet
    // moments: epoch 0 before the swap, epoch 1 after.
    let probe = "/v1/map/AS3356?features=all";
    let client = ServeClient::new(addr);
    let body_epoch0 = client.get(probe).expect("pre-swap probe").canonical_raw();

    let stop_flag = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let stop = stop_flag.clone();
            std::thread::spawn(move || {
                let client = ServeClient::new(addr);
                let mut bodies = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    bodies.push(client.get(probe).expect("reader probe").canonical_raw());
                }
                bodies
            })
        })
        .collect();

    // Let the readers get going, swap mid-flight, let them keep going.
    std::thread::sleep(Duration::from_millis(100));
    let epoch = server.install(after);
    assert_eq!(epoch, 1);
    std::thread::sleep(Duration::from_millis(100));
    stop_flag.store(true, Ordering::Relaxed);

    let body_epoch1 = client.get(probe).expect("post-swap probe").canonical_raw();
    assert_ne!(
        body_epoch0, body_epoch1,
        "epochs must be distinguishable for the test to mean anything"
    );

    let mut saw_old = false;
    let mut saw_new = false;
    for handle in readers {
        for body in handle.join().expect("reader thread") {
            if body == body_epoch0 {
                saw_old = true;
            } else if body == body_epoch1 {
                saw_new = true;
            } else {
                panic!(
                    "mixed-world body observed during swap:\n{}",
                    String::from_utf8_lossy(&body)
                );
            }
        }
    }
    // Both worlds were actually observed — the swap happened under
    // load, not before or after it.
    assert!(saw_old, "no pre-swap response observed");
    assert!(saw_new, "no post-swap response observed");
    server.stop();
}

#[test]
fn queue_overflow_sheds_503_and_the_ledger_balances() {
    let borges = compile(&world_pair().0);
    // One worker, queue depth one: a held connection plus a queued one
    // saturate the server completely.
    let server = start(borges, 1, 1, 16);
    let addr = server.local_addr();

    // Plug the single worker: connect and send nothing. The worker
    // blocks in the read until the 700 ms timeout.
    let plug_worker = TcpStream::connect(addr).expect("plug connect");
    std::thread::sleep(Duration::from_millis(150));
    // Fill the queue's single slot the same way.
    let plug_queue = TcpStream::connect(addr).expect("queue connect");
    std::thread::sleep(Duration::from_millis(150));

    // Every further connection must be refused on the spot.
    let mut shed_seen = 0;
    for _ in 0..3 {
        let mut stream = TcpStream::connect(addr).expect("overflow connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        // The accept thread does not read the request before shedding.
        let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).expect("shed response");
        let text = String::from_utf8_lossy(&raw);
        assert!(
            text.starts_with("HTTP/1.1 503"),
            "expected shed, got {text}"
        );
        assert!(text.contains("Retry-After: 1"), "{text}");
        shed_seen += 1;
    }
    assert_eq!(shed_seen, 3);

    // Release the plugs; the held and queued connections resolve (408s
    // on silent sockets — still counted served), and the server works
    // again.
    drop(plug_worker);
    drop(plug_queue);
    // Give the worker a beat to observe both EOFs and clear the queue,
    // so the health check below is queued rather than shed.
    std::thread::sleep(Duration::from_millis(400));
    let client = ServeClient::new(addr);
    let health = client.get("/healthz").expect("healthy after shedding");
    assert_eq!(health.status, 200);

    let ledger = server.stop();
    let accepted = ledger.counter("borges_serve_accepted_total");
    let served = ledger.counter("borges_serve_served_total");
    let shed = ledger.counter("borges_serve_shed_total");
    assert_eq!(shed, 3, "exactly the overflow connections shed");
    // 2 plugs + 1 health check worked their way through a worker.
    assert_eq!(served, 3);
    assert_eq!(
        shed + served,
        accepted,
        "accept ledger must balance: {shed} shed + {served} served != {accepted} accepted"
    );
}

#[test]
fn graceful_shutdown_drains_every_queued_request() {
    let borges = compile(&world_pair().0);
    let server = start(borges, 1, 8, 16);
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();

    // Plug the single worker so subsequent requests pile up in the
    // queue, then trigger shutdown while they are still queued.
    let plug = TcpStream::connect(addr).expect("plug connect");
    std::thread::sleep(Duration::from_millis(100));

    let clients: Vec<_> = (0..5)
        .map(|i| {
            std::thread::spawn(move || {
                let client = ServeClient::new(addr).with_timeout(Duration::from_secs(10));
                (i, client.get("/healthz").expect("queued request answered"))
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(200));

    shutdown.shutdown();

    // Every request accepted before the shutdown still gets its
    // answer: the drain contract.
    for handle in clients {
        let (i, response) = handle.join().expect("client thread");
        assert_eq!(response.status, 200, "queued request {i} dropped in drain");
    }
    drop(plug);

    let ledger = server.wait();
    assert_eq!(
        ledger.counter("borges_serve_shed_total") + ledger.counter("borges_serve_served_total"),
        ledger.counter("borges_serve_accepted_total"),
        "drain must not lose accepted connections"
    );
    assert_eq!(ledger.counter("borges_serve_requests_healthz_total"), 5);
}

#[test]
fn metrics_expose_the_ledger_and_count_themselves() {
    let borges = compile(&world_pair().0);
    let server = start(borges, 2, 32, 16);
    let client = ServeClient::new(server.local_addr());

    client.get("/healthz").expect("health");
    client.get("/v1/map/AS3356").expect("map");
    let metrics = client.get("/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    let text = metrics.body_text().to_string();

    // Prometheus exposition: HELP/TYPE pairs, and the serving counters
    // present. The /metrics request must have counted itself before
    // rendering, so the ledger balances *inside the body*.
    assert!(
        text.contains("# TYPE borges_serve_accepted_total counter"),
        "{text}"
    );
    // A counter that never fired is legitimately absent — read as 0.
    let counter = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    assert_eq!(
        counter("borges_serve_accepted_total"),
        counter("borges_serve_served_total") + counter("borges_serve_shed_total"),
        "exposition must balance including the scrape itself:\n{text}"
    );
    assert_eq!(counter("borges_serve_requests_healthz_total"), 1);
    assert_eq!(counter("borges_serve_requests_map_total"), 1);
    assert_eq!(counter("borges_serve_requests_metrics_total"), 1);
    server.stop();
}
