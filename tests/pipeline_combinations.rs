//! Table 6 invariants: behaviour of the 16 feature combinations.

use borges_core::orgfactor::organization_factor;
use borges_core::pipeline::{Borges, FeatureSet};
use borges_llm::SimLlm;
use borges_synthnet::{GeneratorConfig, SyntheticInternet};
use borges_websim::SimWebClient;

fn pipeline() -> (usize, Borges) {
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(99));
    let llm = SimLlm::new(99);
    let borges = Borges::run(
        &world.whois,
        &world.pdb,
        SimWebClient::browser(&world.web),
        &llm,
    );
    let n = borges.universe().len();
    (n, borges)
}

fn subset(a: FeatureSet, b: FeatureSet) -> bool {
    (!a.oid_p || b.oid_p) && (!a.na || b.na) && (!a.rr || b.rr) && (!a.favicons || b.favicons)
}

#[test]
fn theta_is_monotone_over_feature_inclusion() {
    let (n, borges) = pipeline();
    let combos = FeatureSet::all_combinations();
    let thetas: Vec<f64> = combos
        .iter()
        .map(|f| organization_factor(&borges.mapping(*f), n))
        .collect();
    for (i, a) in combos.iter().enumerate() {
        for (j, b) in combos.iter().enumerate() {
            if subset(*a, *b) {
                assert!(
                    thetas[j] >= thetas[i] - 1e-12,
                    "θ({}) = {} < θ({}) = {} despite feature inclusion",
                    b.label(),
                    thetas[j],
                    a.label(),
                    thetas[i]
                );
            }
        }
    }
}

#[test]
fn org_count_is_antitone_over_feature_inclusion() {
    let (_, borges) = pipeline();
    let combos = FeatureSet::all_combinations();
    let counts: Vec<usize> = combos
        .iter()
        .map(|f| borges.mapping(*f).org_count())
        .collect();
    for (i, a) in combos.iter().enumerate() {
        for (j, b) in combos.iter().enumerate() {
            if subset(*a, *b) {
                assert!(
                    counts[j] <= counts[i],
                    "more features must never split organizations: {} vs {}",
                    a.label(),
                    b.label()
                );
            }
        }
    }
}

#[test]
fn every_combination_covers_the_same_universe() {
    let (n, borges) = pipeline();
    for features in FeatureSet::all_combinations() {
        let m = borges.mapping(features);
        assert_eq!(m.asn_count(), n, "{} lost ASNs", features.label());
    }
}

#[test]
fn every_feature_strictly_improves_theta_alone() {
    let (n, borges) = pipeline();
    let base = organization_factor(&borges.mapping(FeatureSet::NONE), n);
    for features in [
        FeatureSet {
            oid_p: true,
            ..FeatureSet::NONE
        },
        FeatureSet {
            na: true,
            ..FeatureSet::NONE
        },
        FeatureSet {
            rr: true,
            ..FeatureSet::NONE
        },
        FeatureSet {
            favicons: true,
            ..FeatureSet::NONE
        },
    ] {
        let theta = organization_factor(&borges.mapping(features), n);
        assert!(
            theta > base,
            "{} alone should add merges over the baseline (θ {base} → {theta})",
            features.label()
        );
    }
}

#[test]
fn full_borges_is_the_best_combination() {
    let (n, borges) = pipeline();
    let full = organization_factor(&borges.mapping(FeatureSet::ALL), n);
    for features in FeatureSet::all_combinations() {
        let theta = organization_factor(&borges.mapping(features), n);
        assert!(theta <= full + 1e-12, "{} beats ALL?", features.label());
    }
}

#[test]
fn mapping_materialization_is_pure() {
    let (_, borges) = pipeline();
    for features in FeatureSet::all_combinations() {
        assert_eq!(
            borges.mapping(features),
            borges.mapping(features),
            "mapping({}) not deterministic",
            features.label()
        );
    }
}
