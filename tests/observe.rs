//! The observability keystones, end to end over real sockets.
//!
//! PR 8's flight-recorder layer must be *visible* without becoming
//! *load-bearing*: request ids, durations, and the debug endpoints ride
//! on runtime streams, while everything canonical — response bodies,
//! the request-id-free raw form, `/metrics` counter values, access-log
//! records minus their schedule-dependent fields — stays byte-identical
//! across worker counts. Pinned here:
//!
//! 1. **Request ids** — every response echoes `x-borges-request-id`,
//!    ids are unique for the life of the process, and stripping that
//!    one header yields identical bytes across 1 vs 4 workers.
//! 2. **Counter determinism** — `/metrics` counter *values* (not just
//!    shapes) match across worker counts for an identical request
//!    sequence; only the latency histograms are wall-clock-dependent.
//! 3. **Access-log determinism** — the canonical form of every access
//!    record (id and duration fields dropped) is byte-identical across
//!    worker counts, and every record carries the 64-hex digest of the
//!    world that answered it.
//! 4. **Ledger closure** — `/metrics` as the final request before the
//!    drain still balances `shed + served == accepted` inside its own
//!    body, and the post-drain snapshot agrees with that body.
//! 5. **Flight recorder** — the debug endpoints reflect real traffic,
//!    a debug scrape excludes itself, the ring wraps at capacity, and
//!    the event journal tells the install/reload story.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use borges_core::Borges;
use borges_llm::SimLlm;
use borges_serve::{ServeClient, Server, ServerConfig, ServerHooks};
use borges_synthnet::{GeneratorConfig, SyntheticInternet};
use borges_telemetry::AccessRecord;
use borges_websim::SimWebClient;

fn compile() -> Borges {
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(7));
    let llm = SimLlm::flawless();
    Borges::run(
        &world.whois,
        &world.pdb,
        SimWebClient::browser(&world.web),
        &llm,
    )
}

fn config(threads: usize) -> ServerConfig {
    ServerConfig {
        threads,
        queue_depth: 32,
        lru_capacity: 16,
        read_timeout: Duration::from_millis(700),
        ..ServerConfig::default()
    }
}

/// The replayed request sequence: every endpoint class the access log
/// can describe, including a 400, a 404, and a wrong-method 405.
const PROBES: &[&str] = &[
    "/healthz",
    "/v1/coverage",
    "/v1/map/AS3356?features=all",
    "/v1/map/AS3356?features=none",
    "/v1/org/AS3356",
    "/v1/evidence/AS3356/AS209",
    "/v1/map/not-an-asn",
    "/no/such/route",
];

/// Pulls `"world_digest":"…"` out of a healthz body.
fn healthz_digest(body: &str) -> String {
    let start = body
        .find("\"world_digest\":\"")
        .expect("healthz carries world_digest")
        + "\"world_digest\":\"".len();
    body[start..start + 64].to_string()
}

/// The `/metrics` body with every wall-clock-dependent line removed:
/// the latency histograms are the *only* family whose values may
/// legitimately differ between identical request sequences.
fn deterministic_metric_lines(body: &str) -> Vec<String> {
    body.lines()
        .filter(|line| !line.contains("borges_serve_latency_ms"))
        .map(|line| line.to_string())
        .collect()
}

#[test]
fn request_ids_are_echoed_unique_and_excluded_from_canonical_bytes() {
    let server = Server::start(config(4), compile(), None).expect("bind loopback");
    let client = ServeClient::new(server.local_addr());

    let mut seen_ids = Vec::new();
    for _ in 0..3 {
        for probe in PROBES {
            let response = client.get(probe).expect("probe response");
            let id = response
                .headers
                .get("x-borges-request-id")
                .unwrap_or_else(|| panic!("{probe} response missing x-borges-request-id"))
                .clone();
            // Worker ids are `w<worker>-<seq>`: monotone per worker,
            // unique for the life of the process.
            assert!(
                id.starts_with('w') && id.contains('-'),
                "unexpected id shape {id:?}"
            );
            assert!(!seen_ids.contains(&id), "duplicate request id {id}");
            seen_ids.push(id);
            // The id is the one schedule-dependent header: stripping it
            // must make repeats of the same probe byte-identical.
            // `/healthz` is exempt — its body embeds the accept ledger,
            // which advances with every request by design.
            let again = client.get(probe).expect("repeat response");
            assert_ne!(
                response.headers.get("x-borges-request-id"),
                again.headers.get("x-borges-request-id"),
                "{probe} repeated an id"
            );
            if *probe != "/healthz" {
                assert_eq!(
                    response.canonical_raw(),
                    again.canonical_raw(),
                    "{probe} canonical bytes unstable across repeats"
                );
            }
            seen_ids.push(again.headers["x-borges-request-id"].clone());
        }
    }
    server.stop();
}

#[test]
fn metrics_counter_values_are_identical_across_worker_counts() {
    let borges = compile();
    let single = Server::start(config(1), borges.clone(), None).expect("bind single");
    let pooled = Server::start(config(4), borges, None).expect("bind pooled");
    let client1 = ServeClient::new(single.local_addr());
    let client4 = ServeClient::new(pooled.local_addr());

    let mut bodies = Vec::new();
    for client in [&client1, &client4] {
        for probe in PROBES {
            client.get(probe).expect("probe response");
        }
        let metrics = client.get("/metrics").expect("metrics scrape");
        assert_eq!(metrics.status, 200);
        bodies.push(metrics.body_text().to_string());
    }
    // Counter families — the request ledger, per-endpoint counts, LRU
    // traffic, status codes, the digest stamp — must agree value for
    // value; only the latency histograms may differ.
    assert_eq!(
        deterministic_metric_lines(&bodies[0]),
        deterministic_metric_lines(&bodies[1]),
        "/metrics counter values diverged between 1 and 4 workers:\n{}\nvs\n{}",
        bodies[0],
        bodies[1]
    );
    single.stop();
    pooled.stop();
}

/// Runs the probe sequence against a `threads`-worker server whose
/// access-log hook captures every record, returning the captured
/// records plus the serving world's digest.
fn capture_access_records(threads: usize, borges: Borges) -> (Vec<AccessRecord>, String) {
    let captured: Arc<Mutex<Vec<AccessRecord>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = captured.clone();
    let hooks = ServerHooks {
        access_log: Some(Box::new(move |record| {
            sink.lock().unwrap().push(record.clone());
        })),
        slow: None,
    };
    let server = Server::start_with(config(threads), borges, None, hooks).expect("bind loopback");
    let client = ServeClient::new(server.local_addr());
    let digest = healthz_digest(client.get("/healthz").expect("healthz").body_text());
    for probe in PROBES {
        client.get(probe).expect("probe response");
    }
    server.stop();
    let records = captured.lock().unwrap().clone();
    (records, digest)
}

#[test]
fn access_log_canonical_records_are_identical_across_worker_counts() {
    let borges = compile();
    let (records1, digest1) = capture_access_records(1, borges.clone());
    let (records4, digest4) = capture_access_records(4, borges);
    assert_eq!(digest1, digest4, "same bundle must serve the same world");

    // Every record carries the digest of the world that answered it —
    // including error records, which never resolved a route.
    assert_eq!(records1.len(), PROBES.len() + 1, "healthz + probes");
    for record in records1.iter().chain(records4.iter()) {
        assert_eq!(
            record.world, digest1,
            "record {} answered by an unexpected world",
            record.id
        );
        assert_eq!(record.epoch, 0);
    }

    // Dropping the schedule-dependent fields (id, duration) leaves
    // records that must match byte for byte across worker counts.
    // Records land in *completion* order — a pooled worker can finish
    // its bookkeeping after the client has already moved on — so the
    // comparison is order-free.
    let mut canonical1: Vec<String> = records1.iter().map(|r| r.canonical_json()).collect();
    let mut canonical4: Vec<String> = records4.iter().map(|r| r.canonical_json()).collect();
    canonical1.sort();
    canonical4.sort();
    assert_eq!(
        canonical1, canonical4,
        "canonical access records diverged between 1 and 4 workers"
    );
    // A sequential client never queues behind itself.
    assert!(records1.iter().all(|r| r.queue_depth == 0));
}

#[test]
fn metrics_as_the_final_request_still_balances_its_own_ledger() {
    let server = Server::start(config(2), compile(), None).expect("bind loopback");
    let client = ServeClient::new(server.local_addr());
    for probe in PROBES {
        client.get(probe).expect("probe response");
    }
    // The very last request before the drain is the scrape itself: the
    // body must already count it on both sides of the ledger.
    let metrics = client.get("/metrics").expect("final scrape");
    let body = metrics.body_text().to_string();
    let counter = |name: &str| -> u64 {
        body.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    let accepted = counter("borges_serve_accepted_total");
    let served = counter("borges_serve_served_total");
    let shed = counter("borges_serve_shed_total");
    assert_eq!(accepted, (PROBES.len() + 1) as u64, "{body}");
    assert_eq!(
        shed + served,
        accepted,
        "scrape body must balance including itself:\n{body}"
    );

    // Nothing follows the scrape, so the closed post-drain ledger must
    // agree with the body exactly.
    let ledger = server.stop();
    assert_eq!(ledger.counter("borges_serve_accepted_total"), accepted);
    assert_eq!(ledger.counter("borges_serve_served_total"), served);
    assert_eq!(ledger.counter("borges_serve_shed_total"), shed);
}

#[test]
fn debug_endpoints_reflect_traffic_and_a_scrape_excludes_itself() {
    // One worker: the recorder push happens after the response is on
    // the wire, so only a strictly serial pool makes "the scrape sees
    // exactly the prior traffic" an equality rather than a race.
    let server = Server::start(config(1), compile(), None).expect("bind loopback");
    let client = ServeClient::new(server.local_addr());
    for probe in PROBES {
        client.get(probe).expect("probe response");
    }

    // The recorder snapshot is taken before the debug request's own
    // record is pushed, so the scrape sees exactly the prior traffic.
    let requests = client.get("/v1/admin/debug/requests").expect("debug");
    assert_eq!(requests.status, 200);
    let body = requests.body_text();
    assert!(
        body.starts_with(&format!("{{\"total\":{},", PROBES.len())),
        "{body}"
    );
    for probe in PROBES {
        let expected = format!("\"path\":\"{}\"", probe);
        assert!(body.contains(&expected), "{probe} missing from {body}");
    }
    assert!(!body.contains("debug/requests\""), "scrape counted itself");

    // threshold_ms=0 admits everything ever recorded; a non-numeric
    // threshold is a 400, not a default.
    let slow = client
        .get("/v1/admin/debug/slow?threshold_ms=0")
        .expect("slow scrape");
    assert_eq!(slow.status, 200);
    assert!(
        slow.body_text().starts_with(&format!(
            "{{\"threshold_ms\":0,\"total\":{},",
            PROBES.len() + 1
        )),
        "{}",
        slow.body_text()
    );
    let bad = client
        .get("/v1/admin/debug/slow?threshold_ms=soon")
        .expect("bad threshold");
    assert_eq!(bad.status, 400);

    // The journal opens with the boot install and appends on hot-swap.
    let events = client.get("/v1/admin/debug/events").expect("events");
    assert!(
        events.body_text().contains("\"kind\":\"world_installed\""),
        "{}",
        events.body_text()
    );
    assert!(events.body_text().contains("epoch 0 installed, digest "));
    server.install(compile());
    let events = client.get("/v1/admin/debug/events").expect("events again");
    assert!(events.body_text().contains("epoch 1 installed, digest "));
    server.stop();
}

#[test]
fn flight_recorder_ring_wraps_at_capacity() {
    let config = ServerConfig {
        threads: 1,
        recorder_capacity: 4,
        read_timeout: Duration::from_millis(700),
        ..ServerConfig::default()
    };
    let server = Server::start(config, compile(), None).expect("bind loopback");
    let client = ServeClient::new(server.local_addr());
    for i in 0..10 {
        // Distinct paths so the retained window is recognizable.
        client
            .get(&format!("/v1/map/AS{}", 3356 + i))
            .expect("probe response");
    }
    let scrape = client.get("/v1/admin/debug/requests").expect("debug");
    let body = scrape.body_text();
    // All ten were observed, only the last four retained.
    assert!(body.starts_with("{\"total\":10,\"capacity\":4,"), "{body}");
    for kept in 6..10 {
        let expected = format!("\"path\":\"/v1/map/AS{}\"", 3356 + kept);
        assert!(body.contains(&expected), "{expected} evicted early: {body}");
    }
    for evicted in 0..6 {
        let expected = format!("\"path\":\"/v1/map/AS{}\"", 3356 + evicted);
        assert!(!body.contains(&expected), "{expected} survived: {body}");
    }
    server.stop();
}

#[test]
fn shed_responses_carry_request_ids_and_digest_bearing_records() {
    use std::io::{Read, Write};
    use std::net::TcpStream;

    let captured: Arc<Mutex<Vec<AccessRecord>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = captured.clone();
    let hooks = ServerHooks {
        access_log: Some(Box::new(move |record| {
            sink.lock().unwrap().push(record.clone());
        })),
        slow: None,
    };
    let config = ServerConfig {
        threads: 1,
        queue_depth: 1,
        read_timeout: Duration::from_millis(700),
        ..ServerConfig::default()
    };
    let server = Server::start_with(config, compile(), None, hooks).expect("bind loopback");
    let addr = server.local_addr();

    // Plug the lone worker and the single queue slot with silent
    // connections, then force a shed.
    let plug_worker = TcpStream::connect(addr).expect("plug connect");
    std::thread::sleep(Duration::from_millis(150));
    let plug_queue = TcpStream::connect(addr).expect("queue connect");
    std::thread::sleep(Duration::from_millis(150));
    let mut stream = TcpStream::connect(addr).expect("overflow connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("shed response");
    let shed = borges_serve::client::parse_response(&raw).expect("parse shed");
    assert_eq!(shed.status, 503);
    // Sheds are numbered by the accept thread: `a-1`, `a-2`, ...
    assert_eq!(shed.headers["x-borges-request-id"], "a-1");

    drop(plug_worker);
    drop(plug_queue);
    std::thread::sleep(Duration::from_millis(400));
    ServeClient::new(addr).get("/healthz").expect("recovered");
    server.stop();

    let records = captured.lock().unwrap().clone();
    let shed_record = records
        .iter()
        .find(|r| r.id == "a-1")
        .expect("shed access record");
    // A shed was never read — no method or path — but it still names
    // the world that refused it.
    assert_eq!(shed_record.method, "-");
    assert_eq!(shed_record.path, "-");
    assert_eq!(shed_record.status, 503);
    assert_eq!(shed_record.world.len(), 64);
    // Shed at a full queue: depth one, and the lru never engaged.
    assert_eq!(shed_record.queue_depth, 1);
    assert_eq!(shed_record.lru, "none");
    // Every record in the run is digest-bearing, shed or served.
    assert!(records.iter().all(|r| r.world.len() == 64));
}
