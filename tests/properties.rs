//! Property-based tests over the core data structures and invariants.

use borges_core::orgfactor::organization_factor;
use borges_core::{AsOrgMapping, UnionFind};
use borges_types::{Asn, FaviconHash, Url};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn asn_strategy() -> impl Strategy<Value = Asn> {
    any::<u32>().prop_map(Asn::new)
}

/// Random partitions of a small ASN space (groups are disjoint by
/// construction: indices chunked).
fn partition_strategy() -> impl Strategy<Value = Vec<Vec<Asn>>> {
    (1usize..60, any::<u64>()).prop_map(|(n, seed)| {
        let mut groups: Vec<Vec<Asn>> = Vec::new();
        let mut current: Vec<Asn> = Vec::new();
        let mut state = seed | 1;
        for i in 0..n {
            current.push(Asn::new(i as u32 + 1));
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            if state % 3 == 0 {
                groups.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            groups.push(current);
        }
        groups
    })
}

proptest! {
    #[test]
    fn asn_display_parse_roundtrip(asn in asn_strategy()) {
        let shown = asn.to_string();
        let parsed: Asn = shown.parse().unwrap();
        prop_assert_eq!(parsed, asn);
        let bare: Asn = asn.value().to_string().parse().unwrap();
        prop_assert_eq!(bare, asn);
    }

    #[test]
    fn asn_special_ranges_are_disjoint_from_routable(asn in asn_strategy()) {
        if asn.is_routable() {
            prop_assert!(!asn.is_private());
            prop_assert!(!asn.is_documentation());
            prop_assert!(!asn.is_reserved());
        }
    }

    #[test]
    fn url_roundtrips_through_display(
        label_a in "[a-z][a-z0-9]{0,8}",
        label_b in "[a-z][a-z0-9]{0,8}",
        tld in prop::sample::select(vec!["com", "net", "cl", "co.uk", "com.br"]),
        path in "[a-z0-9/]{0,12}",
        https in any::<bool>(),
    ) {
        let scheme = if https { "https" } else { "http" };
        let raw = format!("{scheme}://{label_a}.{label_b}.{tld}/{path}");
        let url: Url = raw.parse().unwrap();
        let reparsed: Url = url.to_string().parse().unwrap();
        prop_assert_eq!(&url, &reparsed);
        // Canonical equality is an equivalence on the canonical form.
        prop_assert_eq!(url.canonical(), reparsed.canonical());
    }

    #[test]
    fn favicon_hash_is_deterministic_and_sensitive(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let h1 = FaviconHash::of_bytes(&bytes);
        let h2 = FaviconHash::of_bytes(&bytes);
        prop_assert_eq!(h1, h2);
        let mut extended = bytes.clone();
        extended.push(0xAB);
        prop_assert_ne!(h1, FaviconHash::of_bytes(&extended));
    }

    #[test]
    fn union_find_groups_partition_the_universe(
        unions in prop::collection::vec((1u32..40, 1u32..40), 0..80)
    ) {
        let mut uf = UnionFind::new();
        let mut seen: BTreeSet<Asn> = BTreeSet::new();
        for (a, b) in &unions {
            uf.union(Asn::new(*a), Asn::new(*b));
            seen.insert(Asn::new(*a));
            seen.insert(Asn::new(*b));
        }
        let groups = uf.clone().into_groups();
        // Partition: disjoint cover of exactly the seen elements.
        let mut covered = BTreeSet::new();
        for group in &groups {
            for asn in group {
                prop_assert!(covered.insert(*asn), "element in two groups");
            }
        }
        prop_assert_eq!(covered, seen);
        // same_set agrees with group membership.
        for group in &groups {
            for pair in group.windows(2) {
                prop_assert!(uf.same_set(pair[0], pair[1]));
            }
        }
    }

    #[test]
    fn union_find_is_order_insensitive(
        mut unions in prop::collection::vec((1u32..30, 1u32..30), 1..40)
    ) {
        let run = |pairs: &[(u32, u32)]| {
            let mut uf = UnionFind::new();
            for (a, b) in pairs {
                uf.union(Asn::new(*a), Asn::new(*b));
            }
            uf.into_groups()
        };
        let forward = run(&unions);
        unions.reverse();
        let backward = run(&unions);
        prop_assert_eq!(forward, backward);
    }

    #[test]
    fn mapping_invariants(groups in partition_strategy()) {
        let expected_asns: usize = groups.iter().map(Vec::len).sum();
        let expected_orgs = groups.iter().filter(|g| !g.is_empty()).count();
        let mapping = AsOrgMapping::from_groups(groups.clone());
        prop_assert_eq!(mapping.asn_count(), expected_asns);
        prop_assert_eq!(mapping.org_count(), expected_orgs);
        let sizes = mapping.sizes_desc();
        prop_assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
        prop_assert_eq!(sizes.iter().sum::<usize>(), expected_asns);
        for group in &groups {
            for pair in group.windows(2) {
                prop_assert!(mapping.same_org(pair[0], pair[1]));
            }
        }
    }

    #[test]
    fn theta_bounds_and_merge_monotonicity(groups in partition_strategy()) {
        let mapping = AsOrgMapping::from_groups(groups.clone());
        let n = mapping.asn_count();
        prop_assume!(n >= 2);
        let theta = organization_factor(&mapping, n);
        prop_assert!((0.0..0.5).contains(&theta), "θ = {theta} out of range");

        // Merging the first two groups can only increase θ.
        if groups.len() >= 2 {
            let mut merged: Vec<Vec<Asn>> = groups.clone();
            let tail = merged.remove(1);
            merged[0].extend(tail);
            let merged_mapping = AsOrgMapping::from_groups(merged);
            let merged_theta = organization_factor(&merged_mapping, n);
            prop_assert!(
                merged_theta >= theta - 1e-12,
                "merge decreased θ: {theta} → {merged_theta}"
            );
        }
    }

    #[test]
    fn extraction_respects_the_candidate_universe(
        notes in "[ -~]{0,120}",
        aka in "[ -~]{0,40}",
    ) {
        // Whatever the model extracts must be literally present in the
        // text as a number — the §4.2 output-filter invariant holds for
        // the base extraction model by construction.
        use borges_llm::ner::{all_routable_numbers, extract_siblings};
        let subject = Asn::new(1);
        let allowed: BTreeSet<u32> =
            all_routable_numbers(&format!("{notes}\n{aka}")).into_iter().collect();
        for extraction in extract_siblings(subject, &notes, &aka) {
            prop_assert!(
                allowed.contains(&extraction.asn.value()),
                "extracted {} not present in text {notes:?}/{aka:?}",
                extraction.asn
            );
        }
    }
}
