//! The streaming-ingest determinism contract, pinned end to end.
//!
//! `Borges::run_streaming` overlaps the crawl with NER and evidence
//! compilation behind a bounded-concurrency, rate-limited scheduler —
//! and must be **invisible** in every canonical output. Three contracts
//! (DESIGN.md §14):
//!
//! 1. **Schedule-independence.** Mapfiles (all 16 feature combinations),
//!    the canonical trace journal, and the metrics snapshot are
//!    byte-identical to the staged run at every worker count, in-flight
//!    cap, and per-host rate limit.
//! 2. **Chaos-independence.** Under recoverable transport faults (the
//!    `tests/chaos.rs` model) the streaming resilient run reproduces the
//!    staged resilient run bit for bit, and coverage stays complete.
//! 3. **Accounting.** Under unrecoverable outages the run still
//!    completes with `abandoned + succeeded == attempted` per feature,
//!    and the scheduler's own ledger rows balance: per-worker completion
//!    counts sum to the entry count.

use borges_core::mapfile;
use borges_core::ner::NerConfig;
use borges_core::pipeline::{Borges, FeatureSet, StreamOptions};
use borges_llm::{FlakyModel, SimLlm};
use borges_resilience::{EpisodePlan, RetryPolicy};
use borges_synthnet::{GeneratorConfig, SyntheticInternet};
use borges_telemetry::{ingest, RunReport, Telemetry, Verbosity};
use borges_websim::{FlakyWebClient, Scraper, SimWebClient};

fn world() -> SyntheticInternet {
    SyntheticInternet::generate(&GeneratorConfig::tiny(17))
}

fn opts(
    workers: usize,
    max_in_flight: usize,
    per_host_rps: Option<f64>,
    policy: Option<RetryPolicy>,
    threads: usize,
) -> StreamOptions {
    StreamOptions {
        workers,
        max_in_flight,
        per_host_rps,
        policy,
        threads,
        ..StreamOptions::default()
    }
}

/// Everything the determinism contract compares: the canonical trace,
/// the metrics exposition, and the serialized mapfile of every feature
/// combination.
fn fingerprint(borges: &Borges, tel: &Telemetry) -> (String, String, Vec<String>) {
    let maps = FeatureSet::all_combinations()
        .iter()
        .map(|&f| mapfile::serialize(&borges.mapping(f)))
        .collect();
    (
        tel.trace_jsonl_canonical(),
        tel.metrics_snapshot().to_prometheus(),
        maps,
    )
}

#[test]
fn streaming_bare_run_is_byte_identical_to_staged() {
    let world = world();
    let llm = SimLlm::new(99);
    let tel = Telemetry::sim(Verbosity::Quiet);
    let staged = Borges::run_traced(
        &world.whois,
        &world.pdb,
        SimWebClient::browser(&world.web),
        &llm,
        &tel,
    );
    let reference = fingerprint(&staged, &tel);
    assert!(reference.0.contains("\"run/crawl\""), "{}", reference.0);

    for threads in [1, 4] {
        for (workers, max_in_flight, rps) in [
            (1, 1, None),
            (4, 2, None),
            (8, 8, Some(50.0)),
            (3, 7, Some(2.0)),
        ] {
            let tel = Telemetry::sim(Verbosity::Quiet);
            let streamed = Borges::run_streaming_traced(
                &world.whois,
                &world.pdb,
                SimWebClient::browser(&world.web),
                &llm,
                &opts(workers, max_in_flight, rps, None, threads),
                &tel,
            );
            assert_eq!(
                fingerprint(&streamed, &tel),
                reference,
                "streaming diverged at workers={workers} in_flight={max_in_flight} \
                 rps={rps:?} threads={threads}"
            );
        }
    }
}

#[test]
fn streaming_resilient_run_is_byte_identical_under_recoverable_chaos() {
    let world = world();
    for seed in 1..=3u64 {
        let policy = RetryPolicy::standard(seed);
        let tel = Telemetry::sim(Verbosity::Quiet);
        let staged = Borges::run_resilient_traced(
            &world.whois,
            &world.pdb,
            FlakyWebClient::new(
                SimWebClient::browser(&world.web),
                EpisodePlan::calibrated(seed),
            ),
            &FlakyModel::new(SimLlm::flawless(), EpisodePlan::calibrated(seed ^ 0xFACE)),
            policy,
            &tel,
        );
        let reference = fingerprint(&staged, &tel);

        for threads in [1, 4] {
            for (workers, max_in_flight, rps) in [(4, 4, None), (6, 3, Some(25.0))] {
                let tel = Telemetry::sim(Verbosity::Quiet);
                let llm =
                    FlakyModel::new(SimLlm::flawless(), EpisodePlan::calibrated(seed ^ 0xFACE));
                let streamed = Borges::run_streaming_traced(
                    &world.whois,
                    &world.pdb,
                    FlakyWebClient::new(
                        SimWebClient::browser(&world.web),
                        EpisodePlan::calibrated(seed),
                    ),
                    &llm,
                    &opts(workers, max_in_flight, rps, Some(policy), threads),
                    &tel,
                );
                assert_eq!(
                    fingerprint(&streamed, &tel),
                    reference,
                    "seed {seed}: streaming chaos diverged at workers={workers} \
                     in_flight={max_in_flight} rps={rps:?} threads={threads}"
                );
                let coverage = streamed.coverage();
                assert!(coverage.accounted(), "seed {seed}: ledger must balance");
                assert!(
                    coverage.complete(),
                    "seed {seed}: recoverable chaos must lose nothing"
                );
                assert!(
                    streamed.scrape_stats.resilience.recovered
                        + streamed.ner.stats.resilience.recovered
                        + streamed.favicon.stats.resilience.recovered
                        > 0,
                    "seed {seed}: the plan must actually have injected faults"
                );
            }
        }
    }
}

#[test]
fn streaming_outage_runs_account_for_every_loss() {
    // Permanent outages and no retry budget: equivalence to the staged
    // run is off the table (breaker open-window timing diverges under
    // per-call clocks — DESIGN.md §14), but the accounting contract
    // still holds and nothing is silently dropped.
    let world = world();
    let reference = Borges::run(
        &world.whois,
        &world.pdb,
        SimWebClient::browser(&world.web),
        &SimLlm::flawless(),
    )
    .full();
    for seed in 1..=3u64 {
        let llm = FlakyModel::new(SimLlm::flawless(), EpisodePlan::with_outages(seed ^ 0xFACE));
        let degraded = Borges::run_streaming(
            &world.whois,
            &world.pdb,
            FlakyWebClient::new(
                SimWebClient::browser(&world.web),
                EpisodePlan::with_outages(seed),
            ),
            &llm,
            &opts(4, 4, Some(10.0), Some(RetryPolicy::none()), 1),
        );
        let coverage = degraded.coverage();
        assert!(
            coverage.accounted(),
            "seed {seed}: abandoned + succeeded != attempted"
        );
        assert!(
            coverage.total_abandoned() > 0,
            "seed {seed}: outages must cost something"
        );
        // Partial evidence never invents a sibling relation.
        let full = degraded.full();
        assert_eq!(full.asn_count(), reference.asn_count(), "seed {seed}");
        for (_, members) in full.clusters() {
            for pair in members.windows(2) {
                assert!(
                    reference.same_org(pair[0], pair[1]),
                    "seed {seed}: degraded streaming run invented a merge {pair:?}"
                );
            }
        }
    }
}

#[test]
fn streaming_scheduler_ledger_rows_balance_and_roundtrip() {
    let world = world();
    let llm = SimLlm::new(99);
    let tel = Telemetry::sim(Verbosity::Quiet);
    let max_in_flight = 3;
    // A tight rate limit forces throttle stalls (virtual ones — pacing
    // runs on a SimClock, so the test never actually sleeps).
    let streamed = Borges::run_streaming_traced(
        &world.whois,
        &world.pdb,
        SimWebClient::browser(&world.web),
        &llm,
        &opts(4, max_in_flight, Some(0.5), None, 1),
        &tel,
    );
    let entries = world.pdb.nets().count() as u64;
    let timings = tel.worker_timings();

    let worker_total: u64 = timings
        .iter()
        .filter(|t| t.stage == ingest::WORKER_STAGE)
        .map(|t| t.items)
        .sum();
    assert_eq!(
        worker_total, entries,
        "per-worker completions must sum to the entry count"
    );
    let in_flight = timings
        .iter()
        .find(|t| t.stage == ingest::IN_FLIGHT_STAGE)
        .expect("in-flight high-water row");
    assert!((1..=max_in_flight as u64).contains(&in_flight.items));
    let throttle = timings
        .iter()
        .find(|t| t.stage == ingest::THROTTLE_STAGE)
        .expect("throttle row");
    assert!(
        throttle.items > 0 && throttle.elapsed_ms > 0,
        "a 0.5 rps limit over shared hosts must stall at least once"
    );
    assert!(timings.iter().any(|t| t.stage == ingest::REASSEMBLY_STAGE));

    // The rows survive the run-report JSON roundtrip (what the CI
    // ingest-equivalence job greps).
    let json = streamed.run_report(&tel, "streaming", 1).to_json_pretty();
    let report = RunReport::from_json(&json).expect("run report parses");
    assert!(
        report
            .workers
            .iter()
            .any(|t| t.stage == ingest::THROTTLE_STAGE),
        "{json}"
    );
}

#[test]
fn from_scrape_streaming_matches_from_scrape() {
    let world = world();
    let llm = SimLlm::new(99);
    let scraper = Scraper::new(SimWebClient::browser(&world.web));
    let report = scraper.crawl(world.pdb.nets().map(|n| (n.asn, n.website.as_str())));

    let tel = Telemetry::sim(Verbosity::Quiet);
    let staged = Borges::from_scrape_traced(
        &world.whois,
        &world.pdb,
        &report,
        &llm,
        NerConfig::default(),
        &tel,
    );
    let reference = fingerprint(&staged, &tel);
    assert!(
        !reference.0.contains("\"run/crawl\""),
        "from_scrape has no crawl stage"
    );

    for threads in [1, 4] {
        let tel = Telemetry::sim(Verbosity::Quiet);
        let streamed = Borges::from_scrape_streaming_traced(
            &world.whois,
            &world.pdb,
            &report,
            &llm,
            NerConfig::default(),
            &opts(4, 4, None, None, threads),
            &tel,
        );
        assert_eq!(
            fingerprint(&streamed, &tel),
            reference,
            "from_scrape_streaming diverged at threads={threads}"
        );
    }
}
