//! The incremental re-mapping keystone, end to end.
//!
//! For any snapshot pair T → T+1, remapping T+1 against T's persisted
//! state must be **byte-identical** to compiling T+1 from scratch — for
//! every feature combination — while keeping the dense interner ids of
//! surviving ASNs stable. The churn sweep exercises the interesting
//! regimes: nothing dirty (pure replay), a little dirty (the intended
//! workload), mostly dirty, and everything dirty (full replacement,
//! where correctness must not depend on any reuse actually happening).

use borges_core::ner::NerConfig;
use borges_core::pipeline::{Borges, FeatureSet};
use borges_core::{mapfile, SnapshotState};
use borges_llm::SimLlm;
use borges_synthnet::{churn, GeneratorConfig, SyntheticInternet};
use borges_websim::{ScrapeReport, Scraper, SimWebClient};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn crawl(world: &SyntheticInternet) -> ScrapeReport {
    let scraper = Scraper::new(SimWebClient::browser(&world.web));
    scraper.crawl(world.pdb.nets().map(|n| (n.asn, n.website.as_str())))
}

fn full(world: &SyntheticInternet, report: &ScrapeReport) -> Borges {
    let llm = SimLlm::flawless();
    Borges::from_scrape(&world.whois, &world.pdb, report, &llm, NerConfig::default())
}

fn remap(world: &SyntheticInternet, report: &ScrapeReport, state: &SnapshotState) -> Borges {
    let llm = SimLlm::flawless();
    Borges::remap(
        &world.whois,
        &world.pdb,
        report,
        &llm,
        NerConfig::default(),
        state,
    )
}

/// The keystone: incremental output is byte-identical to a fresh
/// compile of T+1, for every feature combination. Also pins interner-id
/// stability — every ASN present in both snapshots keeps its dense id.
fn assert_incremental_equivalence(t0: &SyntheticInternet, t1: &SyntheticInternet) {
    let state0 = full(t0, &crawl(t0)).snapshot_state();
    let report1 = crawl(t1);
    let fresh = full(t1, &report1);
    let inc = remap(t1, &report1, &state0);
    for features in FeatureSet::all_combinations() {
        assert_eq!(
            mapfile::serialize(&inc.mapping(features)),
            mapfile::serialize(&fresh.mapping(features)),
            "remap diverged from full compile for {features:?}"
        );
    }
    // Survivor ids are append-only stable across the remap.
    let ids_before: BTreeMap<_, _> = state0
        .slot_pairs()
        .enumerate()
        .map(|(id, (asn, live))| (asn, (id, live)))
        .collect();
    let state1 = inc.snapshot_state();
    for (id, (asn, live)) in state1.slot_pairs().enumerate() {
        if let Some(&(old_id, _)) = ids_before.get(&asn) {
            assert_eq!(
                id, old_id,
                "{asn} changed dense id across the remap ({old_id} -> {id})"
            );
        }
        if live {
            assert!(
                inc.universe().contains(&asn),
                "live slot {asn} missing from the universe"
            );
        }
    }
}

#[test]
fn churn_sweep_preserves_byte_identity() {
    let t0 = SyntheticInternet::generate(&GeneratorConfig::tiny(11));
    for percent in [0.0, 1.0, 10.0, 100.0] {
        let (t1, report) = churn(&t0, percent, 23);
        assert_incremental_equivalence(&t0, &t1);
        if percent == 0.0 {
            assert_eq!(report.selected, 0);
        } else {
            assert!(report.selected > 0, "{percent}% selected nothing");
        }
    }
}

#[test]
fn remaps_chain_across_successive_churned_snapshots() {
    // T0 -> T1 -> T2, remapping each against the previous state; each
    // hop must match the fresh compile of its own snapshot.
    let t0 = SyntheticInternet::generate(&GeneratorConfig::tiny(11));
    let (t1, _) = churn(&t0, 5.0, 31);
    let (t2, _) = churn(&t1, 5.0, 32);
    let state0 = full(&t0, &crawl(&t0)).snapshot_state();
    let report1 = crawl(&t1);
    let inc1 = remap(&t1, &report1, &state0);
    assert_eq!(
        mapfile::serialize(&inc1.mapping(FeatureSet::ALL)),
        mapfile::serialize(&full(&t1, &report1).mapping(FeatureSet::ALL)),
    );
    let report2 = crawl(&t2);
    let inc2 = remap(&t2, &report2, &inc1.snapshot_state());
    assert_eq!(
        mapfile::serialize(&inc2.mapping(FeatureSet::ALL)),
        mapfile::serialize(&full(&t2, &report2).mapping(FeatureSet::ALL)),
    );
}

#[test]
fn degenerate_full_replacement_delta_still_matches() {
    // State from one world, inputs from a completely different one:
    // essentially every record is added/removed/modified and the
    // surviving-ASN overlap is whatever the generators happen to share.
    let t0 = SyntheticInternet::generate(&GeneratorConfig::tiny(11));
    let t1 = SyntheticInternet::generate(&GeneratorConfig::tiny(99));
    assert_incremental_equivalence(&t0, &t1);
}

#[test]
fn snapshot_state_round_trips_through_json() {
    let t0 = SyntheticInternet::generate(&GeneratorConfig::tiny(11));
    let (t1, _) = churn(&t0, 10.0, 23);
    let state = full(&t0, &crawl(&t0)).snapshot_state();
    let reloaded = SnapshotState::from_json(&state.to_json_pretty()).expect("state parses back");
    assert_eq!(reloaded, state);
    // A remap driven by the reloaded state produces the same bytes as
    // one driven by the in-memory original.
    let report1 = crawl(&t1);
    assert_eq!(
        mapfile::serialize(&remap(&t1, &report1, &reloaded).mapping(FeatureSet::ALL)),
        mapfile::serialize(&remap(&t1, &report1, &state).mapping(FeatureSet::ALL)),
    );
}

#[test]
fn unchanged_remap_issues_no_llm_calls() {
    let t0 = SyntheticInternet::generate(&GeneratorConfig::tiny(11));
    let report = crawl(&t0);
    let state = full(&t0, &report).snapshot_state();
    let inc = remap(&t0, &report, &state);
    assert_eq!(inc.ner.stats.llm_calls, 0);
    assert_eq!(inc.favicon.stats.llm_calls, 0);
    let delta = inc.delta.expect("remap records delta stats");
    assert_eq!(delta.records.dirty(), 0);
    assert!(delta.llm_calls_saved() > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Random (world, churn) pairs: `apply_delta(compile(T), delta)`
    // must equal `compile(T+1)` regardless of what moved.
    #[test]
    fn random_deltas_preserve_equivalence(
        world_seed in prop::sample::select(vec![11u64, 17, 42]),
        churn_seed in 0u64..1000,
        percent_hundredths in 0u32..10_000,
    ) {
        let t0 = SyntheticInternet::generate(&GeneratorConfig::tiny(world_seed));
        let (t1, _) = churn(&t0, f64::from(percent_hundredths) / 100.0, churn_seed);
        let state0 = full(&t0, &crawl(&t0)).snapshot_state();
        let report1 = crawl(&t1);
        let fresh = full(&t1, &report1);
        let inc = remap(&t1, &report1, &state0);
        // ALL and NONE bracket the evidence spectrum; the dedicated
        // sweep test covers every combination on fixed fixtures.
        for features in [FeatureSet::ALL, FeatureSet::NONE] {
            prop_assert_eq!(
                mapfile::serialize(&inc.mapping(features)),
                mapfile::serialize(&fresh.mapping(features)),
            );
        }
        // Interner ids of survivors are stable.
        let ids_before: BTreeMap<_, _> = state0
            .slot_pairs()
            .enumerate()
            .map(|(id, (asn, _))| (asn, id))
            .collect();
        for (id, (asn, _)) in inc.snapshot_state().slot_pairs().enumerate() {
            if let Some(&old_id) = ids_before.get(&asn) {
                prop_assert_eq!(id, old_id);
            }
        }
    }
}
