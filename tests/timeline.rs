//! The time-travel keystones, end to end over real sockets
//! (DESIGN.md §15).
//!
//! A timeline chain built from synthnet's scripted corporate evolution
//! is mounted into the serving layer, and the contracts are pinned at
//! the HTTP boundary:
//!
//! 1. **Byte determinism** — `?at=` answers are byte-identical across
//!    worker-pool sizes and across epoch-LRU evictions, and identical
//!    to serving that epoch's world directly (no timeline in the
//!    loop). Time travel adds no bytes of its own.
//! 2. **Ground truth** — `/v1/org/{asn}/history` reproduces the
//!    scripted storyline: genesis, then the Cogent+Orange acquisition
//!    as a `merged` step, then the Digicel spinoff as a `split`.
//! 3. **Blame sorting** — bad epochs are 400s, epochs before genesis
//!    are 404s, and a server without a timeline answers 501, never a
//!    crash or a wrong answer.

use std::sync::Arc;
use std::time::Duration;

use borges_core::Borges;
use borges_llm::SimLlm;
use borges_serve::{ServeClient, Server, ServerConfig, ServerHooks, TimelineState};
use borges_synthnet::{EvolutionEvent, GeneratorConfig, SyntheticInternet};
use borges_timeline::{render_diff_json, Timeline};
use borges_types::Asn;
use borges_websim::SimWebClient;

fn compile(world: &SyntheticInternet) -> Borges {
    let llm = SimLlm::new(77);
    Borges::run(
        &world.whois,
        &world.pdb,
        SimWebClient::browser(&world.web),
        &llm,
    )
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "borges-timeline-xtest-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Builds the scripted three-epoch chain in `dir`: the tiny(77) world,
/// then the Cogent+Orange acquisition, then the Digicel spinoff — the
/// same events `tests/longitudinal.rs` validates at the diff layer.
fn scripted_chain(dir: &std::path::Path) -> Timeline {
    let t0 = SyntheticInternet::generate(&GeneratorConfig::tiny(77));
    let t1 = t0
        .evolve(
            &[EvolutionEvent::Acquisition {
                acquirer: "cogent".into(),
                target: "orange".into(),
            }],
            78,
        )
        .unwrap();
    let t2 = t1
        .evolve(
            &[EvolutionEvent::Spinoff {
                brand: "digicel".into(),
                countries: vec!["KE".into(), "NG".into()],
                new_brand: "sahelwave".into(),
            }],
            79,
        )
        .unwrap();
    let mut timeline = Timeline::open(dir).unwrap();
    for world in [&t0, &t1, &t2] {
        let mut borges = compile(world);
        timeline.append(&mut borges).unwrap();
    }
    timeline
}

/// The integration twin of the CLI's serve adapter: wraps a real
/// [`Timeline`] behind the serve crate's injected backend.
struct ChainBackend {
    timeline: Timeline,
}

fn query_error(e: borges_timeline::TimelineError) -> borges_serve::TimelineQueryError {
    match e.kind() {
        "unknown_epoch" | "empty" => borges_serve::TimelineQueryError::NotFound(e.to_string()),
        "invalid_range" => borges_serve::TimelineQueryError::BadRequest(e.to_string()),
        _ => borges_serve::TimelineQueryError::Internal(e.to_string()),
    }
}

impl borges_serve::TimelineBackend for ChainBackend {
    fn link_count(&self) -> usize {
        self.timeline.links().len()
    }
    fn tip_epoch(&self) -> Option<u64> {
        self.timeline.tip().map(|l| l.epoch)
    }
    fn resolve_at(&self, at: u64) -> Result<u64, borges_serve::TimelineQueryError> {
        self.timeline
            .resolve_at(at)
            .map(|l| l.epoch)
            .map_err(query_error)
    }
    fn load(&self, epoch: u64) -> Result<Borges, borges_serve::TimelineQueryError> {
        self.timeline.load_epoch(epoch, 1).map_err(query_error)
    }
    fn history_json(&self, asn: Asn) -> Result<String, borges_serve::TimelineQueryError> {
        self.timeline
            .org_lineage(asn)
            .map(|l| l.to_json())
            .map_err(query_error)
    }
    fn diff_json(&self, t1: u64, t2: u64) -> Result<String, borges_serve::TimelineQueryError> {
        self.timeline
            .diff(t1, t2)
            .map(|d| render_diff_json(t1, t2, &d))
            .map_err(query_error)
    }
}

/// Starts a server over the chain's genesis world with the timeline
/// mounted; `epoch_capacity` bounds the epoch LRU.
fn start_with_chain(dir: &std::path::Path, threads: usize, epoch_capacity: usize) -> Server {
    let timeline = Timeline::open(dir).unwrap();
    let boot = timeline.load_epoch(0, 1).unwrap();
    let state = TimelineState::new(Box::new(ChainBackend { timeline }), epoch_capacity, 16);
    let config = ServerConfig {
        threads,
        read_timeout: Duration::from_millis(700),
        ..ServerConfig::default()
    };
    Server::start_with_timeline(
        config,
        boot,
        None,
        ServerHooks::default(),
        Some(Arc::new(state)),
    )
    .expect("bind loopback")
}

/// The `?at=` request set the determinism tests replay: each chain
/// epoch, a floor resolution past the tip, and several feature
/// subsets.
const AT_PROBES: &[&str] = &[
    "/v1/map/AS174?at=0",
    "/v1/map/AS174?at=1",
    "/v1/map/AS174?at=2",
    "/v1/map/AS174?at=99",
    "/v1/map/AS3215?features=all&at=1",
    "/v1/map/AS36926?features=oid_p,rr&at=2",
    "/v1/org/AS174/history",
    "/v1/diff/0/2",
    "/v1/diff/1/2",
];

#[test]
fn at_answers_are_byte_identical_across_worker_counts_and_evictions() {
    let dir = tmpdir("determinism");
    scripted_chain(&dir);

    let single = start_with_chain(&dir, 1, 4);
    let pooled = start_with_chain(&dir, 4, 4);
    // Capacity 1: every alternation between epochs evicts the other.
    let churny = start_with_chain(&dir, 2, 1);
    let client1 = ServeClient::new(single.local_addr());
    let client4 = ServeClient::new(pooled.local_addr());
    let client_churn = ServeClient::new(churny.local_addr());

    for probe in AT_PROBES {
        let a = client1.get(probe).expect("single-worker response");
        let b = client4.get(probe).expect("pooled response");
        assert_eq!(a.status, 200, "{probe}: {}", a.body_text());
        assert_eq!(
            a.canonical_raw(),
            b.canonical_raw(),
            "{probe} differed between 1 and 4 workers"
        );
        let c = client_churn.get(probe).expect("capacity-1 response");
        assert_eq!(
            a.canonical_raw(),
            c.canonical_raw(),
            "{probe} differed under a thrashing epoch cache"
        );
    }

    // Interleave epochs on the capacity-1 server so the cache provably
    // churns, then replay: the bytes must not move.
    let first_at0 = client_churn.get("/v1/map/AS174?at=0").unwrap();
    for _ in 0..3 {
        client_churn.get("/v1/map/AS174?at=2").unwrap();
        let again = client_churn.get("/v1/map/AS174?at=0").unwrap();
        assert_eq!(
            first_at0.canonical_raw(),
            again.canonical_raw(),
            "bytes changed across an epoch-LRU eviction"
        );
    }
    single.stop();
    pooled.stop();
    let ledger = churny.stop();
    assert!(
        ledger.counter("borges_timeline_lru_evictions_total") >= 3,
        "the capacity-1 cache must actually have churned"
    );
    assert!(ledger.counter("borges_timeline_epoch_loads_total") >= 4);
}

#[test]
fn at_serves_the_same_bytes_as_mounting_that_epoch_directly() {
    let dir = tmpdir("identity");
    let timeline = scripted_chain(&dir);

    let via_chain = start_with_chain(&dir, 2, 4);
    let chain_client = ServeClient::new(via_chain.local_addr());

    for epoch in 0..=2u64 {
        // A plain server (no timeline) booted straight from the chained
        // artifact: the reference answer for that epoch.
        let direct = Server::start(
            ServerConfig {
                threads: 2,
                read_timeout: Duration::from_millis(700),
                ..ServerConfig::default()
            },
            timeline.load_epoch(epoch, 1).unwrap(),
            None,
        )
        .expect("bind loopback");
        let direct_client = ServeClient::new(direct.local_addr());
        for (timeline_probe, direct_probe) in [
            (
                format!("/v1/map/AS174?at={epoch}"),
                "/v1/map/AS174".to_string(),
            ),
            (
                format!("/v1/map/AS3215?features=all&at={epoch}"),
                "/v1/map/AS3215?features=all".to_string(),
            ),
            (
                format!("/v1/map/AS36926?features=oid_p,rr&at={epoch}"),
                "/v1/map/AS36926?features=oid_p,rr".to_string(),
            ),
        ] {
            let travelled = chain_client.get(&timeline_probe).expect("timeline answer");
            let reference = direct_client.get(&direct_probe).expect("direct answer");
            assert_eq!(
                travelled.canonical_raw(),
                reference.canonical_raw(),
                "epoch {epoch}: {timeline_probe} differs from mounting the world directly"
            );
        }
        direct.stop();
    }
    via_chain.stop();
}

#[test]
fn history_reproduces_the_scripted_corporate_storyline() {
    let dir = tmpdir("history");
    let timeline = scripted_chain(&dir);
    let server = start_with_chain(&dir, 2, 4);
    let client = ServeClient::new(server.local_addr());

    // The served body is exactly the library rendering.
    let response = client.get("/v1/org/AS174/history").expect("history");
    assert_eq!(response.status, 200);
    let expected = timeline.org_lineage(Asn::new(174)).unwrap().to_json();
    assert_eq!(response.body_text(), expected);

    // Scripted ground truth, epoch by epoch: AS174 (Cogent) exists at
    // genesis, absorbs Orange's AS3215 at epoch 1, then holds steady.
    let lineage = timeline.org_lineage(Asn::new(174)).unwrap();
    let kinds: Vec<&str> = lineage.steps.iter().map(|s| s.kind).collect();
    assert_eq!(kinds, ["genesis", "merged", "unchanged"], "{expected}");
    let merged = &lineage.steps[1];
    assert!(
        merged.members.contains(&3215),
        "epoch 1 must show Orange absorbed: {expected}"
    );
    assert!(
        merged.detail.iter().any(|frag| frag.contains(&3215)),
        "the absorbed fragment must name AS3215: {expected}"
    );

    // The spun-off Digicel side: together at genesis, split at epoch 2.
    let lineage = timeline.org_lineage(Asn::new(36926)).unwrap();
    let kinds: Vec<&str> = lineage.steps.iter().map(|s| s.kind).collect();
    assert_eq!(kinds[0], "genesis");
    assert_eq!(kinds[2], "split", "{kinds:?}");
    assert!(lineage.steps[0].members.contains(&23520));
    assert!(
        !lineage.steps[2].members.contains(&23520),
        "the spun-off AS23520 must leave AS36926's organization"
    );
    let served = client.get("/v1/org/AS36926/history").expect("history");
    assert_eq!(served.body_text(), lineage.to_json());
    server.stop();
}

#[test]
fn diff_endpoint_serves_the_composed_diff_and_sorts_blame() {
    let dir = tmpdir("diff");
    let timeline = scripted_chain(&dir);
    let server = start_with_chain(&dir, 2, 4);
    let client = ServeClient::new(server.local_addr());

    let response = client.get("/v1/diff/0/2").expect("diff");
    assert_eq!(response.status, 200);
    let expected = render_diff_json(0, 2, &timeline.diff(0, 2).unwrap());
    assert_eq!(response.body_text(), expected);
    // Both scripted events are visible across the full range.
    assert!(expected.contains("\"AS174\""), "{expected}");
    assert!(expected.contains("\"splits\":[{"), "{expected}");

    // Blame sorting at the HTTP boundary.
    assert_eq!(client.get("/v1/diff/2/0").unwrap().status, 400);
    assert_eq!(client.get("/v1/diff/0/99").unwrap().status, 404);
    assert_eq!(client.get("/v1/diff/0/nope").unwrap().status, 400);
    assert_eq!(client.get("/v1/map/AS174?at=nope").unwrap().status, 400);

    // Wrong method on a timeline route: 405 with the Allow header.
    let wrong = client.post("/v1/org/AS174/history", b"{}").unwrap();
    assert_eq!(wrong.status, 405);
    assert_eq!(wrong.headers["allow"], "GET");

    // The health body advertises the mounted chain.
    let health = client.get("/healthz").unwrap();
    assert!(
        health
            .body_text()
            .contains("\"timeline\":{\"links\":3,\"tip\":2}"),
        "{}",
        health.body_text()
    );
    server.stop();
}

#[test]
fn a_server_without_a_timeline_answers_501_not_wrong() {
    let world = SyntheticInternet::generate(&GeneratorConfig::tiny(77));
    let server = Server::start(
        ServerConfig {
            threads: 1,
            read_timeout: Duration::from_millis(700),
            ..ServerConfig::default()
        },
        compile(&world),
        None,
    )
    .expect("bind loopback");
    let client = ServeClient::new(server.local_addr());

    for probe in [
        "/v1/map/AS174?at=0",
        "/v1/org/AS174/history",
        "/v1/diff/0/1",
    ] {
        let response = client.get(probe).unwrap();
        assert_eq!(response.status, 501, "{probe}: {}", response.body_text());
        assert!(response.body_text().contains("no timeline"), "{probe}");
    }
    // Plain serving is untouched by the absence.
    assert_eq!(client.get("/v1/map/AS174").unwrap().status, 200);
    let health = client.get("/healthz").unwrap();
    assert!(
        !health.body_text().contains("timeline"),
        "an unmounted timeline must not appear in health: {}",
        health.body_text()
    );
    server.stop();
}
